//! Query-result caching between crawl drivers and the hidden interface.
//!
//! Parameter sweeps and multi-seed bench runs re-issue thousands of
//! identical keyword queries against the same (deterministic) hidden
//! database; real deployments face the mirror image, an API-side cache in
//! front of the backend. The paper's reuse argument for samples (§5.1: a
//! sample "only needs to be created once and can be reused") extends to
//! query results, and the hidden-database crawling literature treats
//! repeated identical queries as pure waste. This crate supplies the
//! missing layer:
//!
//! * [`QueryCache`] — a capacity-bounded LRU store of result pages, keyed
//!   by the *canonical* query
//!   ([`canonical_query_key`](smartcrawl_hidden::canonical_query_key):
//!   case-folded, sorted, deduplicated keywords), so logically-equal
//!   queries collide. Negative (empty) pages are cached by policy;
//!   errors — [`Transient`](smartcrawl_hidden::SearchError::Transient),
//!   [`RateLimited`](smartcrawl_hidden::SearchError::RateLimited) — are
//!   never cached. Hit/miss/insert/evict counters are kept as
//!   [`CacheStats`](smartcrawl_hidden::CacheStats).
//! * [`CachedInterface`] — a transparent
//!   [`SearchInterface`](smartcrawl_hidden::SearchInterface) wrapper
//!   around any interface stack, borrowing a [`QueryCache`] so one store
//!   can be shared across runs (sweeps, seeds). By default cache hits are
//!   *free* — they bypass the inner [`Metered`](smartcrawl_hidden::Metered)
//!   budget, which only ever sees misses — with an opt-in
//!   [`charged_hits`](CachePolicy::charged_hits) mode for faithfulness
//!   experiments where a hit must still spend quota.
//! * [`persist`] — versioned, line-oriented, escape-safe disk format (the
//!   same idiom as the sampler's sample persistence; no dependencies), so
//!   sweeps warm-start across processes: [`save_cache`] / [`load_cache`].

pub mod cached;
pub mod persist;
pub mod store;

pub use cached::CachedInterface;
pub use persist::{load_cache, save_cache};
// The shared on-disk format primitives this crate's text layout builds
// on, re-exported so downstream text stores need not depend on
// `smartcrawl-store` directly.
pub use smartcrawl_store::format;
pub use store::{CachePolicy, QueryCache};
