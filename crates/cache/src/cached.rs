//! The transparent caching wrapper around any interface stack.

use crate::store::QueryCache;
use smartcrawl_hidden::{
    canonical_query_key, CacheStats, SearchError, SearchInterface, SearchPage,
};

/// A [`SearchInterface`] that serves repeated logically-equal queries from
/// a borrowed [`QueryCache`] and forwards only genuine misses to `inner`.
///
/// Transparency: against a deterministic interface the cached stack
/// returns exactly the pages the bare stack would — keys canonicalize no
/// further than the engine's own query normalization, and errors are never
/// cached — so any crawl run on top of it produces an identical
/// [`CrawlReport`] trajectory (the cross-crate `cache_properties` test
/// asserts this for every approach).
///
/// Budget semantics: by default a hit never reaches `inner`, so a wrapped
/// [`Metered`](smartcrawl_hidden::Metered) only pays for misses; the meter
/// is still *notified* of each hit (audit-log entries with
/// `from_cache: true`). With
/// [`charged_hits`](crate::CachePolicy::charged_hits) the notification
/// also charges the meter, and a hit is denied with
/// [`SearchError::BudgetExhausted`] once the quota is gone — the
/// faithfulness mode where caching changes latency but not accounting.
///
/// The store is borrowed, not owned, so sweeps can thread one warm cache
/// through many runs:
///
/// ```
/// use smartcrawl_cache::{CachedInterface, QueryCache};
/// use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered, SearchInterface};
/// use smartcrawl_text::Record;
///
/// let db = HiddenDbBuilder::new()
///     .k(5)
///     .records([HiddenRecord::new(0, Record::from(["thai house"]), vec![], 1.0)])
///     .build();
/// let mut cache = QueryCache::default();
/// for _run in 0..3 {
///     let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, Some(10)));
///     iface.search(&["thai".into()]).unwrap();
///     // Runs after the first never touch the meter.
///     assert!(iface.into_inner().queries_issued() <= 1);
/// }
/// assert_eq!(cache.stats().hits, 2);
/// ```
#[derive(Debug)]
pub struct CachedInterface<'c, I> {
    cache: &'c mut QueryCache,
    inner: I,
}

impl<'c, I: SearchInterface> CachedInterface<'c, I> {
    /// Wraps `inner` with the given (possibly already warm) store.
    pub fn new(cache: &'c mut QueryCache, inner: I) -> Self {
        Self { cache, inner }
    }

    /// Shared access to the wrapped interface (e.g. a meter's audit log).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps the inner interface, releasing the store borrow.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: SearchInterface> SearchInterface for CachedInterface<'_, I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        let key = canonical_query_key(keywords);
        if let Some(page) = self.cache.peek(&key) {
            let results = page.records.len();
            // Records are Arc-backed: this clone (and the insert below) is
            // refcount bumps per record, not a deep copy of every cell.
            let page = page.clone();
            // Settle the hit's cost before committing it: in charged-hits
            // mode an exhausted meter denies the hit altogether.
            self.inner
                .record_cache_hit(keywords, results, self.cache.policy().charged_hits)?;
            self.cache.commit_hit(&key);
            return Ok(page);
        }
        self.cache.note_miss();
        match self.inner.search(keywords) {
            Ok(page) => {
                self.cache.insert(key, page.clone());
                Ok(page)
            }
            Err(err) => {
                // Never cache failures: transient/throttled errors say
                // nothing about the query's true page, and a budget
                // rejection is a property of the meter, not the query.
                self.cache.note_uncached_error();
                Err(err)
            }
        }
    }

    fn queries_issued(&self) -> usize {
        self.inner.queries_issued()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn record_cache_hit(
        &mut self,
        keywords: &[String],
        results: usize,
        charge: bool,
    ) -> Result<(), SearchError> {
        // A cache stacked above this one served the query; pass the
        // notification through to any meter below.
        self.inner.record_cache_hit(keywords, results, charge)
    }

    fn begin_query(&mut self, index: usize) {
        self.inner.begin_query(index);
    }

    fn prefetch_handle<'h>(&self) -> Option<&'h smartcrawl_hidden::HiddenDb>
    where
        Self: 'h,
    {
        self.inner.prefetch_handle()
    }

    fn commit_prefetched(
        &mut self,
        keywords: &[String],
        prefetched: &SearchPage,
    ) -> Result<SearchPage, SearchError> {
        // Mirror `search` exactly: a cached page wins over the prefetched
        // one (same bytes against a deterministic engine, and the hit's
        // budget/audit accounting must happen either way); a miss commits
        // the speculative page through the inner stack instead of
        // recomputing it.
        let key = canonical_query_key(keywords);
        if let Some(page) = self.cache.peek(&key) {
            let results = page.records.len();
            let page = page.clone();
            self.inner
                .record_cache_hit(keywords, results, self.cache.policy().charged_hits)?;
            self.cache.commit_hit(&key);
            return Ok(page);
        }
        self.cache.note_miss();
        match self.inner.commit_prefetched(keywords, prefetched) {
            Ok(page) => {
                self.cache.insert(key, page.clone());
                Ok(page)
            }
            Err(err) => {
                self.cache.note_uncached_error();
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CachePolicy;
    use smartcrawl_hidden::{
        FlakyInterface, HiddenDb, HiddenDbBuilder, HiddenRecord, Metered,
    };
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai house"]), vec!["p0".into()], 1.0),
                HiddenRecord::new(1, Record::from(["steak house"]), vec!["p1".into()], 2.0),
                HiddenRecord::new(2, Record::from(["noodle bar"]), vec!["p2".into()], 3.0),
            ])
            .build()
    }

    #[test]
    fn repeated_queries_hit_without_touching_the_meter() {
        let db = tiny_db();
        let mut cache = QueryCache::default();
        let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, Some(10)).with_log());
        let first = iface.search(&["house".into()]).unwrap();
        let second = iface.search(&["house".into()]).unwrap();
        let third = iface.search(&["HOUSE".into()]).unwrap(); // canonical collision
        assert_eq!(first, second);
        assert_eq!(first, third);
        let meter = iface.into_inner();
        assert_eq!(meter.queries_issued(), 1, "hits are free by default");
        // The audit log still accounts for every served page.
        assert_eq!(meter.log().len(), 3);
        assert!(!meter.log()[0].from_cache);
        assert!(meter.log()[1].from_cache && meter.log()[1].served);
        assert_eq!(meter.log()[1].results, 2);
        assert_eq!(meter.distinct_served(), 1);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn charged_hits_consume_the_meter_and_deny_when_exhausted() {
        let db = tiny_db();
        let mut cache =
            QueryCache::new(CachePolicy { charged_hits: true, ..Default::default() });
        let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, Some(2)));
        iface.search(&["house".into()]).unwrap(); // miss, charged
        iface.search(&["house".into()]).unwrap(); // hit, charged too
        assert_eq!(
            iface.search(&["house".into()]),
            Err(SearchError::BudgetExhausted),
            "a charged hit past the quota is denied"
        );
        assert_eq!(iface.queries_issued(), 2);
        // The denied lookup was not committed as a hit.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn errors_are_never_cached() {
        let db = tiny_db();
        let mut cache = QueryCache::default();
        // Fails on the 1st and some later attempts (seeded), then serves.
        let mut iface = CachedInterface::new(
            &mut cache,
            FlakyInterface::new(Metered::new(&db, None), 1.0, 3),
        );
        assert_eq!(iface.search(&["thai".into()]), Err(SearchError::Transient));
        assert_eq!(iface.search(&["thai".into()]), Err(SearchError::Transient));
        let stats = iface.cache_stats().unwrap();
        assert_eq!(stats.uncached_errors, 2);
        assert_eq!(stats.insertions, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn flaky_inside_the_cache_is_bypassed_on_hits() {
        let db = tiny_db();
        let mut cache = QueryCache::default();
        // 0% failures while warming, then crank flakiness: hits still land.
        let mut warm = CachedInterface::new(&mut cache, Metered::new(&db, None));
        let page = warm.search(&["steak".into()]).unwrap();
        drop(warm);
        let mut iface = CachedInterface::new(
            &mut cache,
            FlakyInterface::new(Metered::new(&db, None), 1.0, 9),
        );
        assert_eq!(iface.search(&["steak".into()]).unwrap(), page);
    }

    #[test]
    fn commit_prefetched_mirrors_search_on_hits_and_misses() {
        use smartcrawl_hidden::SearchPage;
        let db = tiny_db();
        let kw = vec!["house".to_string()];
        let prefetched = SearchPage { records: HiddenDb::search(&db, &kw) };

        let mut store_a = QueryCache::default();
        let mut seq = CachedInterface::new(&mut store_a, Metered::new(&db, Some(10)));
        let miss_page = seq.search(&kw).unwrap();
        let hit_page = seq.search(&kw).unwrap();
        drop(seq);

        let mut store_b = QueryCache::default();
        let mut pipe = CachedInterface::new(&mut store_b, Metered::new(&db, Some(10)));
        assert_eq!(pipe.commit_prefetched(&kw, &prefetched).unwrap(), miss_page);
        assert_eq!(pipe.commit_prefetched(&kw, &prefetched).unwrap(), hit_page);
        assert_eq!(pipe.queries_issued(), 1, "the hit never reached the meter");
        drop(pipe);
        assert_eq!(store_a.stats(), store_b.stats(), "cache counters identical");
    }

    #[test]
    fn negative_pages_hit_when_cached() {
        let db = tiny_db();
        let mut cache = QueryCache::default();
        let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, Some(10)));
        assert!(iface.search(&["unobtainium".into()]).unwrap().records.is_empty());
        assert!(iface.search(&["unobtainium".into()]).unwrap().records.is_empty());
        assert_eq!(iface.queries_issued(), 1);
        assert_eq!(cache.stats().negative_hits, 1);
    }
}
