//! Cache persistence: warm-start sweeps across processes.
//!
//! Same design as the sampler's sample persistence (paper §5.1's
//! create-once-reuse argument, extended to query results): a line-oriented
//! text file with a versioned magic header and tab-separated,
//! backslash-escaped cells. No dependencies, inspectable with a pager,
//! rejected loudly when foreign or corrupt.
//!
//! Layout:
//!
//! ```text
//! #smartcrawl-query-cache v1
//! entries<TAB>N
//! <nkw> <nrec> <kw…> [<id> <nf> <np> <fields…> <payload…>]*nrec   (×N lines)
//! ```
//!
//! Entries are written least-recently-used first, so loading re-inserts
//! them in recency order and the store resumes with the exact LRU state it
//! was saved with.

use crate::store::{CachePolicy, QueryCache};
use smartcrawl_hidden::{ExternalId, Retrieved, SearchPage};
// One shared format module for the whole workspace: the escape grammar
// and the InvalidData rejection shape come from `smartcrawl-store`'s
// format primitives (which the paged binary layout also builds on), so
// the text and binary stores cannot drift apart.
use smartcrawl_store::format::{escape, invalid_data as bad, unescape};
use std::io::{BufRead, Write};
use std::path::Path;

const MAGIC: &str = "#smartcrawl-query-cache v1";

/// Writes the store to `path` (LRU-first entry order).
pub fn save_cache(path: impl AsRef<Path>, cache: &QueryCache) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{MAGIC}")?;
    writeln!(f, "entries\t{}", cache.len())?;
    for (key, page) in cache.iter_lru() {
        write!(f, "{}\t{}", key.len(), page.records.len())?;
        for kw in key {
            write!(f, "\t{}", escape(kw))?;
        }
        for r in &page.records {
            write!(
                f,
                "\t{}\t{}\t{}",
                r.external_id.0,
                r.fields.len(),
                r.payload.len()
            )?;
            for cell in r.fields.iter().chain(r.payload.iter()) {
                write!(f, "\t{}", escape(cell))?;
            }
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Reads a store previously written by [`save_cache`], applying `policy`
/// to the loaded entries: pages beyond `capacity` evict oldest-first, and
/// negative pages are dropped when `cache_negative` is off. Loading does
/// not touch the cache counters — the entries were already accounted for
/// by the run that created them.
pub fn load_cache(path: impl AsRef<Path>, policy: CachePolicy) -> std::io::Result<QueryCache> {
    let f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut lines = f.lines();
    if lines.next().transpose()?.as_deref() != Some(MAGIC) {
        return Err(bad("not a smartcrawl query-cache file"));
    }
    let count_line = lines
        .next()
        .transpose()?
        .ok_or_else(|| bad("missing entry count"))?;
    let declared: usize = count_line
        .strip_prefix("entries\t")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("malformed entry-count line"))?;
    let mut cache = QueryCache::new(policy);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        let &[nkw_cell, nrec_cell, ..] = cells.as_slice() else {
            return Err(bad("truncated entry line"));
        };
        let nkw: usize = nkw_cell.parse().map_err(|_| bad("bad keyword count"))?;
        let nrec: usize = nrec_cell.parse().map_err(|_| bad("bad record count"))?;
        let mut cursor = 2usize;
        let take = |cursor: &mut usize, cells: &[&str]| -> std::io::Result<String> {
            let cell = cells
                .get(*cursor)
                .ok_or_else(|| bad("entry arity mismatch"))?;
            *cursor += 1;
            unescape(cell).ok_or_else(|| bad("bad escape sequence"))
        };
        let mut key = Vec::with_capacity(nkw);
        for _ in 0..nkw {
            key.push(take(&mut cursor, &cells)?);
        }
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            let id: u64 = take(&mut cursor, &cells)?
                .parse()
                .map_err(|_| bad("bad external id"))?;
            let nf: usize = take(&mut cursor, &cells)?
                .parse()
                .map_err(|_| bad("bad field count"))?;
            let np: usize = take(&mut cursor, &cells)?
                .parse()
                .map_err(|_| bad("bad payload count"))?;
            let mut texts = Vec::with_capacity(nf + np);
            for _ in 0..nf + np {
                texts.push(take(&mut cursor, &cells)?);
            }
            let payload = texts.split_off(nf);
            records.push(Retrieved::new(ExternalId(id), texts, payload));
        }
        if cursor != cells.len() {
            return Err(bad("entry arity mismatch"));
        }
        cache.insert_untallied(key, SearchPage { records });
        seen += 1;
    }
    if seen != declared {
        return Err(bad("entry count disagrees with body"));
    }
    cache.reset_stats();
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "smartcrawl_cache_persist_{}_{name}",
            std::process::id()
        ))
    }

    fn page(texts: &[&str]) -> SearchPage {
        SearchPage {
            records: texts
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    Retrieved::new(
                        ExternalId(i as u64 + 10),
                        vec![(*t).to_owned(), "tab\there".into()],
                        vec!["4.5".into()],
                    )
                })
                .collect(),
        }
    }

    fn sample_store() -> QueryCache {
        let mut c = QueryCache::default();
        c.insert(vec!["house".into(), "thai".into()], page(&["thai house"]));
        c.insert(vec!["back\\slash".into()], page(&["a", "b"]));
        c.insert(vec!["empty".into()], SearchPage::default());
        // Promote the first entry so LRU order is not insertion order.
        c.get(&["house".to_owned(), "thai".to_owned()]);
        c
    }

    #[test]
    fn round_trip_preserves_pages_and_lru_order() {
        let path = tmp("rt");
        let orig = sample_store();
        save_cache(&path, &orig).unwrap();
        let loaded = load_cache(&path, CachePolicy::default()).unwrap();
        assert_eq!(loaded.len(), orig.len());
        let o: Vec<_> = orig.iter_lru().collect();
        let l: Vec<_> = loaded.iter_lru().collect();
        assert_eq!(o, l, "pages and recency order must survive the disk");
        // Loading leaves the counters untouched.
        assert_eq!(loaded.stats(), smartcrawl_hidden::CacheStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_save_is_byte_identical() {
        let p1 = tmp("b1");
        let p2 = tmp("b2");
        let orig = sample_store();
        save_cache(&p1, &orig).unwrap();
        let loaded = load_cache(&p1, CachePolicy::default()).unwrap();
        save_cache(&p2, &loaded).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn rejects_foreign_and_corrupt_headers() {
        let path = tmp("foreign");
        std::fs::write(&path, "name,city\nx,y\n").unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::write(&path, "#smartcrawl-sample v1\ntheta\t0.5\n").unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::write(&path, format!("{MAGIC}\nnot-a-count\n")).unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_entries() {
        let path = tmp("corrupt");
        // Declares one record but carries none.
        std::fs::write(&path, format!("{MAGIC}\nentries\t1\n1\t1\tthai\n")).unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        // Trailing junk cells.
        std::fs::write(&path, format!("{MAGIC}\nentries\t1\n1\t0\tthai\textra\n")).unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        // Body shorter than the declared entry count.
        std::fs::write(&path, format!("{MAGIC}\nentries\t2\n1\t0\tthai\n")).unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_applies_the_given_policy() {
        let path = tmp("policy");
        save_cache(&path, &sample_store()).unwrap();
        let small = load_cache(
            &path,
            CachePolicy {
                capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(small.len(), 2, "oldest entry evicted on load");
        let no_neg = load_cache(
            &path,
            CachePolicy {
                cache_negative: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(no_neg.len(), 2, "negative page dropped on load");
        assert!(no_neg.peek(&["empty".to_owned()]).is_none());
        std::fs::remove_file(&path).ok();
    }
}
