//! Cache persistence: warm-start sweeps across processes.
//!
//! Since PR 10 the cache persists on the workspace's shared paged store
//! format (`smartcrawl-store`'s [`PagedWriter`]/[`PagedReader`]): the same
//! single-writer → multi-reader discipline, versioned magic header, and
//! per-page checksums as the on-disk scenario and index files, so a torn
//! or bit-rotted save is rejected loudly at open instead of silently
//! warm-starting a crawl with partial results.
//!
//! Layout: a varint byte stream chunked into checksummed pages —
//!
//! ```text
//! tag "#smartcrawl-query-cache v2\n"
//! varint N                                        (entry count)
//! N × [ varint nkw, nkw × (varint len, bytes),    (keywords)
//!       varint nrec, nrec × record ]
//! record = varint id, varint nf, nf × cell, varint np, np × cell
//! cell   = varint len, bytes
//! ```
//!
//! Entries are written least-recently-used first, so loading re-inserts
//! them in recency order and the store resumes with the exact LRU state it
//! was saved with.

use crate::store::{CachePolicy, QueryCache};
use smartcrawl_hidden::{ExternalId, Retrieved, SearchPage};
use smartcrawl_store::format::{invalid_data as bad, read_varint, write_varint};
use smartcrawl_store::{PagedReader, PagedWriter, StoreError};
use std::path::Path;

/// Stream tag inside the paged file: distinguishes a query-cache store
/// from any other paged file in the workspace.
const TAG: &[u8] = b"#smartcrawl-query-cache v2\n";
/// On-disk page size for cache files.
const PAGE_SIZE: usize = 4096;

fn from_store(e: StoreError) -> std::io::Error {
    match e {
        StoreError::Io(e) => e,
        e @ StoreError::Corrupt { .. } => bad(&e.to_string()),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> std::io::Result<String> {
    let len = usize::try_from(read_varint(buf, pos).ok_or_else(|| bad("truncated cell length"))?)
        .map_err(|_| bad("oversized cell length"))?;
    let end = pos.checked_add(len).ok_or_else(|| bad("oversized cell length"))?;
    let bytes = buf.get(*pos..end).ok_or_else(|| bad("truncated cell"))?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad("cell is not UTF-8"))
}

fn get_count(buf: &[u8], pos: &mut usize, what: &str) -> std::io::Result<usize> {
    let n = read_varint(buf, pos).ok_or_else(|| bad(&format!("truncated {what}")))?;
    // A count can never exceed the bytes that remain to encode it.
    if n > buf.len() as u64 {
        return Err(bad(&format!("implausible {what}")));
    }
    Ok(n as usize)
}

/// Writes the store to `path` (LRU-first entry order) as a paged,
/// checksummed store file.
pub fn save_cache(path: impl AsRef<Path>, cache: &QueryCache) -> std::io::Result<()> {
    let mut writer = PagedWriter::create(path.as_ref(), PAGE_SIZE).map_err(from_store)?;
    let capacity = writer.payload_capacity();
    let mut stream: Vec<u8> = Vec::with_capacity(capacity * 2);
    stream.extend_from_slice(TAG);
    write_varint(&mut stream, cache.len() as u64);
    let flush_full = |stream: &mut Vec<u8>, writer: &mut PagedWriter| -> std::io::Result<()> {
        while stream.len() >= capacity {
            let rest = stream.split_off(capacity);
            writer.append_page(stream).map_err(from_store)?;
            *stream = rest;
        }
        Ok(())
    };
    for (key, page) in cache.iter_lru() {
        write_varint(&mut stream, key.len() as u64);
        for kw in key {
            put_str(&mut stream, kw);
        }
        write_varint(&mut stream, page.records.len() as u64);
        for r in &page.records {
            write_varint(&mut stream, r.external_id.0);
            write_varint(&mut stream, r.fields.len() as u64);
            for cell in r.fields.iter() {
                put_str(&mut stream, cell);
            }
            write_varint(&mut stream, r.payload.len() as u64);
            for cell in r.payload.iter() {
                put_str(&mut stream, cell);
            }
        }
        flush_full(&mut stream, &mut writer)?;
    }
    if !stream.is_empty() {
        writer.append_page(&stream).map_err(from_store)?;
    }
    writer.finish().map_err(from_store)
}

/// Reads a store previously written by [`save_cache`], applying `policy`
/// to the loaded entries: pages beyond `capacity` evict oldest-first, and
/// negative pages are dropped when `cache_negative` is off. Loading does
/// not touch the cache counters — the entries were already accounted for
/// by the run that created them. Truncated, foreign, or corrupt files are
/// rejected with `InvalidData` (the paged layer checksums every page and
/// writes its header last, so a torn save never half-loads).
pub fn load_cache(path: impl AsRef<Path>, policy: CachePolicy) -> std::io::Result<QueryCache> {
    let mut reader = PagedReader::open(path.as_ref()).map_err(from_store)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut page = Vec::new();
    for p in 0..reader.num_pages() {
        reader.read_page(p, &mut page).map_err(from_store)?;
        buf.extend_from_slice(&page);
    }
    if buf.get(..TAG.len()) != Some(TAG) {
        return Err(bad("not a smartcrawl query-cache file"));
    }
    let mut pos = TAG.len();
    let declared = get_count(&buf, &mut pos, "entry count")?;
    let mut cache = QueryCache::new(policy);
    for _ in 0..declared {
        let nkw = get_count(&buf, &mut pos, "keyword count")?;
        let mut key = Vec::with_capacity(nkw);
        for _ in 0..nkw {
            key.push(get_str(&buf, &mut pos)?);
        }
        let nrec = get_count(&buf, &mut pos, "record count")?;
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            let id = read_varint(&buf, &mut pos).ok_or_else(|| bad("truncated external id"))?;
            let nf = get_count(&buf, &mut pos, "field count")?;
            let mut texts = Vec::with_capacity(nf);
            for _ in 0..nf {
                texts.push(get_str(&buf, &mut pos)?);
            }
            let np = get_count(&buf, &mut pos, "payload count")?;
            let mut payload = Vec::with_capacity(np);
            for _ in 0..np {
                payload.push(get_str(&buf, &mut pos)?);
            }
            records.push(Retrieved::new(ExternalId(id), texts, payload));
        }
        cache.insert_untallied(key, SearchPage { records });
    }
    if pos != buf.len() {
        return Err(bad("trailing bytes after final entry"));
    }
    cache.reset_stats();
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "smartcrawl_cache_persist_{}_{name}",
            std::process::id()
        ))
    }

    fn page(texts: &[&str]) -> SearchPage {
        SearchPage {
            records: texts
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    Retrieved::new(
                        ExternalId(i as u64 + 10),
                        vec![(*t).to_owned(), "tab\there".into()],
                        vec!["4.5".into()],
                    )
                })
                .collect(),
        }
    }

    fn sample_store() -> QueryCache {
        let mut c = QueryCache::default();
        c.insert(vec!["house".into(), "thai".into()], page(&["thai house"]));
        c.insert(vec!["back\\slash".into()], page(&["a", "b"]));
        c.insert(vec!["empty".into()], SearchPage::default());
        // Promote the first entry so LRU order is not insertion order.
        c.get(&["house".to_owned(), "thai".to_owned()]);
        c
    }

    #[test]
    fn round_trip_preserves_pages_and_lru_order() {
        let path = tmp("rt");
        let orig = sample_store();
        save_cache(&path, &orig).unwrap();
        let loaded = load_cache(&path, CachePolicy::default()).unwrap();
        assert_eq!(loaded.len(), orig.len());
        let o: Vec<_> = orig.iter_lru().collect();
        let l: Vec<_> = loaded.iter_lru().collect();
        assert_eq!(o, l, "pages and recency order must survive the disk");
        // Loading leaves the counters untouched.
        assert_eq!(loaded.stats(), smartcrawl_hidden::CacheStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_survives_page_straddling_entries() {
        // A page much larger than PAGE_SIZE forces the stream to straddle
        // several on-disk pages.
        let path = tmp("straddle");
        let mut c = QueryCache::default();
        let big: Vec<&str> = vec!["some business name with many words"; 200];
        c.insert(vec!["big".into()], page(&big));
        c.insert(vec!["small".into()], page(&["x"]));
        save_cache(&path, &c).unwrap();
        let loaded = load_cache(&path, CachePolicy::default()).unwrap();
        assert_eq!(
            loaded.iter_lru().collect::<Vec<_>>(),
            c.iter_lru().collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_save_is_byte_identical() {
        let p1 = tmp("b1");
        let p2 = tmp("b2");
        let orig = sample_store();
        save_cache(&p1, &orig).unwrap();
        let loaded = load_cache(&p1, CachePolicy::default()).unwrap();
        save_cache(&p2, &loaded).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn rejects_foreign_and_corrupt_files() {
        let path = tmp("foreign");
        // Not a paged file at all.
        std::fs::write(&path, "name,city\nx,y\n").unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        // A valid paged file whose stream is not a query cache.
        let mut w = PagedWriter::create(&path, 64).unwrap();
        w.append_page(b"#smartcrawl-sample v1\n").unwrap();
        w.finish().unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_torn_writes() {
        let path = tmp("torn");
        save_cache(&path, &sample_store()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Chop the tail off: the header (written last) still declares the
        // full page count, so open must fail cleanly.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = load_cache(&path, CachePolicy::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_entries() {
        let path = tmp("corrupt");
        // Declares one entry but carries none.
        let mut stream = TAG.to_vec();
        write_varint(&mut stream, 1);
        let mut w = PagedWriter::create(&path, 4096).unwrap();
        w.append_page(&stream).unwrap();
        w.finish().unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        // Trailing junk after the final entry.
        let mut stream = TAG.to_vec();
        write_varint(&mut stream, 0);
        stream.extend_from_slice(b"junk");
        let mut w = PagedWriter::create(&path, 4096).unwrap();
        w.append_page(&stream).unwrap();
        w.finish().unwrap();
        assert!(load_cache(&path, CachePolicy::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_applies_the_given_policy() {
        let path = tmp("policy");
        save_cache(&path, &sample_store()).unwrap();
        let small = load_cache(
            &path,
            CachePolicy {
                capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(small.len(), 2, "oldest entry evicted on load");
        let no_neg = load_cache(
            &path,
            CachePolicy {
                cache_negative: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(no_neg.len(), 2, "negative page dropped on load");
        assert!(no_neg.peek(&["empty".to_owned()]).is_none());
        std::fs::remove_file(&path).ok();
    }
}
