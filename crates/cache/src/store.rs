//! The capacity-bounded LRU page store.

use smartcrawl_hidden::{CacheStats, SearchPage};
use std::collections::HashMap;

/// What the cache keeps and what hits cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicy {
    /// Maximum number of cached pages (≥ 1). The least-recently-used entry
    /// is evicted when the store is full.
    pub capacity: usize,
    /// Whether *negative* results (empty pages) are cached. Real APIs
    /// often disable this so newly-appearing records are not masked;
    /// against the deterministic simulator it is safe and saves the most
    /// queries on selective workloads. Errors are never cached regardless:
    /// [`Transient`](smartcrawl_hidden::SearchError::Transient) and
    /// [`RateLimited`](smartcrawl_hidden::SearchError::RateLimited) say
    /// nothing about the query's true result.
    pub cache_negative: bool,
    /// Whether cache hits still consume the inner interface's budget
    /// (via [`SearchInterface::record_cache_hit`]). Off by default: a hit
    /// never leaves the cache layer, which is the whole point. On for
    /// faithfulness experiments where the paper's budget semantics must be
    /// preserved exactly even with a cache in the stack.
    ///
    /// [`SearchInterface::record_cache_hit`]:
    ///     smartcrawl_hidden::SearchInterface::record_cache_hit
    pub charged_hits: bool,
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self { capacity: 1 << 16, cache_negative: true, charged_hits: false }
    }
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: Vec<String>,
    page: SearchPage,
    /// Neighbor toward the MRU end.
    prev: usize,
    /// Neighbor toward the LRU end.
    next: usize,
}

/// An LRU map from canonical query keys to result pages, with cache
/// counters. The store is deliberately separate from the
/// [`CachedInterface`](crate::CachedInterface) wrapper so one store can be
/// shared (and keep accumulating) across many crawl runs — the sweep /
/// multi-seed reuse case — and persisted between processes.
#[derive(Debug)]
pub struct QueryCache {
    policy: CachePolicy,
    map: HashMap<Vec<String>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty).
    tail: usize,
    stats: CacheStats,
}

impl QueryCache {
    /// An empty cache with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        assert!(policy.capacity >= 1, "cache capacity must be at least 1");
        Self {
            policy,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// The store's policy.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters (shared-store runs see them keep growing; use
    /// [`CacheStats::since`] for per-run deltas).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a canonical key without touching counters or recency —
    /// for inspection and for callers that must decide whether the hit is
    /// admissible (charged-hits mode) before committing it.
    pub fn peek(&self, key: &[String]) -> Option<&SearchPage> {
        self.map.get(key).map(|&i| &self.slots[i].page)
    }

    /// Commits a hit previously found via [`QueryCache::peek`]: counts it
    /// and promotes the entry to most-recently-used.
    pub fn commit_hit(&mut self, key: &[String]) {
        let Some(&i) = self.map.get(key) else { return };
        self.stats.hits += 1;
        if self.slots[i].page.records.is_empty() {
            self.stats.negative_hits += 1;
        }
        self.detach(i);
        self.push_front(i);
    }

    /// Counts a lookup that found nothing.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Counts a miss whose inner call failed (errors are never cached).
    pub fn note_uncached_error(&mut self) {
        self.stats.uncached_errors += 1;
    }

    /// Counting lookup: a hit promotes the entry and returns a clone of
    /// the page; a miss is tallied and returns `None`. Page records are
    /// `Arc`-backed, so the clone is per-record refcount bumps, not a deep
    /// copy of the cell strings.
    pub fn get(&mut self, key: &[String]) -> Option<SearchPage> {
        let Some(&i) = self.map.get(key) else {
            self.note_miss();
            return None;
        };
        self.commit_hit(key);
        self.slots.get(i).map(|s| s.page.clone())
    }

    /// Stores a page under a canonical key, evicting the LRU entry if the
    /// store is full. Empty pages are skipped (silently) unless
    /// [`CachePolicy::cache_negative`] is set.
    pub fn insert(&mut self, key: Vec<String>, page: SearchPage) {
        if self.insert_untallied(key, page) {
            self.stats.insertions += 1;
        }
    }

    /// [`QueryCache::insert`] without counter updates — used when loading
    /// a persisted store, whose entries were already counted by the run
    /// that created them. Returns whether the page was admitted.
    pub(crate) fn insert_untallied(&mut self, key: Vec<String>, page: SearchPage) -> bool {
        if !self.policy.cache_negative && page.records.is_empty() {
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            // Same logical query stored again (e.g. by hand): refresh.
            self.slots[i].page = page;
            self.detach(i);
            self.push_front(i);
            return true;
        }
        if self.map.len() >= self.policy.capacity {
            self.evict_lru();
        }
        let slot = Slot { key: key.clone(), page, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        true
    }

    /// The cached entries in least-recently-used-first order (the order
    /// persistence writes, so a reload reconstructs recency exactly).
    pub fn iter_lru(&self) -> impl Iterator<Item = (&[String], &SearchPage)> {
        std::iter::successors(
            (self.tail != NIL).then_some(self.tail),
            move |&i| (self.slots[i].prev != NIL).then_some(self.slots[i].prev),
        )
        .map(move |i| (self.slots[i].key.as_slice(), &self.slots[i].page))
    }

    /// Zeroes the counters — used after loading a persisted store, where
    /// any evictions performed during the load are setup work, not cache
    /// activity.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn evict_lru(&mut self) {
        let i = self.tail;
        debug_assert!(i != NIL, "evict called on an empty store");
        self.detach(i);
        let key = std::mem::take(&mut self.slots[i].key);
        self.slots[i].page = SearchPage::default();
        self.map.remove(&key);
        self.free.push(i);
        self.stats.evictions += 1;
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(CachePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{ExternalId, Retrieved};

    fn key(s: &str) -> Vec<String> {
        s.split(' ').map(str::to_owned).collect()
    }

    fn page(n: usize) -> SearchPage {
        SearchPage {
            records: (0..n)
                .map(|i| Retrieved::new(ExternalId(i as u64), vec![format!("f{i}")], vec![]))
                .collect(),
        }
    }

    #[test]
    fn get_hits_after_insert_and_counts() {
        let mut c = QueryCache::default();
        assert_eq!(c.get(&key("a")), None);
        c.insert(key("a"), page(2));
        assert_eq!(c.get(&key("a")).unwrap().records.len(), 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.negative_hits, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_in_recency_order() {
        let mut c = QueryCache::new(CachePolicy { capacity: 2, ..Default::default() });
        c.insert(key("a"), page(1));
        c.insert(key("b"), page(1));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get(&key("a")).is_some());
        c.insert(key("c"), page(1));
        assert_eq!(c.len(), 2);
        assert!(c.peek(&key("a")).is_some());
        assert!(c.peek(&key("b")).is_none(), "LRU entry must be evicted");
        assert!(c.peek(&key("c")).is_some());
        assert_eq!(c.stats().evictions, 1);
        // The freed slot is reused rather than growing the arena.
        c.insert(key("d"), page(1));
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = QueryCache::new(CachePolicy { capacity: 1, ..Default::default() });
        for i in 0..5 {
            c.insert(key(&format!("q{i}")), page(1));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 4);
        assert!(c.peek(&key("q4")).is_some());
    }

    #[test]
    fn negative_pages_respect_policy() {
        let mut yes = QueryCache::default();
        yes.insert(key("none"), page(0));
        assert!(yes.get(&key("none")).is_some());
        assert_eq!(yes.stats().negative_hits, 1);

        let mut no =
            QueryCache::new(CachePolicy { cache_negative: false, ..Default::default() });
        no.insert(key("none"), page(0));
        assert!(no.get(&key("none")).is_none());
        assert_eq!(no.stats().insertions, 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_growth() {
        let mut c = QueryCache::default();
        c.insert(key("a"), page(1));
        c.insert(key("a"), page(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&key("a")).unwrap().records.len(), 3);
    }

    #[test]
    fn iter_lru_is_oldest_first() {
        let mut c = QueryCache::default();
        c.insert(key("a"), page(1));
        c.insert(key("b"), page(1));
        c.insert(key("c"), page(1));
        assert!(c.get(&key("a")).is_some()); // a becomes MRU
        let order: Vec<&[String]> = c.iter_lru().map(|(k, _)| k).collect();
        assert_eq!(order, vec![&key("b")[..], &key("c")[..], &key("a")[..]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        QueryCache::new(CachePolicy { capacity: 0, ..Default::default() });
    }
}
