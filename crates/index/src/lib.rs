//! Indexing substrate for the SmartCrawl reproduction (paper §6.3, Fig. 3).
//!
//! The efficient implementation of QSel-Est relies on three structures:
//!
//! * an [`InvertedIndex`] per database (`D` and the sample `Hs`) to compute
//!   query frequencies `|q(D)|`, `|q(Hs)|` by posting-list intersection
//!   (Fig. 3(a));
//! * a [`ForwardIndex`] mapping each local record to the pool queries it
//!   satisfies, so that removing a covered record touches only the affected
//!   queries (Fig. 3(b));
//! * a [`LazyQueue`] — a max-priority queue with a delta-update mechanism
//!   that defers priority recomputation until a query actually reaches the
//!   top (Fig. 3(c), Algorithm 4 lines 16–27).

//!
//! The [`backend`] module abstracts the first two behind storage-agnostic
//! traits ([`PostingsBackend`], [`ForwardBackend`]) so the same selection
//! call sites can run against these in-RAM structures or the paged
//! on-disk substrate in `smartcrawl-store`.

pub mod backend;
pub mod forward;
pub mod inverted;
pub mod lazy_queue;

pub use backend::{remove_records_batch, ForwardBackend, PostingsBackend};
pub use forward::{ForwardIndex, RemovalScratch};
pub use inverted::InvertedIndex;
pub use lazy_queue::LazyQueue;

/// Position of a query within the query pool (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
