//! Backend traits: the storage-independent face of the two indexes.
//!
//! The selection machinery (engine setup, `LazyQueue` refresh, batched
//! `remove_records`, k-way intersection) only ever needs the *logical*
//! index operations — posting-list lookups, conjunctive intersection,
//! forward-list walks. [`PostingsBackend`] and [`ForwardBackend`] capture
//! exactly that surface so the same call sites run unchanged against the
//! in-RAM structures of this crate or the paged on-disk substrate of
//! `smartcrawl-store`, selected per run.
//!
//! Every method is defined by its *result set*, not its algorithm: a
//! conjunctive query's match set is a set intersection, which is unique,
//! so any two correct backends are digest-identical by construction —
//! that is what makes the RAM-vs-disk acceptance check meaningful.

use crate::forward::{ForwardIndex, RemovalScratch};
use crate::inverted::InvertedIndex;
use crate::QueryId;
use smartcrawl_text::{RecordId, TokenId};

/// Read-only interface of an inverted index over token-set documents.
///
/// Match sets are always produced in ascending record-id order, whatever
/// the backend — callers (pool generation, the engine's `|q(D)|`
/// bookkeeping) rely on that order being backend-independent.
pub trait PostingsBackend {
    /// Number of indexed documents.
    fn num_docs(&self) -> usize;

    /// Document frequency of a single token (`|I(w)|`).
    fn doc_frequency(&self, token: TokenId) -> usize;

    /// Appends the posting list `I(w)` to `out` (ascending record ids).
    /// `out` is *not* cleared — callers accumulate across tokens.
    fn postings_into(&self, token: TokenId, out: &mut Vec<RecordId>);

    /// Materializes `q(D)`: the sorted ids of all documents containing
    /// every token of `query`. The empty query matches nothing.
    fn matching(&self, query: &[TokenId]) -> Vec<RecordId>;

    /// `|q(D)|` without materializing the match set.
    fn frequency(&self, query: &[TokenId]) -> usize;

    /// Whether at least one document satisfies the query.
    fn any_match(&self, query: &[TokenId]) -> bool;
}

impl PostingsBackend for InvertedIndex {
    fn num_docs(&self) -> usize {
        InvertedIndex::num_docs(self)
    }

    fn doc_frequency(&self, token: TokenId) -> usize {
        InvertedIndex::doc_frequency(self, token)
    }

    fn postings_into(&self, token: TokenId, out: &mut Vec<RecordId>) {
        out.extend_from_slice(self.postings(token));
    }

    fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        InvertedIndex::matching(self, query)
    }

    fn frequency(&self, query: &[TokenId]) -> usize {
        InvertedIndex::frequency(self, query)
    }

    fn any_match(&self, query: &[TokenId]) -> bool {
        InvertedIndex::any_match(self, query)
    }
}

/// Read-only interface of a CSR forward index (record → queries it
/// satisfies). Lists come back in ascending query-id order for every
/// backend, which keeps [`remove_records_batch`]'s first-touch apply
/// order backend-independent.
pub trait ForwardBackend {
    /// Number of records covered by the index.
    fn num_records(&self) -> usize;

    /// Pool size the index was built against (sizes removal scratch).
    fn num_queries(&self) -> usize;

    /// Total number of (record, query) incidences — `Σ_d |F(d)|`.
    fn total_incidences(&self) -> usize;

    /// Replaces `out` with `F(rid)`, ascending query ids (empty for
    /// out-of-range records).
    fn queries_of_into(&self, rid: RecordId, out: &mut Vec<QueryId>);
}

impl ForwardBackend for ForwardIndex {
    fn num_records(&self) -> usize {
        ForwardIndex::num_records(self)
    }

    fn num_queries(&self) -> usize {
        ForwardIndex::num_queries(self)
    }

    fn total_incidences(&self) -> usize {
        ForwardIndex::total_incidences(self)
    }

    fn queries_of_into(&self, rid: RecordId, out: &mut Vec<QueryId>) {
        out.clear();
        out.extend_from_slice(self.queries_of(rid));
    }
}

/// Batched removal of one page's records against any [`ForwardBackend`]:
/// coalesces the per-query decrements across `records` and invokes
/// `apply(q, count, weighted)` exactly once per touched query, where
/// `count` is how many of the removed records match `q` and `weighted`
/// how many of those also satisfied the caller's `weighted` predicate
/// (evaluated once per record).
///
/// Queries are applied in first-touch order — records in caller order,
/// each record's `F(d)` ascending — which is deterministic for a
/// deterministic input order *and* identical across backends (both
/// produce ascending `F(d)`). This is the one removal path shared by the
/// RAM and disk forward indexes, so the bookkeeping order cannot diverge
/// between them by construction. Returns `Σ |F(d)|` over the batch.
pub fn remove_records_batch<B: ForwardBackend + ?Sized>(
    backend: &B,
    records: &[RecordId],
    mut weighted: impl FnMut(RecordId) -> bool,
    scratch: &mut RemovalScratch,
    mut apply: impl FnMut(QueryId, u32, u32),
) -> usize {
    scratch.resize(backend.num_queries());
    let mut incidences = 0usize;
    let mut row = std::mem::take(&mut scratch.row);
    for &rid in records {
        backend.queries_of_into(rid, &mut row);
        incidences += row.len();
        if row.is_empty() {
            continue;
        }
        let w = weighted(rid);
        for &q in &row {
            let i = q.index();
            if scratch.count[i] == 0 {
                scratch.touched.push(q.0);
            }
            scratch.count[i] += 1;
            if w {
                scratch.weighted[i] += 1;
            }
        }
    }
    scratch.row = row;
    // Indexed loop: `apply` may re-borrow the caller's world, and we
    // must reset the scratch counters as we drain.
    for t in 0..scratch.touched.len() {
        let q = QueryId(scratch.touched[t]);
        let i = q.index();
        apply(q, scratch.count[i], scratch.weighted[i]);
        scratch.count[i] = 0;
        scratch.weighted[i] = 0;
    }
    scratch.touched.clear();
    incidences
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::Document;

    fn docs(specs: &[&[u32]]) -> Vec<Document> {
        specs
            .iter()
            .map(|s| Document::from_tokens(s.iter().map(|&t| TokenId(t)).collect()))
            .collect()
    }

    #[test]
    fn ram_postings_backend_delegates() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[1], &[0, 1, 2]]), 3);
        let b: &dyn PostingsBackend = &idx;
        assert_eq!(b.num_docs(), 3);
        assert_eq!(b.doc_frequency(TokenId(1)), 3);
        let mut out = Vec::new();
        b.postings_into(TokenId(0), &mut out);
        b.postings_into(TokenId(2), &mut out);
        assert_eq!(out, vec![RecordId(0), RecordId(2), RecordId(2)]);
        assert_eq!(
            b.matching(&[TokenId(0), TokenId(1)]),
            vec![RecordId(0), RecordId(2)]
        );
        assert_eq!(b.frequency(&[TokenId(1)]), 3);
        assert!(b.any_match(&[TokenId(2)]));
        assert!(!b.any_match(&[]));
    }

    #[test]
    fn generic_removal_matches_inherent_path() {
        // q0 matches {r0, r2}, q1 matches {r1}, q2 matches {r0, r1, r2}.
        let matches = vec![
            vec![RecordId(0), RecordId(2)],
            vec![RecordId(1)],
            vec![RecordId(0), RecordId(1), RecordId(2)],
        ];
        let f = ForwardIndex::build(3, &matches);
        let mut scratch = RemovalScratch::default();
        let mut seen = Vec::new();
        let walked = remove_records_batch(
            &f,
            &[RecordId(0), RecordId(1), RecordId(2)],
            |rid| rid == RecordId(1),
            &mut scratch,
            |q, count, weighted| seen.push((q.0, count, weighted)),
        );
        assert_eq!(walked, 6);
        assert_eq!(seen, vec![(0, 2, 0), (2, 3, 1), (1, 1, 1)]);
    }
}
