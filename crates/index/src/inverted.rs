//! Inverted index over token-set documents (paper Fig. 3(a)).
//!
//! `|q(D)| = |⋂_{w ∈ q} I(w)|`: a conjunctive keyword query's frequency is
//! the size of the intersection of the query keywords' posting lists. The
//! intersection visits lists rarest-first and probes the remaining lists
//! with galloping (doubling) search, which is near-optimal when list sizes
//! are skewed — the common case under Zipfian vocabularies.

use smartcrawl_text::{Document, RecordId, TokenId};

/// An immutable inverted index: token → sorted list of record ids.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: Vec<Vec<RecordId>>,
    num_docs: usize,
}

impl InvertedIndex {
    /// Builds the index over `docs`; document `i` gets `RecordId(i)`.
    ///
    /// `vocab_size` must be at least as large as every token id occurring in
    /// `docs` (use `Vocabulary::len()`).
    pub fn build(docs: &[Document], vocab_size: usize) -> Self {
        let mut postings: Vec<Vec<RecordId>> = vec![Vec::new(); vocab_size];
        for (i, doc) in docs.iter().enumerate() {
            let rid = RecordId(i as u32);
            for token in doc.iter() {
                assert!(token.index() < vocab_size, "token id out of vocabulary range");
                postings[token.index()].push(rid);
            }
        }
        // Documents are visited in ascending id order and each token occurs
        // at most once per document, so every posting list is already
        // sorted and deduplicated.
        Self { postings, num_docs: docs.len() }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The posting list `I(w)` for a token (empty if the token is unknown
    /// or beyond the indexed vocabulary).
    pub fn postings(&self, token: TokenId) -> &[RecordId] {
        self.postings.get(token.index()).map_or(&[], Vec::as_slice)
    }

    /// Document frequency of a single token.
    pub fn doc_frequency(&self, token: TokenId) -> usize {
        self.postings(token).len()
    }

    /// Materializes `q(D)`: the sorted ids of all documents containing every
    /// token of `query`. An empty query matches nothing by convention (the
    /// pool never contains the empty query).
    pub fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&[RecordId]> = query.iter().map(|&t| self.postings(t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let Some((seed, rest)) = lists.split_first() else { return Vec::new() };
        if seed.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(seed.len());
        'cand: for &rid in *seed {
            for list in rest {
                if !gallop_contains(list, rid) {
                    continue 'cand;
                }
            }
            out.push(rid);
        }
        out
    }

    /// `|q(D)|` without materializing the match set.
    pub fn frequency(&self, query: &[TokenId]) -> usize {
        if query.is_empty() {
            return 0;
        }
        let mut lists: Vec<&[RecordId]> = query.iter().map(|&t| self.postings(t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let Some((seed, rest)) = lists.split_first() else { return 0 };
        seed.iter()
            .filter(|&&rid| rest.iter().all(|list| gallop_contains(list, rid)))
            .count()
    }

    /// Whether at least one document satisfies the query.
    pub fn any_match(&self, query: &[TokenId]) -> bool {
        if query.is_empty() {
            return false;
        }
        let mut lists: Vec<&[RecordId]> = query.iter().map(|&t| self.postings(t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let Some((seed, rest)) = lists.split_first() else { return false };
        seed.iter().any(|&rid| rest.iter().all(|list| gallop_contains(list, rid)))
    }
}

/// Galloping membership probe on a sorted slice.
fn gallop_contains(list: &[RecordId], target: RecordId) -> bool {
    match list.first() {
        None => return false,
        Some(&f) if f == target => return true,
        Some(&f) if f > target => return false,
        _ => {}
    }
    // Exponentially widen until list[hi] >= target (or the end), then binary
    // search the inclusive window [hi/2, hi].
    let mut hi = 1usize;
    while list.get(hi).is_some_and(|&v| v < target) {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let end = (hi + 1).min(list.len());
    list.get(lo..end).is_some_and(|w| w.binary_search(&target).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::TokenId;

    fn docs(specs: &[&[u32]]) -> Vec<Document> {
        specs
            .iter()
            .map(|s| Document::from_tokens(s.iter().map(|&t| TokenId(t)).collect()))
            .collect()
    }

    fn rids(ids: &[u32]) -> Vec<RecordId> {
        ids.iter().map(|&i| RecordId(i)).collect()
    }

    #[test]
    fn postings_are_sorted_per_token() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[1], &[0, 1, 2]]), 3);
        assert_eq!(idx.postings(TokenId(0)), rids(&[0, 2]));
        assert_eq!(idx.postings(TokenId(1)), rids(&[0, 1, 2]));
        assert_eq!(idx.postings(TokenId(2)), rids(&[2]));
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn running_example_frequencies() {
        // Figure 1 local database: d1=Thai Noodle House, d2=Jade Noodle House,
        // d3=Thai House, d4=Thai Noodle Express (a consistent stand-in).
        // tokens: 0=thai 1=noodle 2=house 3=jade 4=express
        let idx = InvertedIndex::build(
            &docs(&[&[0, 1, 2], &[3, 1, 2], &[0, 2], &[0, 1, 4]]),
            5,
        );
        // q5 = "house" → 3 records; q7 = "noodle house" → 2 records.
        assert_eq!(idx.frequency(&[TokenId(2)]), 3);
        assert_eq!(idx.frequency(&[TokenId(1), TokenId(2)]), 2);
        assert_eq!(idx.matching(&[TokenId(1), TokenId(2)]), rids(&[0, 1]));
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = InvertedIndex::build(&docs(&[&[0]]), 1);
        assert_eq!(idx.frequency(&[]), 0);
        assert!(idx.matching(&[]).is_empty());
        assert!(!idx.any_match(&[]));
    }

    #[test]
    fn unknown_token_matches_nothing() {
        let idx = InvertedIndex::build(&docs(&[&[0]]), 1);
        assert_eq!(idx.frequency(&[TokenId(99)]), 0);
        assert!(idx.matching(&[TokenId(0), TokenId(99)]).is_empty());
    }

    #[test]
    fn frequency_agrees_with_matching_len() {
        let idx = InvertedIndex::build(
            &docs(&[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2], &[3]]),
            4,
        );
        for q in [&[TokenId(0)][..], &[TokenId(0), TokenId(1)], &[TokenId(0), TokenId(1), TokenId(2)]] {
            assert_eq!(idx.frequency(q), idx.matching(q).len());
        }
    }

    #[test]
    fn any_match_detects_presence() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[2]]), 3);
        assert!(idx.any_match(&[TokenId(0), TokenId(1)]));
        assert!(!idx.any_match(&[TokenId(0), TokenId(2)]));
    }
}
