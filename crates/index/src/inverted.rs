//! Inverted index over token-set documents (paper Fig. 3(a)).
//!
//! `|q(D)| = |⋂_{w ∈ q} I(w)|`: a conjunctive keyword query's frequency is
//! the size of the intersection of the query keywords' posting lists. The
//! intersection visits lists rarest-first and probes the remaining lists
//! with galloping (doubling) search, which is near-optimal when list sizes
//! are skewed — the common case under Zipfian vocabularies.

use smartcrawl_text::{Document, RecordId, TokenId};

/// An immutable inverted index: token → sorted list of record ids.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: Vec<Vec<RecordId>>,
    num_docs: usize,
}

impl InvertedIndex {
    /// Builds the index over `docs`; document `i` gets `RecordId(i)`.
    ///
    /// `vocab_size` must be at least as large as every token id occurring in
    /// `docs` (use `Vocabulary::len()`).
    pub fn build(docs: &[Document], vocab_size: usize) -> Self {
        let mut postings: Vec<Vec<RecordId>> = vec![Vec::new(); vocab_size];
        for (i, doc) in docs.iter().enumerate() {
            let rid = RecordId(i as u32);
            for token in doc.iter() {
                assert!(token.index() < vocab_size, "token id out of vocabulary range");
                postings[token.index()].push(rid);
            }
        }
        // Documents are visited in ascending id order and each token occurs
        // at most once per document, so every posting list is already
        // sorted and deduplicated.
        Self { postings, num_docs: docs.len() }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The posting list `I(w)` for a token (empty if the token is unknown
    /// or beyond the indexed vocabulary).
    pub fn postings(&self, token: TokenId) -> &[RecordId] {
        self.postings.get(token.index()).map_or(&[], Vec::as_slice)
    }

    /// Document frequency of a single token.
    pub fn doc_frequency(&self, token: TokenId) -> usize {
        self.postings(token).len()
    }

    /// Materializes `q(D)`: the sorted ids of all documents containing every
    /// token of `query`. An empty query matches nothing by convention (the
    /// pool never contains the empty query).
    pub fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        self.intersect(query, |out, rid| out.push(rid))
    }

    /// `|q(D)|` without materializing the match set.
    pub fn frequency(&self, query: &[TokenId]) -> usize {
        match query {
            [] => 0,
            // Single-token fast path: the posting list length IS the
            // frequency — no need to walk the list.
            [t] => self.postings(*t).len(),
            _ => {
                let mut n = 0usize;
                self.intersect(query, |_, _| n += 1);
                n
            }
        }
    }

    /// Whether at least one document satisfies the query.
    pub fn any_match(&self, query: &[TokenId]) -> bool {
        match query {
            [] => false,
            [t] => !self.postings(*t).is_empty(),
            _ => {
                let mut found = false;
                // The cursor walk cannot early-exit through the callback,
                // but a non-empty intersection usually hits within the
                // first few seed candidates anyway.
                self.intersect(query, |_, _| found = true);
                found
            }
        }
    }

    /// Cursor-galloping k-way intersection: walks the smallest posting
    /// list and advances one monotone cursor per remaining list with
    /// exponential search *from the cursor* — consecutive seed candidates
    /// are ascending, so no list position is ever re-scanned and the total
    /// work is bounded by the sum of list lengths (instead of
    /// `|seed| · log` with from-the-start restarts per candidate). `emit`
    /// receives each matching id in ascending order; the returned buffer
    /// is whatever `emit` pushed (empty for counting callers).
    fn intersect(
        &self,
        query: &[TokenId],
        mut emit: impl FnMut(&mut Vec<RecordId>, RecordId),
    ) -> Vec<RecordId> {
        let mut out = Vec::new();
        if query.is_empty() {
            return out;
        }
        let mut lists: Vec<&[RecordId]> = query.iter().map(|&t| self.postings(t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let Some((&seed, rest)) = lists.split_first() else { return out };
        if seed.is_empty() {
            return out;
        }
        if rest.is_empty() {
            for &rid in seed {
                emit(&mut out, rid);
            }
            return out;
        }
        // Pairwise fast path (the dominant shape: two-keyword mined
        // queries): when the lists are within a galloping-overhead factor
        // of each other, a branchy two-pointer merge touches every element
        // once and beats per-candidate exponential search; heavily skewed
        // pairs still gallop.
        if let [other] = rest {
            if other.len() / seed.len().max(1) < 16 {
                let (mut i, mut j) = (0usize, 0usize);
                while let (Some(&a), Some(&b)) = (seed.get(i), other.get(j)) {
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            emit(&mut out, a);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                return out;
            }
        }
        let mut cursors = vec![0usize; rest.len()];
        'cand: for &rid in seed {
            for (cursor, &list) in cursors.iter_mut().zip(rest) {
                *cursor = gallop_advance(list, *cursor, rid);
                if *cursor == list.len() {
                    // No element >= rid remains in this list, so no later
                    // (larger) seed candidate can match either.
                    break 'cand;
                }
                // lint:allow(panic-freedom) gallop_advance returns an index <= list.len(), and == was handled above
                if list[*cursor] != rid {
                    continue 'cand;
                }
            }
            emit(&mut out, rid);
        }
        out
    }
}

/// Index of the first element of `list[start..]` that is `>= target`, as an
/// absolute index (`list.len()` if none). Exponential widening from
/// `start`, then binary search inside the final window — O(log distance)
/// in how far the cursor actually moves, which is what makes the monotone
/// intersection cursor cheap.
fn gallop_advance(list: &[RecordId], start: usize, target: RecordId) -> usize {
    if list.get(start).is_none_or(|&v| v >= target) {
        return start;
    }
    // Invariant: list[start + lo] < target; widen hi until it crosses.
    let mut step = 1usize;
    let mut lo = 0usize;
    loop {
        let probe = start + step;
        match list.get(probe) {
            Some(&v) if v < target => {
                lo = step;
                step <<= 1;
            }
            _ => break,
        }
    }
    // lint:allow(panic-freedom) list[start + lo] < target was just probed, so start + lo < len; the end is clamped to len
    let tail = &list[start + lo..(start + step + 1).min(list.len())];
    let off = tail.partition_point(|&v| v < target);
    start + lo + off
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::TokenId;

    fn docs(specs: &[&[u32]]) -> Vec<Document> {
        specs
            .iter()
            .map(|s| Document::from_tokens(s.iter().map(|&t| TokenId(t)).collect()))
            .collect()
    }

    fn rids(ids: &[u32]) -> Vec<RecordId> {
        ids.iter().map(|&i| RecordId(i)).collect()
    }

    #[test]
    fn postings_are_sorted_per_token() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[1], &[0, 1, 2]]), 3);
        assert_eq!(idx.postings(TokenId(0)), rids(&[0, 2]));
        assert_eq!(idx.postings(TokenId(1)), rids(&[0, 1, 2]));
        assert_eq!(idx.postings(TokenId(2)), rids(&[2]));
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn running_example_frequencies() {
        // Figure 1 local database: d1=Thai Noodle House, d2=Jade Noodle House,
        // d3=Thai House, d4=Thai Noodle Express (a consistent stand-in).
        // tokens: 0=thai 1=noodle 2=house 3=jade 4=express
        let idx = InvertedIndex::build(
            &docs(&[&[0, 1, 2], &[3, 1, 2], &[0, 2], &[0, 1, 4]]),
            5,
        );
        // q5 = "house" → 3 records; q7 = "noodle house" → 2 records.
        assert_eq!(idx.frequency(&[TokenId(2)]), 3);
        assert_eq!(idx.frequency(&[TokenId(1), TokenId(2)]), 2);
        assert_eq!(idx.matching(&[TokenId(1), TokenId(2)]), rids(&[0, 1]));
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = InvertedIndex::build(&docs(&[&[0]]), 1);
        assert_eq!(idx.frequency(&[]), 0);
        assert!(idx.matching(&[]).is_empty());
        assert!(!idx.any_match(&[]));
    }

    #[test]
    fn unknown_token_matches_nothing() {
        let idx = InvertedIndex::build(&docs(&[&[0]]), 1);
        assert_eq!(idx.frequency(&[TokenId(99)]), 0);
        assert!(idx.matching(&[TokenId(0), TokenId(99)]).is_empty());
    }

    #[test]
    fn frequency_agrees_with_matching_len() {
        let idx = InvertedIndex::build(
            &docs(&[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2], &[3]]),
            4,
        );
        for q in [&[TokenId(0)][..], &[TokenId(0), TokenId(1)], &[TokenId(0), TokenId(1), TokenId(2)]] {
            assert_eq!(idx.frequency(q), idx.matching(q).len());
        }
    }

    #[test]
    fn any_match_detects_presence() {
        let idx = InvertedIndex::build(&docs(&[&[0, 1], &[2]]), 3);
        assert!(idx.any_match(&[TokenId(0), TokenId(1)]));
        assert!(!idx.any_match(&[TokenId(0), TokenId(2)]));
    }
}
