//! Forward index: record → queries it satisfies (paper Fig. 3(b)).
//!
//! When a local record `d` is removed from `D` (because it was covered, or
//! predicted to lie in `ΔD`), only the queries in `F(d)` need their
//! frequency `|q(D)|` decremented. `F(d)` is typically tiny compared to the
//! pool, which is what makes the delta-update mechanism pay off.

use crate::QueryId;
use smartcrawl_text::RecordId;

/// Immutable record → query-list mapping.
#[derive(Debug, Clone, Default)]
pub struct ForwardIndex {
    lists: Vec<Vec<QueryId>>,
}

impl ForwardIndex {
    /// Builds the forward index for `num_records` records given, for each
    /// query, the records it matches (`q(D)` from the inverted index).
    ///
    /// `query_matches` is visited in query-id order: `query_matches[q]` is
    /// the match set of `QueryId(q)`.
    pub fn build(num_records: usize, query_matches: &[Vec<RecordId>]) -> Self {
        let mut lists: Vec<Vec<QueryId>> = vec![Vec::new(); num_records];
        for (q, matches) in query_matches.iter().enumerate() {
            let qid = QueryId(q as u32);
            for &rid in matches {
                lists[rid.index()].push(qid);
            }
        }
        Self { lists }
    }

    /// `F(d)`: the queries satisfied by record `rid`.
    pub fn queries_of(&self, rid: RecordId) -> &[QueryId] {
        self.lists.get(rid.index()).map_or(&[], Vec::as_slice)
    }

    /// Number of records covered by the index.
    pub fn num_records(&self) -> usize {
        self.lists.len()
    }

    /// Total number of (record, query) incidences — `Σ_d |F(d)|`.
    pub fn total_incidences(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_inverts_query_matches() {
        // q0 matches {r0, r2}, q1 matches {r1}, q2 matches {r0, r1, r2}.
        let matches = vec![
            vec![RecordId(0), RecordId(2)],
            vec![RecordId(1)],
            vec![RecordId(0), RecordId(1), RecordId(2)],
        ];
        let f = ForwardIndex::build(3, &matches);
        assert_eq!(f.queries_of(RecordId(0)), &[QueryId(0), QueryId(2)]);
        assert_eq!(f.queries_of(RecordId(1)), &[QueryId(1), QueryId(2)]);
        assert_eq!(f.queries_of(RecordId(2)), &[QueryId(0), QueryId(2)]);
        assert_eq!(f.total_incidences(), 6);
        assert_eq!(f.num_records(), 3);
    }

    #[test]
    fn record_with_no_queries_has_empty_list() {
        let f = ForwardIndex::build(2, &[vec![RecordId(0)]]);
        assert_eq!(f.queries_of(RecordId(1)), &[]);
    }

    #[test]
    fn out_of_range_record_yields_empty_slice() {
        let f = ForwardIndex::build(1, &[]);
        assert_eq!(f.queries_of(RecordId(42)), &[]);
    }
}
