//! Forward index: record → queries it satisfies (paper Fig. 3(b)).
//!
//! When a local record `d` is removed from `D` (because it was covered, or
//! predicted to lie in `ΔD`), only the queries in `F(d)` need their
//! frequency `|q(D)|` decremented. `F(d)` is typically tiny compared to the
//! pool, which is what makes the delta-update mechanism pay off.
//!
//! # Layout
//!
//! The index is stored in CSR (compressed sparse row) form: one flat
//! `postings` array of query ids plus an `offsets` array delimiting each
//! record's slice. Compared to a `Vec<Vec<QueryId>>` this removes a pointer
//! chase per record and keeps the whole structure in two contiguous
//! allocations — the removal path walks `F(d)` for every record of every
//! page, so locality matters.
//!
//! [`ForwardIndex::remove_records`] batches one page's removals: the
//! per-query decrements are coalesced in [`RemovalScratch`] and handed to
//! the caller once per touched query, so a query matched by ten removed
//! records gets one frequency update and one queue invalidation instead of
//! ten.

use crate::QueryId;
use smartcrawl_text::RecordId;

/// Immutable record → query-list mapping in CSR layout.
#[derive(Debug, Clone, Default)]
pub struct ForwardIndex {
    /// `offsets[r]..offsets[r+1]` delimits record `r`'s slice of `postings`.
    offsets: Vec<u32>,
    /// All `F(d)` lists back to back, ascending query id within a record.
    postings: Vec<QueryId>,
    /// Pool size the index was built against (sizes removal scratch).
    num_queries: usize,
}

impl ForwardIndex {
    /// Builds the forward index for `num_records` records given, for each
    /// query, the records it matches (`q(D)` from the inverted index).
    ///
    /// `query_matches` is visited in query-id order: `query_matches[q]` is
    /// the match set of `QueryId(q)`. Two passes: count each record's list
    /// length, prefix-sum into offsets, then fill — visiting queries in
    /// ascending order a second time leaves every record's slice sorted by
    /// query id, matching the nested-vec layout this replaces.
    pub fn build(num_records: usize, query_matches: &[Vec<RecordId>]) -> Self {
        let mut offsets = vec![0u32; num_records + 1];
        for matches in query_matches {
            for &rid in matches {
                offsets[rid.index() + 1] += 1;
            }
        }
        for r in 0..num_records {
            offsets[r + 1] += offsets[r];
        }
        let mut cursor: Vec<u32> = offsets[..num_records].to_vec();
        let mut postings = vec![QueryId(0); offsets[num_records] as usize];
        for (q, matches) in query_matches.iter().enumerate() {
            let qid = QueryId(q as u32);
            for &rid in matches {
                let slot = cursor[rid.index()];
                postings[slot as usize] = qid;
                cursor[rid.index()] = slot + 1;
            }
        }
        Self {
            offsets,
            postings,
            num_queries: query_matches.len(),
        }
    }

    /// `F(d)`: the queries satisfied by record `rid`.
    pub fn queries_of(&self, rid: RecordId) -> &[QueryId] {
        let i = rid.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.postings[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of records covered by the index.
    pub fn num_records(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Pool size the index was built against.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total number of (record, query) incidences — `Σ_d |F(d)|`.
    pub fn total_incidences(&self) -> usize {
        self.postings.len()
    }

    /// Batched removal of one page's records: coalesces the per-query
    /// decrements across `records` and invokes `apply(q, count, weighted)`
    /// exactly once per touched query, where `count` is how many of the
    /// removed records match `q` and `weighted` how many of those also
    /// satisfied the caller's `weighted` predicate (evaluated once per
    /// record, e.g. "was this record sample-matched").
    ///
    /// Queries are applied in first-touch order — records in caller order,
    /// each record's `F(d)` ascending — which is deterministic for a
    /// deterministic input order. Returns `Σ |F(d)|` over the batch (the
    /// incidence count the removal walked, coalesced or not), so existing
    /// forward-touch accounting is preserved.
    /// Delegates to [`crate::backend::remove_records_batch`] — the one
    /// coalescing implementation shared by every
    /// [`ForwardBackend`](crate::backend::ForwardBackend), so the RAM and
    /// disk removal orders cannot diverge.
    pub fn remove_records(
        &self,
        records: &[RecordId],
        weighted: impl FnMut(RecordId) -> bool,
        scratch: &mut RemovalScratch,
        apply: impl FnMut(QueryId, u32, u32),
    ) -> usize {
        crate::backend::remove_records_batch(self, records, weighted, scratch, apply)
    }
}

/// Reusable per-batch buffers for [`ForwardIndex::remove_records`]: dense
/// per-query counters plus the list of queries touched this batch. Keeping
/// them outside the index lets one scratch serve the whole crawl with zero
/// steady-state allocation (counters are reset by draining `touched`, not
/// by clearing the dense arrays).
#[derive(Debug, Clone, Default)]
pub struct RemovalScratch {
    pub(crate) count: Vec<u32>,
    pub(crate) weighted: Vec<u32>,
    pub(crate) touched: Vec<u32>,
    /// Row buffer for backends that must copy `F(d)` out (disk reads).
    pub(crate) row: Vec<QueryId>,
}

impl RemovalScratch {
    /// Ensures the dense counters cover query ids `0..num_queries`.
    pub(crate) fn resize(&mut self, num_queries: usize) {
        if self.count.len() < num_queries {
            self.count.resize(num_queries, 0);
            self.weighted.resize(num_queries, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_inverts_query_matches() {
        // q0 matches {r0, r2}, q1 matches {r1}, q2 matches {r0, r1, r2}.
        let matches = vec![
            vec![RecordId(0), RecordId(2)],
            vec![RecordId(1)],
            vec![RecordId(0), RecordId(1), RecordId(2)],
        ];
        let f = ForwardIndex::build(3, &matches);
        assert_eq!(f.queries_of(RecordId(0)), &[QueryId(0), QueryId(2)]);
        assert_eq!(f.queries_of(RecordId(1)), &[QueryId(1), QueryId(2)]);
        assert_eq!(f.queries_of(RecordId(2)), &[QueryId(0), QueryId(2)]);
        assert_eq!(f.total_incidences(), 6);
        assert_eq!(f.num_records(), 3);
    }

    #[test]
    fn record_with_no_queries_has_empty_list() {
        let f = ForwardIndex::build(2, &[vec![RecordId(0)]]);
        assert_eq!(f.queries_of(RecordId(1)), &[]);
    }

    #[test]
    fn out_of_range_record_yields_empty_slice() {
        let f = ForwardIndex::build(1, &[]);
        assert_eq!(f.queries_of(RecordId(42)), &[]);
    }

    #[test]
    fn remove_records_coalesces_per_query() {
        // q0 matches {r0, r2}, q1 matches {r1}, q2 matches {r0, r1, r2}.
        let matches = vec![
            vec![RecordId(0), RecordId(2)],
            vec![RecordId(1)],
            vec![RecordId(0), RecordId(1), RecordId(2)],
        ];
        let f = ForwardIndex::build(3, &matches);
        let mut scratch = RemovalScratch::default();
        let mut seen = Vec::new();
        // r1 is "weighted", r0/r2 are not.
        let walked = f.remove_records(
            &[RecordId(0), RecordId(1), RecordId(2)],
            |rid| rid == RecordId(1),
            &mut scratch,
            |q, count, weighted| seen.push((q.0, count, weighted)),
        );
        assert_eq!(walked, 6);
        // First-touch order: r0 touches q0 then q2, r1 adds q1.
        assert_eq!(seen, vec![(0, 2, 0), (2, 3, 1), (1, 1, 1)]);
    }

    #[test]
    fn removal_scratch_resets_between_batches() {
        let f = ForwardIndex::build(2, &[vec![RecordId(0), RecordId(1)]]);
        let mut scratch = RemovalScratch::default();
        let mut seen = Vec::new();
        f.remove_records(
            &[RecordId(0)],
            |_| true,
            &mut scratch,
            |q, c, w| {
                seen.push((q.0, c, w));
            },
        );
        f.remove_records(
            &[RecordId(1)],
            |_| false,
            &mut scratch,
            |q, c, w| {
                seen.push((q.0, c, w));
            },
        );
        // The second batch must not inherit the first batch's counters.
        assert_eq!(seen, vec![(0, 1, 1), (0, 1, 0)]);
    }

    #[test]
    fn remove_records_skips_recordless_entries() {
        let f = ForwardIndex::build(2, &[vec![RecordId(0)]]);
        let mut scratch = RemovalScratch::default();
        let mut calls = 0;
        let walked = f.remove_records(
            &[RecordId(1), RecordId(7)],
            |_| true,
            &mut scratch,
            |_, _, _| {
                calls += 1;
            },
        );
        assert_eq!(walked, 0);
        assert_eq!(calls, 0);
    }
}
