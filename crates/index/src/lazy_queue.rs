//! Max-priority queue with deferred ("delta-update") priority maintenance
//! (paper Fig. 3(c), Algorithm 4 lines 16–27).
//!
//! QSel-Est repeatedly needs `argmax_q benefit(q)` over a pool whose
//! benefits decay as local records get covered. Rewriting every affected
//! priority after each iteration would cost `O(|F(d)|·log|Q|)` heap
//! operations per removed record. Instead, the queue keeps possibly-stale
//! priorities and the caller merely *marks* a query dirty when one of its
//! matching records is removed. Only when a dirty query reaches the top is
//! its priority recomputed (via a caller-supplied closure, since the
//! recomputation involves estimator state the queue knows nothing about).
//! A query is returned only once its stored priority is clean — so the
//! returned query is a true maximum.
//!
//! # Layout
//!
//! The queue is a set of dense flat arrays indexed by [`QueryId`], not a
//! [`std::collections::BinaryHeap`] of entry structs:
//!
//! * `heap` — an implicit binary max-heap holding each live query id
//!   exactly once; `pos` maps a query back to its heap slot (or
//!   [`NOT_IN_HEAP`]). Membership in `heap` *is* liveness.
//! * `priority` — the authoritative stored priority, read directly during
//!   sifts. No priorities are duplicated inside heap entries, so there are
//!   no superseded entries to skip at pop time and the heap never grows
//!   beyond the live query count.
//! * `generation` / `clean_gen` — staleness stamps. `mark_dirty` bumps
//!   `generation` (only when the two stamps agree, so they never drift more
//!   than one apart and a wrapping bump cannot alias a clean state);
//!   recomputation copies `generation` into `clean_gen`. Redundant dirty
//!   marks are counted in `stamp_skips` instead of touching the heap.
//!
//! Ties are broken deterministically by smaller [`QueryId`] (the paper
//! breaks ties randomly; a fixed rule keeps experiments reproducible).
//! The pop *and* recompute sequences are identical to the entry-heap
//! formulation: a dirty query is refreshed exactly when its stale stored
//! priority is the maximum of all stored priorities, and the comparator is
//! a total order, so any valid heap over the same stored priorities drains
//! in the same order.

use crate::QueryId;
use std::cmp::Ordering;

/// Sentinel heap slot meaning "not live".
const NOT_IN_HEAP: u32 = u32::MAX;

/// Lazily-updated max-priority queue keyed by [`QueryId`].
#[derive(Debug, Clone, Default)]
pub struct LazyQueue {
    /// Implicit binary max-heap of live query ids.
    heap: Vec<u32>,
    /// Query id → slot in `heap`, or [`NOT_IN_HEAP`].
    pos: Vec<u32>,
    /// Stored (possibly stale) priority per query.
    priority: Vec<f64>,
    /// Bumped by `mark_dirty`; equality with `clean_gen` means clean.
    generation: Vec<u32>,
    /// Value of `generation` when `priority` was last written.
    clean_gen: Vec<u32>,
    /// Dirty marks absorbed because the query was already stale.
    stamp_skips: u64,
}

impl LazyQueue {
    /// Builds a queue over queries `0..priorities.len()` with the given
    /// initial priorities. Heapified in O(n).
    pub fn new(priorities: &[f64]) -> Self {
        let n = priorities.len();
        for &p in priorities {
            assert!(!p.is_nan(), "priority must not be NaN");
        }
        let mut queue = Self {
            heap: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            priority: priorities.to_vec(),
            generation: vec![0; n],
            clean_gen: vec![0; n],
            stamp_skips: 0,
        };
        queue.heapify();
        queue
    }

    /// Number of live (poppable) queries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live query remains.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Dirty marks that found the query already dirty: the stamp said the
    /// stored priority was stale, so no second invalidation was needed.
    pub fn stamp_skips(&self) -> u64 {
        self.stamp_skips
    }

    /// (Re-)inserts `query` with `priority`. Revives a previously popped or
    /// removed query. The stored priority becomes clean.
    pub fn push(&mut self, query: QueryId, priority: f64) {
        assert!(!priority.is_nan(), "priority must not be NaN");
        let i = query.index();
        assert!(i < self.pos.len(), "query id out of range");
        self.priority[i] = priority;
        self.clean_gen[i] = self.generation[i];
        if self.pos[i] == NOT_IN_HEAP {
            let slot = self.heap.len();
            self.heap.push(i as u32);
            self.pos[i] = slot as u32;
            self.sift_up(slot);
        } else {
            // Replacing the priority in place can move it either way.
            let slot = self.pos[i] as usize;
            self.sift_up(slot);
            self.sift_down(self.pos[i] as usize);
        }
    }

    /// Marks `query`'s stored priority as stale (the delta-update map entry
    /// `U(q) ≠ 0` in the paper). No-op for dead or out-of-range queries;
    /// a mark on an already-dirty query only counts a stamp skip.
    pub fn mark_dirty(&mut self, query: QueryId) {
        let i = query.index();
        if i >= self.pos.len() || self.pos[i] == NOT_IN_HEAP {
            return;
        }
        if self.generation[i] == self.clean_gen[i] {
            self.generation[i] = self.generation[i].wrapping_add(1);
        } else {
            self.stamp_skips += 1;
        }
    }

    /// Permanently removes `query` from the pool without popping it.
    pub fn remove(&mut self, query: QueryId) {
        let i = query.index();
        if i < self.pos.len() && self.pos[i] != NOT_IN_HEAP {
            self.remove_slot(self.pos[i] as usize);
        }
    }

    /// Whether `query` is currently live.
    pub fn is_live(&self, query: QueryId) -> bool {
        self.pos.get(query.index()).is_some_and(|&s| s != NOT_IN_HEAP)
    }

    /// Rebuilds every live entry with a freshly computed priority.
    ///
    /// Used when the priority *function* changes wholesale (e.g. a new
    /// hidden-database sample arrives mid-crawl): lazy dirty-marking only
    /// supports non-increasing priorities, while a refresh may raise them.
    /// Priorities are recomputed in ascending query-id order (the closure
    /// may carry order-sensitive state); dead queries stay dead.
    pub fn reprioritize(&mut self, mut priority: impl FnMut(QueryId) -> f64) {
        for i in 0..self.pos.len() {
            if self.pos[i] == NOT_IN_HEAP {
                continue;
            }
            let p = priority(QueryId(i as u32));
            assert!(!p.is_nan(), "priority must not be NaN");
            self.priority[i] = p;
            self.clean_gen[i] = self.generation[i];
        }
        self.heapify();
    }

    /// Pops the live query with the (true) largest priority.
    ///
    /// `recompute(q)` is called when a dirty query reaches the top; it must
    /// return the query's current priority. The popped query leaves the
    /// pool (`Q = Q − {q*}` in Algorithms 1–4); [`LazyQueue::push`] revives
    /// it if the caller wants it back (QSel-Bound does).
    pub fn pop_max(&mut self, mut recompute: impl FnMut(QueryId) -> f64) -> Option<(QueryId, f64)> {
        loop {
            let &root = self.heap.first()?;
            let i = root as usize;
            if self.generation[i] != self.clean_gen[i] {
                // Case (2) of §6.3: refresh the priority in place and let
                // it sink to its true position.
                let p = recompute(QueryId(root));
                assert!(!p.is_nan(), "recomputed priority must not be NaN");
                self.priority[i] = p;
                self.clean_gen[i] = self.generation[i];
                self.sift_down(0);
                continue;
            }
            // Case (1): clean top entry — a true maximum.
            self.remove_slot(0);
            return Some((QueryId(root), self.priority[i]));
        }
    }

    /// Whether the query in heap slot `a` outranks the one in slot `b`.
    fn beats(&self, a: u32, b: u32) -> bool {
        match self.priority[a as usize].total_cmp(&self.priority[b as usize]) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => a < b, // smaller id wins ties
        }
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if !self.beats(self.heap[slot], self.heap[parent]) {
                break;
            }
            self.swap_slots(slot, parent);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * slot + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < n && self.beats(self.heap[right], self.heap[left]) {
                best = right;
            }
            if !self.beats(self.heap[best], self.heap[slot]) {
                break;
            }
            self.swap_slots(slot, best);
            slot = best;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }

    /// Removes the query in heap slot `slot` by swapping in the last leaf.
    fn remove_slot(&mut self, slot: usize) {
        let removed = self.heap.swap_remove(slot);
        self.pos[removed as usize] = NOT_IN_HEAP;
        if slot < self.heap.len() {
            self.pos[self.heap[slot] as usize] = slot as u32;
            // The swapped-in leaf can belong either above or below `slot`.
            // If sift_up moves it, the element pulled down into `slot` came
            // from an ancestor and already dominates the subtree, so the
            // sift_down is a no-op.
            self.sift_up(slot);
            self.sift_down(slot);
        }
    }

    fn heapify(&mut self) {
        for slot in (0..self.heap.len() / 2).rev() {
            self.sift_down(slot);
        }
    }

    /// Forces both stamps of `query` to `stamp` (test-only): lets the
    /// wraparound regression test start a hair below `u32::MAX` without
    /// four billion dirty/clean cycles.
    #[cfg(test)]
    fn force_stamp(&mut self, query: QueryId, stamp: u32) {
        let i = query.index();
        self.generation[i] = stamp;
        self.clean_gen[i] = stamp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn pops_in_priority_order() {
        let mut pq = LazyQueue::new(&[1.0, 3.0, 2.0]);
        let no_recompute = |_q: QueryId| unreachable!("nothing is dirty");
        assert_eq!(pq.pop_max(no_recompute), Some((q(1), 3.0)));
        assert_eq!(pq.pop_max(no_recompute), Some((q(2), 2.0)));
        assert_eq!(pq.pop_max(no_recompute), Some((q(0), 1.0)));
        assert_eq!(pq.pop_max(no_recompute), None);
    }

    #[test]
    fn ties_break_toward_smaller_query_id() {
        let mut pq = LazyQueue::new(&[5.0, 5.0, 5.0]);
        let ids: Vec<_> = std::iter::from_fn(|| pq.pop_max(|_| 0.0).map(|(id, _)| id.0)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn dirty_entry_is_recomputed_before_popping() {
        let mut pq = LazyQueue::new(&[10.0, 8.0]);
        pq.mark_dirty(q(0));
        // q0's true priority dropped to 5 — q1 must now win.
        assert_eq!(pq.pop_max(|_| 5.0), Some((q(1), 8.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(0), 5.0)));
    }

    #[test]
    fn recompute_happens_once_per_dirtying() {
        let mut pq = LazyQueue::new(&[10.0, 1.0]);
        pq.mark_dirty(q(0));
        let mut calls = 0;
        assert_eq!(
            pq.pop_max(|_| {
                calls += 1;
                9.0
            }),
            Some((q(0), 9.0))
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn removed_query_is_never_popped() {
        let mut pq = LazyQueue::new(&[10.0, 8.0]);
        pq.remove(q(0));
        assert_eq!(pq.len(), 1);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(1), 8.0)));
        assert_eq!(pq.pop_max(|_| 0.0), None);
    }

    #[test]
    fn push_revives_popped_query() {
        let mut pq = LazyQueue::new(&[4.0]);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 4.0)));
        assert!(pq.is_empty());
        pq.push(q(0), 2.5);
        assert_eq!(pq.len(), 1);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 2.5)));
    }

    #[test]
    fn push_supersedes_old_entries() {
        let mut pq = LazyQueue::new(&[4.0, 3.0]);
        pq.push(q(0), 1.0); // old 4.0 priority is overwritten
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(1), 3.0)));
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 1.0)));
    }

    #[test]
    fn mark_dirty_on_dead_query_is_noop() {
        let mut pq = LazyQueue::new(&[4.0]);
        pq.remove(q(0));
        pq.mark_dirty(q(0));
        assert_eq!(pq.pop_max(|_| unreachable!()), None);
    }

    #[test]
    #[should_panic(expected = "priority must not be NaN")]
    fn nan_priorities_are_rejected() {
        LazyQueue::new(&[f64::NAN]);
    }

    #[test]
    fn reprioritize_rebuilds_live_entries_only() {
        let mut pq = LazyQueue::new(&[1.0, 2.0, 3.0]);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(2), 3.0)));
        pq.mark_dirty(q(0));
        // New priority function *raises* q0 above q1 — something the
        // dirty mechanism alone could not express soundly.
        pq.reprioritize(|id| if id == q(0) { 10.0 } else { 1.0 });
        assert_eq!(pq.len(), 2);
        assert_eq!(pq.pop_max(|_| unreachable!("nothing dirty")), Some((q(0), 10.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(1), 1.0)));
        assert_eq!(pq.pop_max(|_| 0.0), None, "popped q2 must stay dead");
    }

    #[test]
    fn reprioritize_clears_stale_entries() {
        let mut pq = LazyQueue::new(&[5.0, 4.0]);
        pq.push(q(0), 9.0); // supersede
        pq.reprioritize(|_| 1.0);
        // Old 5.0/9.0 priorities must not resurface.
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(0), 1.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(1), 1.0)));
    }

    #[test]
    fn redundant_dirty_marks_are_counted_not_restamped() {
        let mut pq = LazyQueue::new(&[10.0, 1.0]);
        pq.mark_dirty(q(0));
        pq.mark_dirty(q(0));
        pq.mark_dirty(q(0));
        assert_eq!(pq.stamp_skips(), 2);
        let mut calls = 0;
        assert_eq!(
            pq.pop_max(|_| {
                calls += 1;
                9.0
            }),
            Some((q(0), 9.0))
        );
        assert_eq!(calls, 1, "three marks still cost one recompute");
    }

    #[test]
    fn generation_stamp_wraparound_keeps_staleness_sound() {
        let mut pq = LazyQueue::new(&[10.0, 8.0]);
        // Start the stamp at the very top of the u32 range: the next dirty
        // mark wraps generation to 0 while clean_gen stays at u32::MAX.
        pq.force_stamp(q(0), u32::MAX);
        pq.mark_dirty(q(0));
        // The wrapped stamp must still read as dirty (inequality, not
        // ordering), and a redundant mark must not bump it into aliasing
        // the clean state.
        pq.mark_dirty(q(0));
        assert_eq!(pq.stamp_skips(), 1);
        assert_eq!(pq.pop_max(|_| 5.0), Some((q(1), 8.0)), "stale q0 must lose to q1");
        // After the recompute, the query is clean across the wrap and pops
        // without another recompute.
        assert_eq!(pq.pop_max(|_| unreachable!("q0 is clean")), Some((q(0), 5.0)));
    }
}
