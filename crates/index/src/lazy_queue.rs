//! Max-priority queue with deferred ("delta-update") priority maintenance
//! (paper Fig. 3(c), Algorithm 4 lines 16–27).
//!
//! QSel-Est repeatedly needs `argmax_q benefit(q)` over a pool whose
//! benefits decay as local records get covered. Rewriting every affected
//! priority after each iteration would cost `O(|F(d)|·log|Q|)` heap
//! operations per removed record. Instead, the queue keeps possibly-stale
//! entries and the caller merely *marks* a query dirty when one of its
//! matching records is removed. Only when a dirty query bubbles up to the
//! top is its priority recomputed (via a caller-supplied closure, since the
//! recomputation involves estimator state the queue knows nothing about) and
//! the entry re-inserted. A popped entry is returned only if it is alive,
//! current, and clean — so the returned query is a true maximum.
//!
//! Ties are broken deterministically by smaller [`QueryId`] (the paper
//! breaks ties randomly; a fixed rule keeps experiments reproducible).

use crate::QueryId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    priority: f64,
    query: QueryId,
    version: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.query.0.cmp(&self.query.0)) // smaller id wins ties
    }
}

/// Lazily-updated max-priority queue keyed by [`QueryId`].
#[derive(Debug, Clone, Default)]
pub struct LazyQueue {
    heap: BinaryHeap<Entry>,
    version: Vec<u32>,
    dirty: Vec<bool>,
    alive: Vec<bool>,
    live_count: usize,
}

impl LazyQueue {
    /// Builds a queue over queries `0..priorities.len()` with the given
    /// initial priorities.
    ///
    /// Heapified in O(n) from the collected entries rather than pushed one
    /// by one (O(n log n)). The pop sequence is unaffected: `Entry`'s
    /// ordering is total (`total_cmp` plus the id tie-break) and every
    /// entry is distinct, so any valid heap over the same set pops
    /// identically.
    pub fn new(priorities: &[f64]) -> Self {
        let n = priorities.len();
        let entries: Vec<Entry> = priorities
            .iter()
            .enumerate()
            .map(|(q, &p)| {
                assert!(!p.is_nan(), "priority must not be NaN");
                Entry { priority: p, query: QueryId(q as u32), version: 0 }
            })
            .collect();
        let heap = BinaryHeap::from(entries);
        Self {
            heap,
            version: vec![0; n],
            dirty: vec![false; n],
            alive: vec![true; n],
            live_count: n,
        }
    }

    /// Number of live (poppable) queries.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live query remains.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// (Re-)inserts `query` with `priority`. Revives a previously popped or
    /// removed query. Any older entry for the query becomes stale.
    pub fn push(&mut self, query: QueryId, priority: f64) {
        assert!(!priority.is_nan(), "priority must not be NaN");
        let i = query.index();
        assert!(i < self.version.len(), "query id out of range");
        if !self.alive[i] {
            self.alive[i] = true;
            self.live_count += 1;
        }
        self.version[i] += 1;
        self.dirty[i] = false;
        self.heap.push(Entry { priority, query, version: self.version[i] });
    }

    /// Marks `query`'s cached priority as stale (the delta-update map entry
    /// `U(q) ≠ 0` in the paper). No-op for dead or out-of-range queries.
    pub fn mark_dirty(&mut self, query: QueryId) {
        if let Some(d) = self.dirty.get_mut(query.index()) {
            if self.alive[query.index()] {
                *d = true;
            }
        }
    }

    /// Permanently removes `query` from the pool without popping it.
    pub fn remove(&mut self, query: QueryId) {
        let i = query.index();
        if i < self.alive.len() && self.alive[i] {
            self.alive[i] = false;
            self.live_count -= 1;
        }
    }

    /// Whether `query` is currently live.
    pub fn is_live(&self, query: QueryId) -> bool {
        self.alive.get(query.index()).copied().unwrap_or(false)
    }

    /// Rebuilds every live entry with a freshly computed priority.
    ///
    /// Used when the priority *function* changes wholesale (e.g. a new
    /// hidden-database sample arrives mid-crawl): lazy dirty-marking only
    /// supports non-increasing priorities, while a refresh may raise them.
    /// O(n log n); dead queries stay dead.
    pub fn reprioritize(&mut self, mut priority: impl FnMut(QueryId) -> f64) {
        self.heap.clear();
        for i in 0..self.version.len() {
            if !self.alive[i] {
                continue;
            }
            let q = QueryId(i as u32);
            let p = priority(q);
            assert!(!p.is_nan(), "priority must not be NaN");
            self.version[i] += 1;
            self.dirty[i] = false;
            self.heap.push(Entry { priority: p, query: q, version: self.version[i] });
        }
    }

    /// Pops the live query with the (true) largest priority.
    ///
    /// `recompute(q)` is called when a dirty query reaches the top; it must
    /// return the query's current priority. The popped query leaves the
    /// pool (`Q = Q − {q*}` in Algorithms 1–4); [`LazyQueue::push`] revives
    /// it if the caller wants it back (QSel-Bound does).
    pub fn pop_max(&mut self, mut recompute: impl FnMut(QueryId) -> f64) -> Option<(QueryId, f64)> {
        while let Some(entry) = self.heap.pop() {
            let i = entry.query.index();
            if !self.alive[i] || entry.version != self.version[i] {
                continue; // stale or dead entry
            }
            if self.dirty[i] {
                // Case (2) of §6.3: refresh the priority and re-insert.
                let p = recompute(entry.query);
                assert!(!p.is_nan(), "recomputed priority must not be NaN");
                self.dirty[i] = false;
                self.version[i] += 1;
                self.heap.push(Entry { priority: p, query: entry.query, version: self.version[i] });
                continue;
            }
            // Case (1): clean top entry — a true maximum.
            self.alive[i] = false;
            self.live_count -= 1;
            return Some((entry.query, entry.priority));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn pops_in_priority_order() {
        let mut pq = LazyQueue::new(&[1.0, 3.0, 2.0]);
        let no_recompute = |_q: QueryId| unreachable!("nothing is dirty");
        assert_eq!(pq.pop_max(no_recompute), Some((q(1), 3.0)));
        assert_eq!(pq.pop_max(no_recompute), Some((q(2), 2.0)));
        assert_eq!(pq.pop_max(no_recompute), Some((q(0), 1.0)));
        assert_eq!(pq.pop_max(no_recompute), None);
    }

    #[test]
    fn ties_break_toward_smaller_query_id() {
        let mut pq = LazyQueue::new(&[5.0, 5.0, 5.0]);
        let ids: Vec<_> = std::iter::from_fn(|| pq.pop_max(|_| 0.0).map(|(id, _)| id.0)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn dirty_entry_is_recomputed_before_popping() {
        let mut pq = LazyQueue::new(&[10.0, 8.0]);
        pq.mark_dirty(q(0));
        // q0's true priority dropped to 5 — q1 must now win.
        assert_eq!(pq.pop_max(|_| 5.0), Some((q(1), 8.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(0), 5.0)));
    }

    #[test]
    fn recompute_happens_once_per_dirtying() {
        let mut pq = LazyQueue::new(&[10.0, 1.0]);
        pq.mark_dirty(q(0));
        let mut calls = 0;
        assert_eq!(
            pq.pop_max(|_| {
                calls += 1;
                9.0
            }),
            Some((q(0), 9.0))
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn removed_query_is_never_popped() {
        let mut pq = LazyQueue::new(&[10.0, 8.0]);
        pq.remove(q(0));
        assert_eq!(pq.len(), 1);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(1), 8.0)));
        assert_eq!(pq.pop_max(|_| 0.0), None);
    }

    #[test]
    fn push_revives_popped_query() {
        let mut pq = LazyQueue::new(&[4.0]);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 4.0)));
        assert!(pq.is_empty());
        pq.push(q(0), 2.5);
        assert_eq!(pq.len(), 1);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 2.5)));
    }

    #[test]
    fn push_supersedes_old_entries() {
        let mut pq = LazyQueue::new(&[4.0, 3.0]);
        pq.push(q(0), 1.0); // old 4.0 entry becomes stale
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(1), 3.0)));
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(0), 1.0)));
    }

    #[test]
    fn mark_dirty_on_dead_query_is_noop() {
        let mut pq = LazyQueue::new(&[4.0]);
        pq.remove(q(0));
        pq.mark_dirty(q(0));
        assert_eq!(pq.pop_max(|_| unreachable!()), None);
    }

    #[test]
    #[should_panic(expected = "priority must not be NaN")]
    fn nan_priorities_are_rejected() {
        LazyQueue::new(&[f64::NAN]);
    }

    #[test]
    fn reprioritize_rebuilds_live_entries_only() {
        let mut pq = LazyQueue::new(&[1.0, 2.0, 3.0]);
        assert_eq!(pq.pop_max(|_| 0.0), Some((q(2), 3.0)));
        pq.mark_dirty(q(0));
        // New priority function *raises* q0 above q1 — something the
        // dirty mechanism alone could not express soundly.
        pq.reprioritize(|id| if id == q(0) { 10.0 } else { 1.0 });
        assert_eq!(pq.len(), 2);
        assert_eq!(pq.pop_max(|_| unreachable!("nothing dirty")), Some((q(0), 10.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(1), 1.0)));
        assert_eq!(pq.pop_max(|_| 0.0), None, "popped q2 must stay dead");
    }

    #[test]
    fn reprioritize_clears_stale_entries() {
        let mut pq = LazyQueue::new(&[5.0, 4.0]);
        pq.push(q(0), 9.0); // supersede
        pq.reprioritize(|_| 1.0);
        // Old 5.0/9.0 entries must not resurface.
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(0), 1.0)));
        assert_eq!(pq.pop_max(|_| unreachable!()), Some((q(1), 1.0)));
    }
}
