//! Property-based tests: the index structures must agree with naive
//! reference implementations on random inputs.

use proptest::prelude::*;
use smartcrawl_index::{ForwardIndex, InvertedIndex, LazyQueue, QueryId};
use smartcrawl_text::{Document, RecordId, TokenId};

fn corpus_strategy() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec(
        prop::collection::vec(0u32..24, 0..10)
            .prop_map(|v| Document::from_tokens(v.into_iter().map(TokenId).collect())),
        0..30,
    )
}

fn query_strategy() -> impl Strategy<Value = Vec<TokenId>> {
    prop::collection::btree_set(0u32..24, 1..4)
        .prop_map(|s| s.into_iter().map(TokenId).collect())
}

proptest! {
    #[test]
    fn inverted_index_matches_naive_scan(corpus in corpus_strategy(), q in query_strategy()) {
        let idx = InvertedIndex::build(&corpus, 24);
        let naive: Vec<RecordId> = corpus
            .iter()
            .enumerate()
            .filter(|(_, d)| d.contains_all(&q))
            .map(|(i, _)| RecordId(i as u32))
            .collect();
        prop_assert_eq!(idx.matching(&q), naive.clone());
        prop_assert_eq!(idx.frequency(&q), naive.len());
        prop_assert_eq!(idx.any_match(&q), !naive.is_empty());
    }

    #[test]
    fn forward_index_is_inverse_of_query_matches(corpus in corpus_strategy(),
        queries in prop::collection::vec(query_strategy(), 0..10))
    {
        let idx = InvertedIndex::build(&corpus, 24);
        let matches: Vec<Vec<RecordId>> = queries.iter().map(|q| idx.matching(q)).collect();
        let fwd = ForwardIndex::build(corpus.len(), &matches);
        for (qi, m) in matches.iter().enumerate() {
            for &rid in m {
                prop_assert!(fwd.queries_of(rid).contains(&QueryId(qi as u32)));
            }
        }
        let total: usize = matches.iter().map(Vec::len).sum();
        prop_assert_eq!(fwd.total_incidences(), total);
    }

    /// The lazy queue must behave exactly like a naive "rescan everything
    /// every iteration" argmax under an arbitrary decay schedule.
    #[test]
    fn lazy_queue_equals_naive_argmax(
        initial in prop::collection::vec(0u32..100, 1..20),
        decays in prop::collection::vec((0usize..20, 1u32..5), 0..40),
    ) {
        let n = initial.len();
        // Model: priorities decay by `d` at scripted points between pops.
        let mut truth: Vec<f64> = initial.iter().map(|&p| p as f64).collect();
        let mut alive = vec![true; n];
        let prios: Vec<f64> = truth.clone();
        let mut pq = LazyQueue::new(&prios);

        let mut decay_iter = decays.into_iter();
        for _ in 0..n {
            // Apply up to 2 scripted decays before each pop.
            for _ in 0..2 {
                if let Some((q, d)) = decay_iter.next() {
                    let q = q % n;
                    if alive[q] {
                        truth[q] -= d as f64;
                        pq.mark_dirty(QueryId(q as u32));
                    }
                }
            }
            // Naive argmax with the same tie-breaking rule (smaller id).
            let expect = (0..n)
                .filter(|&i| alive[i])
                .max_by(|&a, &b| truth[a].total_cmp(&truth[b]).then(b.cmp(&a)))
                .expect("someone is alive");
            let (got, p) = pq.pop_max(|q| truth[q.index()]).expect("queue non-empty");
            prop_assert_eq!(got.index(), expect);
            prop_assert_eq!(p.to_bits(), truth[expect].to_bits());
            alive[expect] = false;
        }
        prop_assert!(pq.is_empty());
        prop_assert_eq!(pq.pop_max(|_| 0.0), None);
    }
}
