//! Property tests for the dense generation-stamped [`LazyQueue`]: random
//! interleavings of push / mark_dirty / remove / pop_max must behave
//! exactly like a naive reference model that stores `(priority, dirty,
//! alive)` per query and scans for the maximum on every pop.
//!
//! The comparison is strict: popped `(query, priority)` pairs, the full
//! *recompute call sequence* (which queries were refreshed, in which
//! order), and liveness/len after every operation. The recompute order
//! matters beyond the test — engine recompute closures mutate estimator
//! and vocabulary state, so the dense queue must preserve the entry-heap
//! formulation's trace, not just its final answers.

use proptest::prelude::*;
use smartcrawl_index::{LazyQueue, QueryId};

/// Reference model: flat per-query state, O(n) scan per pop.
struct Naive {
    priority: Vec<f64>,
    dirty: Vec<bool>,
    alive: Vec<bool>,
}

impl Naive {
    fn new(init: &[f64]) -> Self {
        Self {
            priority: init.to_vec(),
            dirty: vec![false; init.len()],
            alive: vec![true; init.len()],
        }
    }

    fn push(&mut self, q: usize, p: f64) {
        self.alive[q] = true;
        self.dirty[q] = false;
        self.priority[q] = p;
    }

    fn top(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for q in 0..self.priority.len() {
            if !self.alive[q] {
                continue;
            }
            best = match best {
                None => Some(q),
                // Strict `>` keeps the smaller id on ties (q ascends).
                Some(b) if self.priority[q] > self.priority[b] => Some(q),
                Some(b) => Some(b),
            };
        }
        best
    }

    fn pop_max(&mut self, recompute: &mut impl FnMut(usize) -> f64) -> Option<(usize, f64)> {
        loop {
            let q = self.top()?;
            if self.dirty[q] {
                self.priority[q] = recompute(q);
                self.dirty[q] = false;
                continue;
            }
            self.alive[q] = false;
            return Some((q, self.priority[q]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn dense_queue_matches_naive_reference(
        init in prop::collection::vec((0u32..8).prop_map(|x| f64::from(x) * 0.5), 1..8),
        ops in prop::collection::vec((0u32..4, 0u32..8, 0u32..8), 0..80),
    ) {
        let n = init.len();
        let mut dense = LazyQueue::new(&init);
        let mut naive = Naive::new(&init);
        // Recompute is a pure, decreasing function of (query, times that
        // query has been refreshed); each side tracks its own call count
        // and both append to a log so order divergence is caught even when
        // the returned values happen to collide.
        let mut dense_calls = vec![0u32; n];
        let mut naive_calls = vec![0u32; n];
        let mut dense_log = Vec::new();
        let mut naive_log = Vec::new();
        for &(kind, qraw, praw) in &ops {
            let q = (qraw as usize) % n;
            match kind {
                0 => {
                    let p = f64::from(praw) * 0.5;
                    dense.push(QueryId(q as u32), p);
                    naive.push(q, p);
                }
                1 => {
                    dense.mark_dirty(QueryId(q as u32));
                    if naive.alive[q] {
                        naive.dirty[q] = true;
                    }
                }
                2 => {
                    dense.remove(QueryId(q as u32));
                    naive.alive[q] = false;
                }
                _ => {
                    let d = dense.pop_max(|id| {
                        dense_log.push(id.0);
                        let c = &mut dense_calls[id.index()];
                        *c += 1;
                        init[id.index()] / f64::from(1u32 << (*c).min(20))
                    });
                    let r = naive.pop_max(&mut |id| {
                        naive_log.push(id as u32);
                        let c = &mut naive_calls[id];
                        *c += 1;
                        init[id] / f64::from(1u32 << (*c).min(20))
                    });
                    prop_assert_eq!(d, r.map(|(id, p)| (QueryId(id as u32), p)));
                }
            }
            prop_assert_eq!(&dense_log, &naive_log, "recompute sequences diverged");
            let live = naive.alive.iter().filter(|&&a| a).count();
            prop_assert_eq!(dense.len(), live);
            prop_assert_eq!(dense.is_empty(), live == 0);
            for i in 0..n {
                prop_assert_eq!(dense.is_live(QueryId(i as u32)), naive.alive[i]);
            }
        }
        // Drain both queues to force every remaining comparison.
        loop {
            let d = dense.pop_max(|id| {
                dense_log.push(id.0);
                init[id.index()]
            });
            let r = naive.pop_max(&mut |id| {
                naive_log.push(id as u32);
                init[id]
            });
            prop_assert_eq!(d, r.map(|(id, p)| (QueryId(id as u32), p)));
            if d.is_none() {
                break;
            }
        }
        prop_assert_eq!(&dense_log, &naive_log);
    }
}
