//! Fixed-budget page cache with pinned/LRU eviction.
//!
//! Each [`PageCache`] fronts one [`PagedReader`] and keeps at most
//! `budget` decoded page payloads resident. Frames are recycled in
//! least-recently-used order, where "time" is a logical access tick —
//! never the wall clock — so which page gets evicted is a pure function
//! of the access sequence and replays identically across runs.
//!
//! Pinning is load-bearing for correctness, not just performance:
//! [`read_span`](PageCache::read_span) pins *every* page a span touches
//! before copying, so a span that covers more pages than the budget
//! cannot evict its own tail mid-copy (the cache grows past budget
//! rather than deadlock, and shrinks back through normal eviction).

use crate::file::PagedReader;
use crate::{Result, StoreError, StoreStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache counters shared (lock-free) by every cache a runtime owns.
#[derive(Debug, Default)]
pub struct SharedStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident: AtomicU64,
    peak: AtomicU64,
}

impl SharedStats {
    /// Snapshot the counters. Counts are schedule-dependent under
    /// concurrent query evaluation — report them, never digest them.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_pages: self.resident.load(Ordering::Relaxed),
            peak_resident_pages: self.peak.load(Ordering::Relaxed),
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn evicted(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    fn resident_up(&self) {
        let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct Frame {
    /// Page held by this frame; `u64::MAX` marks a vacated frame.
    page: u64,
    payload: Vec<u8>,
    /// Logical tick of the last access (LRU key — no wall clock).
    last_used: u64,
    /// Pin count; pinned frames are never evicted.
    pinned: u32,
}

impl Frame {
    fn vacant() -> Self {
        Frame {
            page: u64::MAX,
            payload: Vec::new(),
            last_used: 0,
            pinned: 0,
        }
    }
}

/// A bounded set of resident page payloads over one paged file.
#[derive(Debug)]
pub struct PageCache {
    reader: PagedReader,
    frames: Vec<Frame>,
    slot_of: HashMap<u64, usize>,
    budget: usize,
    tick: u64,
    stats: Arc<SharedStats>,
}

impl PageCache {
    /// Wraps `reader` with a cache of at most `budget` resident pages
    /// (clamped to at least one).
    pub fn new(reader: PagedReader, budget: usize, stats: Arc<SharedStats>) -> Self {
        let budget = budget.max(1);
        Self {
            reader,
            frames: Vec::with_capacity(budget.min(1024)),
            slot_of: HashMap::new(),
            budget,
            tick: 0,
            stats,
        }
    }

    /// Payload bytes one page of the underlying file holds.
    pub fn payload_capacity(&self) -> usize {
        self.reader.payload_capacity()
    }

    fn frame_gone(&self) -> StoreError {
        StoreError::corrupt(self.reader.path(), "cache frame vanished")
    }

    /// Makes `page` resident and pins it; returns its frame slot. The
    /// caller must [`unpin`](Self::unpin) the slot when done with the
    /// payload.
    pub fn pin(&mut self, page: u64) -> Result<usize> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(&slot) = self.slot_of.get(&page) {
            if let Some(frame) = self.frames.get_mut(slot) {
                frame.last_used = tick;
                frame.pinned += 1;
                self.stats.hit();
                return Ok(slot);
            }
        }
        self.stats.miss();
        let slot = self.claim_slot();
        // Split borrows: the reader fills the frame's buffer in place.
        let Self { reader, frames, .. } = self;
        let Some(frame) = frames.get_mut(slot) else {
            return Err(self.frame_gone());
        };
        reader.read_page(page, &mut frame.payload)?;
        frame.page = page;
        frame.last_used = tick;
        frame.pinned = 1;
        self.slot_of.insert(page, slot);
        Ok(slot)
    }

    /// Releases one pin on `slot`.
    pub fn unpin(&mut self, slot: usize) {
        if let Some(frame) = self.frames.get_mut(slot) {
            frame.pinned = frame.pinned.saturating_sub(1);
        }
    }

    /// Finds a frame to load into: a fresh one while under budget, else
    /// the least-recently-used unpinned frame, else (everything pinned)
    /// a temporary over-budget frame.
    fn claim_slot(&mut self) -> usize {
        if self.frames.len() < self.budget {
            self.frames.push(Frame::vacant());
            self.stats.resident_up();
            return self.frames.len() - 1;
        }
        let victim = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pinned == 0)
            .min_by_key(|&(i, f)| (f.last_used, i))
            .map(|(i, _)| i);
        match victim {
            Some(slot) => {
                if let Some(frame) = self.frames.get_mut(slot) {
                    self.slot_of.remove(&frame.page);
                    frame.page = u64::MAX;
                    self.stats.evicted();
                }
                slot
            }
            None => {
                self.frames.push(Frame::vacant());
                self.stats.resident_up();
                self.frames.len() - 1
            }
        }
    }

    fn copy_from(&self, slot: usize, start: usize, len: usize, out: &mut Vec<u8>) -> Result<()> {
        let frame = self.frames.get(slot).ok_or_else(|| self.frame_gone())?;
        let bytes = frame.payload.get(start..start + len).ok_or_else(|| {
            StoreError::corrupt(self.reader.path(), "byte span runs past its page payload")
        })?;
        out.extend_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` logical payload bytes starting at logical offset `off`
    /// into `out` (replacing its contents). Logical offsets treat the
    /// file as the concatenation of page payloads, each of
    /// [`payload_capacity`](Self::payload_capacity) bytes; every page the
    /// span touches is pinned before the first copy.
    pub fn read_span(&mut self, off: u64, len: usize, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        out.reserve(len);
        let cap = self.payload_capacity() as u64;
        let first = off / cap;
        let last = (off + len as u64 - 1) / cap;
        if first == last {
            let slot = self.pin(first)?;
            let res = self.copy_from(slot, (off % cap) as usize, len, out);
            self.unpin(slot);
            return res;
        }
        let mut slots = Vec::with_capacity((last - first + 1) as usize);
        let mut res = Ok(());
        for page in first..=last {
            match self.pin(page) {
                Ok(slot) => slots.push(slot),
                Err(e) => {
                    res = Err(e);
                    break;
                }
            }
        }
        if res.is_ok() {
            let mut cursor = off;
            let mut remaining = len;
            for &slot in &slots {
                let start = (cursor % cap) as usize;
                let take = remaining.min(cap as usize - start);
                if let Err(e) = self.copy_from(slot, start, take, out) {
                    res = Err(e);
                    break;
                }
                cursor += take as u64;
                remaining -= take;
            }
        }
        for &slot in &slots {
            self.unpin(slot);
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PagedWriter;
    use std::path::{Path, PathBuf};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smartcrawl_store_cache_{}_{name}",
            std::process::id()
        ))
    }

    /// Writes `pages` full pages where page i is filled with byte i.
    fn build(path: &Path, pages: u8) -> PageCache {
        let mut w = PagedWriter::create(path, 64).unwrap();
        let cap = w.payload_capacity();
        for i in 0..pages {
            w.append_page(&vec![i; cap]).unwrap();
        }
        w.finish().unwrap();
        PageCache::new(
            PagedReader::open(path).unwrap(),
            2,
            Arc::new(SharedStats::default()),
        )
    }

    #[test]
    fn lru_evicts_the_coldest_unpinned_frame() {
        let path = tmp("lru");
        let mut cache = build(&path, 3);
        let s0 = cache.pin(0).unwrap();
        cache.unpin(s0);
        let s1 = cache.pin(1).unwrap();
        cache.unpin(s1);
        // Budget 2: loading page 2 must evict page 0 (the colder one).
        let s2 = cache.pin(2).unwrap();
        cache.unpin(s2);
        assert!(cache.slot_of.contains_key(&1));
        assert!(cache.slot_of.contains_key(&2));
        assert!(!cache.slot_of.contains_key(&0));
        let stats = cache.stats.snapshot();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_pages, 2);
        assert_eq!(stats.peak_resident_pages, 2);
        // Re-pinning page 1 is a hit.
        let s1 = cache.pin(1).unwrap();
        cache.unpin(s1);
        assert_eq!(cache.stats.snapshot().hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let path = tmp("pinned");
        let mut cache = build(&path, 4);
        let hold = cache.pin(0).unwrap();
        for page in 1..4 {
            let s = cache.pin(page).unwrap();
            cache.unpin(s);
        }
        // Page 0 was pinned throughout: still resident.
        assert!(cache.slot_of.contains_key(&0));
        cache.unpin(hold);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn span_wider_than_budget_reads_whole() {
        let path = tmp("span");
        let mut cache = build(&path, 4);
        let cap = cache.payload_capacity();
        let mut out = Vec::new();
        // A span over 4 pages with budget 2: pins force over-budget growth.
        cache.read_span(0, cap * 4, &mut out).unwrap();
        assert_eq!(out.len(), cap * 4);
        for (i, chunk) in out.chunks(cap).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8));
        }
        assert!(cache.stats.snapshot().peak_resident_pages >= 4);
        // Mid-file, page-straddling span.
        cache.read_span(cap as u64 - 3, 6, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 1, 1, 1]);
        std::fs::remove_file(&path).ok();
    }
}
