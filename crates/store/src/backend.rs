//! Runtime ownership and RAM/disk dispatch.
//!
//! A [`StoreRuntime`] owns the directory the store files live in, hands
//! out file paths, and aggregates every page cache's statistics into one
//! [`StoreReport`]. [`AnyPostings`] and [`AnyForward`] are the per-run
//! switch between the in-RAM indexes of `smartcrawl-index` and the paged
//! disk backends of this crate: call sites hold the enum and never know
//! which side they are on. [`IndexBackendConfig`] is the user-facing
//! knob the bench harness threads through a run spec.

use crate::cache::SharedStats;
use crate::forward::DiskForwardIndex;
use crate::inverted::DiskInvertedIndex;
use crate::{Result, StoreConfig, StoreReport, StoreStats};
use smartcrawl_index::{ForwardBackend, ForwardIndex, InvertedIndex, PostingsBackend, QueryId};
use smartcrawl_text::{Document, RecordId, TokenId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes runtimes created by one process (temp-dir naming without
/// the wall clock).
static RUNTIME_SEQ: AtomicU64 = AtomicU64::new(0);

/// Which index backend a run uses.
#[derive(Debug, Clone, Default)]
pub enum IndexBackendConfig {
    /// In-RAM indexes (the paper's efficient implementation).
    #[default]
    Ram,
    /// Paged on-disk indexes with the given sizing.
    Disk(StoreConfig),
}

impl IndexBackendConfig {
    /// Disk backend with default sizing.
    pub fn disk() -> Self {
        IndexBackendConfig::Disk(StoreConfig::default())
    }

    /// Short label for reports and logs.
    pub fn label(&self) -> &'static str {
        match self {
            IndexBackendConfig::Ram => "ram",
            IndexBackendConfig::Disk(_) => "disk",
        }
    }
}

/// Owner of one run's store files: the directory, the page-cache budget
/// split, and the shared statistics. Dropping the runtime removes the
/// directory if the runtime created it.
#[derive(Debug)]
pub struct StoreRuntime {
    dir: PathBuf,
    owned: bool,
    config: StoreConfig,
    stats: Arc<SharedStats>,
    file_seq: AtomicU64,
}

impl StoreRuntime {
    /// Creates the backing directory (a fresh one under the system temp
    /// dir unless [`StoreConfig::dir`] pins it).
    pub fn create(config: StoreConfig) -> Result<Arc<Self>> {
        let (dir, owned) = match &config.dir {
            Some(dir) => (dir.clone(), false),
            None => {
                let seq = RUNTIME_SEQ.fetch_add(1, Ordering::Relaxed);
                let name = format!("smartcrawl-store-{}-{seq}", std::process::id());
                (std::env::temp_dir().join(name), true)
            }
        };
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(Self {
            dir,
            owned,
            config,
            stats: Arc::new(SharedStats::default()),
            file_seq: AtomicU64::new(0),
        }))
    }

    /// The sizing this runtime was created with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The directory holding this runtime's files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A fresh file path under the runtime's directory.
    pub fn file_path(&self, tag: &str) -> PathBuf {
        let seq = self.file_seq.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!("{tag}-{seq}.pages"))
    }

    /// The counters every cache created from this runtime feeds into.
    pub fn shared_stats(&self) -> Arc<SharedStats> {
        Arc::clone(&self.stats)
    }

    /// Cache budget of one inverted-index shard: half the total budget
    /// split across shards (the other half goes to the forward index).
    pub fn shard_cache_budget(&self) -> usize {
        (self.config.cache_pages / 2 / self.config.shards.max(1)).max(2)
    }

    /// Cache budget of the forward index.
    pub fn forward_cache_budget(&self) -> usize {
        (self.config.cache_pages / 2).max(2)
    }

    /// Snapshot of the aggregated cache counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// The run-level report: configured bounds plus observed activity.
    pub fn report(&self) -> StoreReport {
        StoreReport {
            page_size: self.config.page_size,
            cache_budget_pages: self.config.cache_pages,
            stats: self.stats(),
        }
    }
}

impl Drop for StoreRuntime {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// An inverted index that is either RAM-resident or disk-backed.
#[derive(Debug)]
pub enum AnyPostings {
    /// The in-RAM index of `smartcrawl-index`.
    Ram(InvertedIndex),
    /// The sharded paged index of this crate.
    Disk(DiskInvertedIndex),
}

impl AnyPostings {
    /// Builds over `docs` with the backend selected by `runtime`:
    /// `None` → RAM, `Some` → disk files owned by that runtime.
    pub fn build(
        docs: &[Document],
        vocab_size: usize,
        runtime: Option<&StoreRuntime>,
    ) -> Result<Self> {
        match runtime {
            None => Ok(AnyPostings::Ram(InvertedIndex::build(docs, vocab_size))),
            Some(rt) => Ok(AnyPostings::Disk(DiskInvertedIndex::build(
                docs, vocab_size, rt,
            )?)),
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        match self {
            AnyPostings::Ram(i) => i.num_docs(),
            AnyPostings::Disk(i) => i.num_docs(),
        }
    }

    /// Document frequency of a single token.
    pub fn doc_frequency(&self, token: TokenId) -> usize {
        match self {
            AnyPostings::Ram(i) => i.doc_frequency(token),
            AnyPostings::Disk(i) => i.doc_frequency(token),
        }
    }

    /// Appends `I(w)` to `out` (ascending record ids, no clear).
    pub fn postings_into(&self, token: TokenId, out: &mut Vec<RecordId>) {
        match self {
            AnyPostings::Ram(i) => out.extend_from_slice(i.postings(token)),
            AnyPostings::Disk(i) => i.postings_into(token, out),
        }
    }

    /// Materializes `q(D)` in ascending record-id order.
    pub fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        match self {
            AnyPostings::Ram(i) => i.matching(query),
            AnyPostings::Disk(i) => i.matching(query),
        }
    }

    /// `|q(D)|` without materializing the match set.
    pub fn frequency(&self, query: &[TokenId]) -> usize {
        match self {
            AnyPostings::Ram(i) => i.frequency(query),
            AnyPostings::Disk(i) => i.frequency(query),
        }
    }

    /// Whether at least one document satisfies the query.
    pub fn any_match(&self, query: &[TokenId]) -> bool {
        match self {
            AnyPostings::Ram(i) => i.any_match(query),
            AnyPostings::Disk(i) => i.any_match(query),
        }
    }
}

impl PostingsBackend for AnyPostings {
    fn num_docs(&self) -> usize {
        AnyPostings::num_docs(self)
    }

    fn doc_frequency(&self, token: TokenId) -> usize {
        AnyPostings::doc_frequency(self, token)
    }

    fn postings_into(&self, token: TokenId, out: &mut Vec<RecordId>) {
        AnyPostings::postings_into(self, token, out)
    }

    fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        AnyPostings::matching(self, query)
    }

    fn frequency(&self, query: &[TokenId]) -> usize {
        AnyPostings::frequency(self, query)
    }

    fn any_match(&self, query: &[TokenId]) -> bool {
        AnyPostings::any_match(self, query)
    }
}

/// A forward index that is either RAM-resident or disk-backed.
#[derive(Debug)]
pub enum AnyForward {
    /// The in-RAM CSR index of `smartcrawl-index`.
    Ram(ForwardIndex),
    /// The paged row store of this crate (boxed: it carries a page cache
    /// inline, far larger than the RAM variant's three vectors).
    Disk(Box<DiskForwardIndex>),
}

impl AnyForward {
    /// Builds for `num_records` records from the per-query match sets,
    /// with the backend selected by `runtime` (as in
    /// [`AnyPostings::build`]).
    pub fn build(
        num_records: usize,
        query_matches: &[Vec<RecordId>],
        runtime: Option<&StoreRuntime>,
    ) -> Result<Self> {
        match runtime {
            None => Ok(AnyForward::Ram(ForwardIndex::build(
                num_records,
                query_matches,
            ))),
            Some(rt) => Ok(AnyForward::Disk(Box::new(DiskForwardIndex::build(
                num_records,
                query_matches,
                rt,
            )?))),
        }
    }

    /// Number of records covered by the index.
    pub fn num_records(&self) -> usize {
        match self {
            AnyForward::Ram(i) => i.num_records(),
            AnyForward::Disk(i) => i.num_records(),
        }
    }

    /// Pool size the index was built against.
    pub fn num_queries(&self) -> usize {
        match self {
            AnyForward::Ram(i) => i.num_queries(),
            AnyForward::Disk(i) => i.num_queries(),
        }
    }

    /// Total number of (record, query) incidences.
    pub fn total_incidences(&self) -> usize {
        match self {
            AnyForward::Ram(i) => i.total_incidences(),
            AnyForward::Disk(i) => i.total_incidences(),
        }
    }

    /// Replaces `out` with `F(rid)` (ascending query ids).
    pub fn queries_of_into(&self, rid: RecordId, out: &mut Vec<QueryId>) {
        match self {
            AnyForward::Ram(i) => {
                out.clear();
                out.extend_from_slice(i.queries_of(rid));
            }
            AnyForward::Disk(i) => i.queries_of_into(rid, out),
        }
    }
}

impl ForwardBackend for AnyForward {
    fn num_records(&self) -> usize {
        AnyForward::num_records(self)
    }

    fn num_queries(&self) -> usize {
        AnyForward::num_queries(self)
    }

    fn total_incidences(&self) -> usize {
        AnyForward::total_incidences(self)
    }

    fn queries_of_into(&self, rid: RecordId, out: &mut Vec<QueryId>) {
        AnyForward::queries_of_into(self, rid, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(specs: &[&[u32]]) -> Vec<Document> {
        specs
            .iter()
            .map(|s| Document::from_tokens(s.iter().map(|&t| TokenId(t)).collect()))
            .collect()
    }

    #[test]
    fn runtime_cleans_up_its_temp_dir() {
        let rt = StoreRuntime::create(StoreConfig::default()).unwrap();
        let dir = rt.dir().to_path_buf();
        assert!(dir.is_dir());
        drop(rt);
        assert!(!dir.exists());
    }

    #[test]
    fn both_backends_expose_the_same_surface() {
        let corpus = docs(&[&[0, 1], &[1, 2], &[0, 1, 2]]);
        let config = StoreConfig {
            page_size: 64,
            cache_pages: 8,
            shards: 2,
            dir: None,
        };
        let rt = StoreRuntime::create(config).unwrap();
        let ram = AnyPostings::build(&corpus, 3, None).unwrap();
        let disk = AnyPostings::build(&corpus, 3, Some(&rt)).unwrap();
        let q = [TokenId(0), TokenId(1)];
        assert_eq!(ram.matching(&q), disk.matching(&q));
        assert_eq!(ram.frequency(&q), disk.frequency(&q));

        let matches = vec![ram.matching(&q), ram.matching(&[TokenId(2)])];
        let ram_f = AnyForward::build(3, &matches, None).unwrap();
        let disk_f = AnyForward::build(3, &matches, Some(&rt)).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for r in 0..3 {
            ram_f.queries_of_into(RecordId(r), &mut a);
            disk_f.queries_of_into(RecordId(r), &mut b);
            assert_eq!(a, b);
        }
        let report = rt.report();
        assert!(report.stats.misses > 0);
        assert!(report.stats.peak_resident_pages > 0);
    }
}
