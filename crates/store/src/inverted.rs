//! Disk-backed, horizontally sharded inverted index.
//!
//! Records are split into [`StoreConfig::shards`](crate::StoreConfig)
//! contiguous, balanced record-id ranges; each shard owns one blob file
//! holding every token's in-range posting list (delta/varint encoded with
//! skip entries, see [`crate::postings`]). A query is evaluated per shard
//! — rarest list decoded as the seed, the rest walked as encoded-domain
//! [`PostingCursor`]s — and the shard results are concatenated in shard
//! order. Because the shard ranges are contiguous and ascending, that
//! concatenation *is* the globally sorted match set: shard-parallel
//! evaluation is deterministic by construction, bit-for-bit equal to the
//! RAM index at any thread count.
//!
//! Per-token document frequencies live in RAM (`4 B × vocab`), so
//! `doc_frequency` — the hot call during pool mining — never touches
//! disk.

use crate::backend::StoreRuntime;
use crate::blob::{BlobReader, BlobWriter, Locator};
use crate::format::invalid_data;
use crate::postings::{decode_postings_into, encode_postings, PostingCursor};
use crate::{expect_store, Result, StoreError};
use smartcrawl_par::par_map;
use smartcrawl_text::{Document, RecordId, TokenId};
use std::sync::Mutex;

/// Error for an encoded list that passed page checksums yet fails to
/// decode — only reachable through a logic bug, kept as a clean error.
fn undecodable() -> StoreError {
    StoreError::Io(invalid_data("undecodable posting list"))
}

/// Mutable read-side scratch of one shard (behind its lock): the blob
/// reader with its page cache plus reusable decode buffers.
#[derive(Debug)]
struct ShardReader {
    blob: BlobReader,
    /// Per-query-token encoded-list buffers.
    bufs: Vec<Vec<u8>>,
    /// Decoded seed (rarest) list.
    seed: Vec<u32>,
}

/// One contiguous record-id range of the index.
#[derive(Debug)]
struct Shard {
    /// Per-token locator of the encoded in-range posting list.
    locs: Vec<Locator>,
    /// Per-token in-range document frequency.
    counts: Vec<u32>,
    reader: Mutex<ShardReader>,
}

impl Shard {
    fn count_of(&self, token: TokenId) -> u32 {
        self.counts.get(token.index()).copied().unwrap_or(0)
    }

    fn loc_of(&self, token: TokenId) -> Locator {
        self.locs.get(token.index()).copied().unwrap_or_default()
    }

    /// Intersects the query's in-range posting lists, emitting matches in
    /// ascending order. Read failures on an already-validated store are
    /// fatal (see [`expect_store`]).
    fn intersect(&self, query: &[TokenId], mut emit: impl FnMut(u32)) {
        if query.is_empty() {
            return;
        }
        let mut toks: Vec<(u32, TokenId)> = query.iter().map(|&t| (self.count_of(t), t)).collect();
        if toks.iter().any(|&(c, _)| c == 0) {
            return;
        }
        // Rarest-first; token id breaks count ties deterministically.
        toks.sort_unstable_by_key(|&(c, t)| (c, t.index()));
        let mut guard = self.reader.lock().unwrap_or_else(|p| p.into_inner());
        let ShardReader { blob, bufs, seed } = &mut *guard;
        if bufs.len() < toks.len() {
            bufs.resize_with(toks.len(), Vec::new);
        }
        for (buf, &(_, t)) in bufs.iter_mut().zip(&toks) {
            expect_store(blob.read(self.loc_of(t), buf), "posting list read");
        }
        let Some((seed_buf, rest)) = bufs.split_first() else {
            return;
        };
        expect_store(
            decode_postings_into(seed_buf, seed).ok_or_else(undecodable),
            "posting list decode",
        );
        if toks.len() == 1 {
            for &id in seed.iter() {
                emit(id);
            }
            return;
        }
        let mut cursors: Vec<PostingCursor<'_>> = rest
            .iter()
            .take(toks.len() - 1)
            .map(|buf| {
                expect_store(
                    PostingCursor::new(buf).ok_or_else(undecodable),
                    "posting cursor",
                )
            })
            .collect();
        'cand: for &id in seed.iter() {
            for cursor in cursors.iter_mut() {
                match cursor.advance_to(id) {
                    // A drained cursor means no larger candidate can match.
                    None => break 'cand,
                    Some(v) if v != id => continue 'cand,
                    Some(_) => {}
                }
            }
            emit(id);
        }
    }
}

/// The disk-backed counterpart of `smartcrawl_index::InvertedIndex`.
#[derive(Debug)]
pub struct DiskInvertedIndex {
    num_docs: usize,
    /// Global per-token document frequency (RAM-resident).
    df: Vec<u32>,
    shards: Vec<Shard>,
}

impl DiskInvertedIndex {
    /// Builds the sharded on-disk index over `docs`; document `i` gets
    /// record id `i`. Peak build memory is one shard's posting lists
    /// (~`1/shards` of the full index), not the whole index.
    pub fn build(docs: &[Document], vocab_size: usize, runtime: &StoreRuntime) -> Result<Self> {
        let config = runtime.config();
        let num_shards = config.shards.max(1);
        let n = docs.len();
        let per_shard = n.div_ceil(num_shards).max(1);
        let mut df = vec![0u32; vocab_size];
        let mut shards = Vec::with_capacity(num_shards);
        let budget = runtime.shard_cache_budget();
        // Per-token posting accumulators and the varint scratch buffer,
        // allocated once and reused (cleared) across shards, so building
        // `num_shards` shards does not pay `num_shards × vocab_size`
        // allocations. Peak memory stays one shard's posting lists.
        let mut lists: Vec<Vec<u32>> = Vec::new();
        lists.resize_with(vocab_size, Vec::new);
        let mut encoded = Vec::new();
        for s in 0..num_shards {
            let lo = (s * per_shard).min(n);
            let hi = ((s + 1) * per_shard).min(n);
            let in_range = docs.get(lo..hi).unwrap_or(&[]);
            for (i, doc) in in_range.iter().enumerate() {
                let rid = (lo + i) as u32;
                for token in doc.iter() {
                    let Some(list) = lists.get_mut(token.index()) else {
                        return Err(StoreError::Io(invalid_data(
                            "token id out of vocabulary range",
                        )));
                    };
                    list.push(rid);
                }
            }
            // One shard-name allocation per file created, not per record.
            let path = runtime.file_path(&format!("inv{s}")); // lint:allow(hot-path-alloc) once per shard file, dwarfed by the create() it names
            let mut writer = BlobWriter::create(&path, config.page_size)?;
            let mut locs = Vec::with_capacity(vocab_size);
            let mut counts = Vec::with_capacity(vocab_size);
            for (ids, df_slot) in lists.iter_mut().zip(df.iter_mut()) {
                encoded.clear();
                encode_postings(ids, &mut encoded);
                locs.push(writer.append(&encoded)?);
                counts.push(ids.len() as u32);
                *df_slot += ids.len() as u32;
                // Reset for the next shard; capacity is kept.
                ids.clear();
            }
            writer.finish()?;
            let blob = BlobReader::open(&path, budget, runtime.shared_stats())?;
            shards.push(Shard {
                locs,
                counts,
                reader: Mutex::new(ShardReader {
                    blob,
                    // Shard-owned scratch, zero-capacity until first read.
                    bufs: Vec::new(), // lint:allow(hot-path-alloc) Vec::new allocates nothing; filled lazily per query
                    seed: Vec::new(), // lint:allow(hot-path-alloc) Vec::new allocates nothing; filled lazily per query
                }),
            });
        }
        Ok(Self {
            num_docs: n,
            df,
            shards,
        })
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of a single token (RAM lookup, no I/O).
    pub fn doc_frequency(&self, token: TokenId) -> usize {
        self.df.get(token.index()).copied().unwrap_or(0) as usize
    }

    /// Appends the full posting list of `token` to `out` in ascending
    /// order.
    pub fn postings_into(&self, token: TokenId, out: &mut Vec<RecordId>) {
        let mut decoded = Vec::new();
        let mut buf = Vec::new();
        for shard in &self.shards {
            if shard.count_of(token) == 0 {
                continue;
            }
            let mut guard = shard.reader.lock().unwrap_or_else(|p| p.into_inner());
            expect_store(
                guard.blob.read(shard.loc_of(token), &mut buf),
                "posting list read",
            );
            expect_store(
                decode_postings_into(&buf, &mut decoded).ok_or_else(undecodable),
                "posting list decode",
            );
            out.extend(decoded.iter().map(|&id| RecordId(id)));
        }
    }

    /// Materializes `q(D)` — sorted ids of all documents containing every
    /// query token. Shards are probed in parallel; contiguous ascending
    /// shard ranges make the in-order concatenation globally sorted.
    pub fn matching(&self, query: &[TokenId]) -> Vec<RecordId> {
        if query.is_empty() {
            return Vec::new();
        }
        let per_shard = par_map(&self.shards, |shard| {
            let mut ids = Vec::new();
            shard.intersect(query, |id| ids.push(RecordId(id)));
            ids
        });
        let mut out = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for ids in per_shard {
            out.extend(ids);
        }
        out
    }

    /// `|q(D)|` without materializing the match set.
    pub fn frequency(&self, query: &[TokenId]) -> usize {
        match query {
            [] => 0,
            [t] => self.doc_frequency(*t),
            _ => par_map(&self.shards, |shard| {
                let mut n = 0usize;
                shard.intersect(query, |_| n += 1);
                n
            })
            .into_iter()
            .sum(),
        }
    }

    /// Whether at least one document satisfies the query. Sequential with
    /// per-shard early exit — the common non-empty case stops at the
    /// first populated shard.
    pub fn any_match(&self, query: &[TokenId]) -> bool {
        match query {
            [] => false,
            [t] => self.doc_frequency(*t) > 0,
            _ => self.shards.iter().any(|shard| {
                let mut found = false;
                shard.intersect(query, |_| found = true);
                found
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use smartcrawl_index::InvertedIndex;

    fn docs(specs: &[&[u32]]) -> Vec<Document> {
        specs
            .iter()
            .map(|s| Document::from_tokens(s.iter().map(|&t| TokenId(t)).collect()))
            .collect()
    }

    fn runtime() -> std::sync::Arc<StoreRuntime> {
        // Tiny pages and a tiny cache to exercise straddling + eviction.
        StoreRuntime::create(StoreConfig {
            page_size: 64,
            cache_pages: 8,
            shards: 3,
            dir: None,
        })
        .unwrap()
    }

    #[test]
    fn disk_index_agrees_with_ram_index() {
        let corpus = docs(&[
            &[0, 1, 2],
            &[3, 1, 2],
            &[0, 2],
            &[0, 1, 4],
            &[2, 3],
            &[0, 1, 2, 3, 4],
            &[4],
            &[1, 2, 4],
        ]);
        let rt = runtime();
        let disk = DiskInvertedIndex::build(&corpus, 5, &rt).unwrap();
        let ram = InvertedIndex::build(&corpus, 5);
        assert_eq!(disk.num_docs(), ram.num_docs());
        let queries: Vec<Vec<TokenId>> = vec![
            vec![],
            vec![TokenId(0)],
            vec![TokenId(4)],
            vec![TokenId(1), TokenId(2)],
            vec![TokenId(0), TokenId(1), TokenId(2)],
            vec![TokenId(0), TokenId(3)],
            vec![TokenId(99)],
        ];
        for q in &queries {
            assert_eq!(disk.matching(q), ram.matching(q), "matching {q:?}");
            assert_eq!(disk.frequency(q), ram.frequency(q), "frequency {q:?}");
            assert_eq!(disk.any_match(q), ram.any_match(q), "any_match {q:?}");
        }
        for t in 0..6 {
            let token = TokenId(t);
            assert_eq!(disk.doc_frequency(token), ram.doc_frequency(token));
            let mut got = Vec::new();
            disk.postings_into(token, &mut got);
            assert_eq!(got, ram.postings(token), "postings {t}");
        }
    }

    #[test]
    fn sharding_survives_uneven_splits() {
        // 1 record over 3 shards: two shards are empty.
        let corpus = docs(&[&[0, 1]]);
        let rt = runtime();
        let disk = DiskInvertedIndex::build(&corpus, 2, &rt).unwrap();
        assert_eq!(disk.matching(&[TokenId(0), TokenId(1)]), vec![RecordId(0)]);
        assert_eq!(disk.frequency(&[TokenId(0), TokenId(1)]), 1);
    }
}
