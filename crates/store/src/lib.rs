//! `smartcrawl-store`: the out-of-core index substrate.
//!
//! The paper's efficient implementation assumes the inverted and forward
//! indexes fit in RAM, which caps the reproduction at ~10⁵ hidden
//! records. This crate lifts that cap with a paged, versioned,
//! checksummed on-disk storage layer:
//!
//! * [`file`] — the block/offset file layout: fixed-size pages behind a
//!   versioned, checksummed header, written once by a single
//!   [`PagedWriter`](file::PagedWriter) and then read by any number of
//!   [`PagedReader`](file::PagedReader)s (single-writer → multi-reader
//!   discipline). Truncation or bit-rot surfaces as a clean
//!   [`StoreError::Corrupt`], never a panic.
//! * [`cache`] — a fixed-budget page cache with pinned/LRU eviction.
//!   Eviction order is driven by a logical access tick, *never* the wall
//!   clock, so cached reads stay deterministic.
//! * [`postings`] — delta- plus varint-encoded posting lists with skip
//!   entries every [`postings::SKIP_INTERVAL`] elements, enabling
//!   galloping intersection over encoded lists without full decode.
//! * [`blob`] — a byte-stream abstraction over the paged file: encoded
//!   lists are appended back to back (straddling page boundaries) and
//!   addressed by compact [`Locator`](blob::Locator)s.
//! * [`inverted`] / [`forward`] — the disk backends proper: a
//!   horizontally sharded inverted index queried shard-parallel via
//!   `smartcrawl-par` and merged deterministically (shards are contiguous
//!   record-id ranges, so concatenation in shard order *is* the sorted
//!   union), and a paged CSR forward index.
//! * [`backend`] — the [`AnyPostings`]/[`AnyForward`] dispatch enums and
//!   the [`StoreRuntime`] owning the on-disk files, their cache budget,
//!   and shared access statistics.
//!
//! Both backends implement the `smartcrawl-index` backend traits; a
//! conjunctive query's match set is a set intersection — unique — so the
//! disk backend is digest-identical to the RAM backend by construction,
//! which the workspace's acceptance tests assert at every thread count.

pub mod backend;
pub mod blob;
pub mod cache;
pub mod file;
pub mod format;
pub mod forward;
pub mod inverted;
pub mod postings;

pub use backend::{AnyForward, AnyPostings, IndexBackendConfig, StoreRuntime};
pub use blob::{BlobReader, BlobWriter, Locator};
pub use cache::{PageCache, SharedStats};
pub use file::{PagedReader, PagedWriter};
pub use forward::DiskForwardIndex;
pub use inverted::DiskInvertedIndex;

use std::path::PathBuf;

/// Errors surfaced by the storage layer. Query-time reads on an
/// already-validated store treat failures as fatal (the crawl cannot
/// recover from its index disappearing mid-run); everything at open,
/// build, and page-read time returns `Result` so corruption is a clean
/// error, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file exists but its contents fail validation (bad magic,
    /// checksum mismatch, truncation, impossible lengths).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
}

impl StoreError {
    pub(crate) fn corrupt(path: &std::path::Path, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Unwraps a store result at query time. Build- and open-time validation
/// returns `Result`; once a store validated, a read failing mid-crawl
/// means the index vanished under the engine — unrecoverable by design,
/// so the one panic in this crate lives here. Public so the disk-backed
/// hidden engine applies the same policy without minting its own panic
/// site.
pub fn expect_store<T>(r: Result<T>, what: &str) -> T {
    match r {
        Ok(v) => v,
        // lint:allow(panic-freedom) a query-time read failure on a validated store is fatal by design
        Err(e) => panic!("smartcrawl-store: {what} failed: {e}"),
    }
}

/// Sizing and placement knobs for one store runtime.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// On-disk page size in bytes (payload capacity is 12 bytes less).
    pub page_size: usize,
    /// Total page-cache budget, in pages, shared by every index the
    /// runtime hosts. The default is a ~50 MB-class cache
    /// (12800 × 4 KiB), the resident-memory bound the out-of-core claim
    /// is about.
    pub cache_pages: usize,
    /// Number of horizontal shards for the inverted index (contiguous
    /// record-id ranges queried in parallel).
    pub shards: usize,
    /// Directory for the store files. `None` (the default) creates a
    /// unique directory under the system temp dir and removes it when the
    /// runtime drops.
    pub dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            page_size: 4096,
            cache_pages: 12_800,
            shards: 4,
            dir: None,
        }
    }
}

/// A point-in-time snapshot of a runtime's page-cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Frames evicted to stay inside the cache budget.
    pub evictions: u64,
    /// Pages currently resident across all caches.
    pub resident_pages: u64,
    /// High-water mark of `resident_pages`.
    pub peak_resident_pages: u64,
}

impl StoreStats {
    /// Fraction of page requests served without touching disk.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// What a run reports about its disk backend: the configured bounds plus
/// the observed cache activity. Attached to `CrawlReport`s by the bench
/// harness so the out-of-core claim is tracked, not anecdotal.
///
/// Cache *statistics* are schedule-dependent when shards are probed from
/// concurrent workers (hit/miss interleavings vary), so they are reported
/// but never folded into any result digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreReport {
    /// Configured page size in bytes.
    pub page_size: usize,
    /// Configured total cache budget in pages.
    pub cache_budget_pages: usize,
    /// Observed cache activity.
    pub stats: StoreStats,
}

impl StoreReport {
    /// Peak resident index memory in bytes (pages × page size).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.stats.peak_resident_pages * self.page_size as u64
    }
}
