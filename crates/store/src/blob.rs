//! Byte-stream view over a paged file.
//!
//! Encoded posting lists and forward rows are variable-length; the blob
//! layer writes them back to back across page payloads (a list freely
//! straddles page boundaries) and addresses each one with a compact
//! [`Locator`]. Reads go through the page cache, so only the touched
//! pages of a multi-gigabyte file are ever resident.

use crate::cache::{PageCache, SharedStats};
use crate::file::{PagedReader, PagedWriter};
use crate::format::invalid_data;
use crate::{Result, StoreError};
use std::path::Path;
use std::sync::Arc;

/// Address of one byte run inside a blob file: logical offset (in the
/// concatenation of page payloads) plus length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Locator {
    /// Logical byte offset of the run.
    pub off: u64,
    /// Length of the run in bytes.
    pub len: u32,
}

/// Append-only writer of a blob file. Single writer: once
/// [`finish`](Self::finish) runs the file is immutable and any number of
/// [`BlobReader`]s may open it.
#[derive(Debug)]
pub struct BlobWriter {
    writer: PagedWriter,
    /// Payload of the page currently being filled.
    page: Vec<u8>,
    /// Logical offset of the next appended byte.
    cursor: u64,
}

impl BlobWriter {
    /// Creates (truncating) a blob file at `path`.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        let writer = PagedWriter::create(path, page_size)?;
        let cap = writer.payload_capacity();
        Ok(Self {
            writer,
            page: Vec::with_capacity(cap),
            cursor: 0,
        })
    }

    /// Appends `bytes` and returns its locator.
    pub fn append(&mut self, bytes: &[u8]) -> Result<Locator> {
        let len = u32::try_from(bytes.len())
            .map_err(|_| StoreError::Io(invalid_data("blob run exceeds 4 GiB")))?;
        let loc = Locator {
            off: self.cursor,
            len,
        };
        let cap = self.writer.payload_capacity();
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = cap - self.page.len();
            let take = room.min(rest.len());
            let (head, tail) = rest.split_at(take);
            self.page.extend_from_slice(head);
            rest = tail;
            if self.page.len() == cap {
                self.writer.append_page(&self.page)?;
                self.page.clear();
            }
        }
        self.cursor += u64::from(len);
        Ok(loc)
    }

    /// Flushes the trailing partial page and writes the validating
    /// header.
    pub fn finish(mut self) -> Result<()> {
        if !self.page.is_empty() {
            self.writer.append_page(&self.page)?;
        }
        self.writer.finish()
    }
}

/// Cached reader of a finished blob file.
#[derive(Debug)]
pub struct BlobReader {
    cache: PageCache,
}

impl BlobReader {
    /// Opens (and validates) the blob file at `path` behind a page cache
    /// of at most `budget_pages` resident pages.
    pub fn open(path: &Path, budget_pages: usize, stats: Arc<SharedStats>) -> Result<Self> {
        let reader = PagedReader::open(path)?;
        Ok(Self {
            cache: PageCache::new(reader, budget_pages, stats),
        })
    }

    /// Reads the run at `loc` into `out` (replacing its contents).
    pub fn read(&mut self, loc: Locator, out: &mut Vec<u8>) -> Result<()> {
        self.cache.read_span(loc.off, loc.len as usize, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smartcrawl_store_blob_{}_{name}",
            std::process::id()
        ))
    }

    #[test]
    fn straddling_runs_round_trip() {
        let path = tmp("rt");
        // Tiny pages (capacity 20 bytes) force straddling.
        let mut w = BlobWriter::create(&path, 32).unwrap();
        let runs: Vec<Vec<u8>> = vec![
            b"short".to_vec(),
            (0..=255).collect(),
            Vec::new(),
            vec![0x5A; 100],
        ];
        let locs: Vec<Locator> = runs.iter().map(|r| w.append(r).unwrap()).collect();
        w.finish().unwrap();

        let stats = Arc::new(SharedStats::default());
        let mut r = BlobReader::open(&path, 2, stats).unwrap();
        let mut out = Vec::new();
        // Read out of order to exercise cache churn.
        for &i in &[3usize, 0, 2, 1, 0, 3] {
            r.read(locs[i], &mut out).unwrap();
            assert_eq!(&out, &runs[i], "run {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_past_end_is_an_error() {
        let path = tmp("oob");
        let mut w = BlobWriter::create(&path, 32).unwrap();
        w.append(b"abc").unwrap();
        w.finish().unwrap();
        let mut r = BlobReader::open(&path, 2, Arc::new(SharedStats::default())).unwrap();
        let mut out = Vec::new();
        assert!(r.read(Locator { off: 1000, len: 10 }, &mut out).is_err());
        std::fs::remove_file(&path).ok();
    }
}
