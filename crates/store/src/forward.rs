//! Disk-backed forward index: record → queries it satisfies.
//!
//! Each record's `F(d)` row is delta/varint encoded (reusing the posting
//! codec — query ids within a row ascend) and appended to one blob file
//! in record-id order. Per-record [`Locator`]s stay in RAM (12 bytes per
//! record), so a removal batch reads exactly the rows it touches through
//! the page cache instead of holding `Σ|F(d)|` query ids resident.
//!
//! The build is chunked: `query_matches` is the per-query match-set view
//! (query → records), so rows are assembled for a window of 2¹⁶ records
//! at a time via `partition_point` range extraction, bounding build
//! memory by the window rather than the whole CSR.

use crate::backend::StoreRuntime;
use crate::blob::{BlobReader, BlobWriter, Locator};
use crate::format::invalid_data;
use crate::postings::{decode_postings_into, encode_postings};
use crate::{expect_store, Result, StoreError};
use smartcrawl_index::QueryId;
use smartcrawl_text::RecordId;
use std::sync::Mutex;

/// Records per build window.
const BUILD_CHUNK: usize = 1 << 16;

#[derive(Debug)]
struct ForwardReader {
    blob: BlobReader,
    /// Encoded-row scratch.
    buf: Vec<u8>,
    /// Decoded-row scratch.
    ids: Vec<u32>,
}

/// The disk-backed counterpart of `smartcrawl_index::ForwardIndex`.
#[derive(Debug)]
pub struct DiskForwardIndex {
    num_records: usize,
    num_queries: usize,
    total_incidences: usize,
    /// Per-record row locator, indexed by record id.
    locs: Vec<Locator>,
    reader: Mutex<ForwardReader>,
}

impl DiskForwardIndex {
    /// Builds the on-disk forward index for `num_records` records given,
    /// for each query in id order, the records it matches.
    pub fn build(
        num_records: usize,
        query_matches: &[Vec<RecordId>],
        runtime: &StoreRuntime,
    ) -> Result<Self> {
        let path = runtime.file_path("fwd");
        let mut writer = BlobWriter::create(&path, runtime.config().page_size)?;
        let mut locs = Vec::with_capacity(num_records);
        // One chunk's worth of row buffers, reused (cleared) every chunk.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        rows.resize_with(BUILD_CHUNK.min(num_records), Vec::new);
        let mut encoded = Vec::new();
        let mut total = 0usize;
        let mut lo = 0usize;
        while lo < num_records {
            let hi = (lo + BUILD_CHUNK).min(num_records);
            for (q, matches) in query_matches.iter().enumerate() {
                let start = matches.partition_point(|r| r.index() < lo);
                for &rid in matches.get(start..).unwrap_or(&[]) {
                    if rid.index() >= hi {
                        break;
                    }
                    let Some(row) = rows.get_mut(rid.index() - lo) else {
                        return Err(StoreError::Io(invalid_data(
                            "record id out of range in query matches",
                        )));
                    };
                    row.push(q as u32);
                }
            }
            for row in rows.iter_mut().take(hi - lo) {
                encoded.clear();
                encode_postings(row, &mut encoded);
                locs.push(writer.append(&encoded)?);
                total += row.len();
                row.clear();
            }
            lo = hi;
        }
        writer.finish()?;
        let blob = BlobReader::open(
            &path,
            runtime.forward_cache_budget(),
            runtime.shared_stats(),
        )?;
        Ok(Self {
            num_records,
            num_queries: query_matches.len(),
            total_incidences: total,
            locs,
            reader: Mutex::new(ForwardReader {
                blob,
                buf: Vec::new(),
                ids: Vec::new(),
            }),
        })
    }

    /// Number of records covered by the index.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Pool size the index was built against.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Total number of (record, query) incidences — `Σ_d |F(d)|`.
    pub fn total_incidences(&self) -> usize {
        self.total_incidences
    }

    /// Fills `out` with `F(d)` for record `rid` (ascending query ids;
    /// empty for unknown records).
    pub fn queries_of_into(&self, rid: RecordId, out: &mut Vec<QueryId>) {
        out.clear();
        let Some(&loc) = self.locs.get(rid.index()) else {
            return;
        };
        let mut guard = self.reader.lock().unwrap_or_else(|p| p.into_inner());
        let ForwardReader { blob, buf, ids } = &mut *guard;
        expect_store(blob.read(loc, buf), "forward row read");
        expect_store(
            decode_postings_into(buf, ids)
                .ok_or_else(|| StoreError::Io(invalid_data("undecodable forward row"))),
            "forward row decode",
        );
        out.extend(ids.iter().map(|&q| QueryId(q)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use smartcrawl_index::ForwardIndex;

    #[test]
    fn disk_forward_agrees_with_ram_forward() {
        // q0 matches {r0, r2}, q1 matches {r1}, q2 matches {r0, r1, r2}.
        let matches = vec![
            vec![RecordId(0), RecordId(2)],
            vec![RecordId(1)],
            vec![RecordId(0), RecordId(1), RecordId(2)],
        ];
        let rt = StoreRuntime::create(StoreConfig {
            page_size: 32,
            cache_pages: 2,
            shards: 1,
            dir: None,
        })
        .unwrap();
        let disk = DiskForwardIndex::build(4, &matches, &rt).unwrap();
        let ram = ForwardIndex::build(4, &matches);
        assert_eq!(disk.num_records(), ram.num_records());
        assert_eq!(disk.num_queries(), ram.num_queries());
        assert_eq!(disk.total_incidences(), ram.total_incidences());
        let mut row = Vec::new();
        for r in 0..5 {
            let rid = RecordId(r);
            disk.queries_of_into(rid, &mut row);
            assert_eq!(row, ram.queries_of(rid), "record {r}");
        }
    }
}
