//! Delta- plus varint-encoded posting lists with skip entries.
//!
//! Layout of one encoded list (all integers LEB128 varints):
//!
//! ```text
//! n                       element count
//! first_id                absolute first element        (absent if n = 0)
//! s                       number of skip entries        (absent if n = 0)
//! s × (Δid, Δoff)         skip entries, delta-coded against the previous
//!                         entry (the first against first_id and offset 0)
//! (n−1) × Δid             body: gaps between consecutive elements
//! ```
//!
//! A skip entry exists for every element whose index is a positive
//! multiple of [`SKIP_INTERVAL`]; it records that element's absolute id
//! and the body offset of the varint encoding its gap. A
//! [`PostingCursor`] streams the skip entries with non-decreasing
//! targets, jumping whole blocks during intersection instead of
//! decoding every gap — the encoded-domain analogue of the RAM index's
//! cursor galloping.

use crate::format::{read_varint, write_varint};

/// One skip entry per this many elements.
pub const SKIP_INTERVAL: usize = 128;

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Encodes a strictly ascending id list, appending to `out`.
pub fn encode_postings(ids: &[u32], out: &mut Vec<u8>) {
    write_varint(out, ids.len() as u64);
    let Some((&first, rest)) = ids.split_first() else {
        return;
    };
    write_varint(out, u64::from(first));
    // Pass 1: locate the skip targets without materialising the body.
    let mut skips: Vec<(u32, u64)> = Vec::new();
    let mut prev = first;
    let mut off = 0u64;
    for (k, &id) in rest.iter().enumerate() {
        if (k + 1) % SKIP_INTERVAL == 0 {
            skips.push((id, off));
        }
        off += varint_len(u64::from(id - prev)) as u64;
        prev = id;
    }
    write_varint(out, skips.len() as u64);
    let mut prev_id = first;
    let mut prev_off = 0u64;
    for &(id, off) in &skips {
        write_varint(out, u64::from(id - prev_id));
        write_varint(out, off - prev_off);
        prev_id = id;
        prev_off = off;
    }
    // Pass 2: the gap body.
    let mut prev = first;
    for &id in rest {
        write_varint(out, u64::from(id - prev));
        prev = id;
    }
}

/// Fully decodes an encoded list into `out` (replacing its contents).
/// Returns the element count, or `None` if `buf` is not exactly one
/// well-formed list.
pub fn decode_postings_into(buf: &[u8], out: &mut Vec<u32>) -> Option<usize> {
    out.clear();
    let mut pos = 0;
    let n = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
    if n == 0 {
        return (pos == buf.len()).then_some(0);
    }
    // Each element costs at least one byte, so a count beyond the buffer
    // length is corrupt — reject before reserving.
    if n > buf.len() {
        return None;
    }
    out.reserve(n);
    let first = u32::try_from(read_varint(buf, &mut pos)?).ok()?;
    out.push(first);
    let s = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
    if s > buf.len() {
        return None;
    }
    for _ in 0..s {
        read_varint(buf, &mut pos)?;
        read_varint(buf, &mut pos)?;
    }
    let mut prev = first;
    for _ in 1..n {
        let gap = read_varint(buf, &mut pos)?;
        let id = u64::from(prev) + gap;
        prev = u32::try_from(id).ok()?;
        out.push(prev);
    }
    (pos == buf.len()).then_some(n)
}

/// Streaming reader over one encoded list supporting `advance_to` with
/// non-decreasing targets. Malformed bytes surface as exhaustion (the
/// paged layer's checksums reject real corruption before a cursor ever
/// sees it).
#[derive(Debug)]
pub struct PostingCursor<'a> {
    buf: &'a [u8],
    /// Byte offset of the gap body within `buf`.
    body_start: usize,
    /// Read position (absolute in `buf`).
    pos: usize,
    cur: u32,
    exhausted: bool,
    /// Read position within the skip-entry section.
    skip_pos: usize,
    skips_left: usize,
    /// Absolute id of the last consumed skip entry (starts at `first_id`).
    skip_id: u32,
    /// Absolute body offset of the last consumed skip entry.
    skip_off: u64,
}

impl<'a> PostingCursor<'a> {
    /// Parses the header of an encoded list. `None` means the header is
    /// malformed; an empty list yields an exhausted cursor.
    pub fn new(buf: &'a [u8]) -> Option<Self> {
        let mut pos = 0;
        let n = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
        if n == 0 {
            return Some(Self {
                buf,
                body_start: pos,
                pos,
                cur: 0,
                exhausted: true,
                skip_pos: pos,
                skips_left: 0,
                skip_id: 0,
                skip_off: 0,
            });
        }
        let first = u32::try_from(read_varint(buf, &mut pos)?).ok()?;
        let s = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
        if s > buf.len() {
            return None;
        }
        let skip_pos = pos;
        for _ in 0..s {
            read_varint(buf, &mut pos)?;
            read_varint(buf, &mut pos)?;
        }
        Some(Self {
            buf,
            body_start: pos,
            pos,
            cur: first,
            exhausted: false,
            skip_pos,
            skips_left: s,
            skip_id: first,
            skip_off: 0,
        })
    }

    /// The element the cursor currently rests on, if any.
    pub fn current(&self) -> Option<u32> {
        if self.exhausted {
            None
        } else {
            Some(self.cur)
        }
    }

    fn die(&mut self) -> Option<u32> {
        self.exhausted = true;
        None
    }

    /// Advances to the first element `>= target` and returns it, or
    /// `None` once the list is exhausted. Targets must be non-decreasing
    /// across calls on one cursor.
    pub fn advance_to(&mut self, target: u32) -> Option<u32> {
        if self.exhausted {
            return None;
        }
        if self.cur >= target {
            return Some(self.cur);
        }
        // Stream skip entries with id <= target, remembering the last.
        let mut landed = None;
        while self.skips_left > 0 {
            let mut probe = self.skip_pos;
            let Some(d_id) = read_varint(self.buf, &mut probe) else {
                return self.die();
            };
            let Some(d_off) = read_varint(self.buf, &mut probe) else {
                return self.die();
            };
            let next_id = u64::from(self.skip_id) + d_id;
            let Ok(next_id) = u32::try_from(next_id) else {
                return self.die();
            };
            if next_id > target {
                break;
            }
            self.skip_id = next_id;
            self.skip_off += d_off;
            self.skip_pos = probe;
            self.skips_left -= 1;
            landed = Some((self.skip_id, self.skip_off));
        }
        if let Some((id, off)) = landed {
            let abs = self.body_start + off as usize;
            // Only jump forward; a prior linear walk may already be past
            // this block boundary.
            if abs > self.pos {
                self.pos = abs;
                // Consume the gap varint of the skip target itself — its
                // absolute id is already known from the entry.
                if read_varint(self.buf, &mut self.pos).is_none() {
                    return self.die();
                }
                self.cur = id;
                if self.cur >= target {
                    return Some(self.cur);
                }
            }
        }
        while self.cur < target {
            let Some(gap) = read_varint(self.buf, &mut self.pos) else {
                return self.die();
            };
            let next = u64::from(self.cur) + gap;
            let Ok(next) = u32::try_from(next) else {
                return self.die();
            };
            self.cur = next;
        }
        Some(self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ids: &[u32]) {
        let mut buf = Vec::new();
        encode_postings(ids, &mut buf);
        let mut out = Vec::new();
        assert_eq!(decode_postings_into(&buf, &mut out), Some(ids.len()));
        assert_eq!(out, ids);
    }

    #[test]
    fn lists_round_trip() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[7, 8, 9, 1000, u32::MAX]);
        let long: Vec<u32> = (0..1000).map(|i| i * 5 + (i % 5)).collect();
        round_trip(&long);
    }

    #[test]
    fn long_lists_carry_skip_entries() {
        let ids: Vec<u32> = (0..400).map(|i| i * 2).collect();
        let mut with = Vec::new();
        encode_postings(&ids, &mut with);
        let mut pos = 0;
        let n = read_varint(&with, &mut pos).unwrap();
        assert_eq!(n, 400);
        let _first = read_varint(&with, &mut pos).unwrap();
        let s = read_varint(&with, &mut pos).unwrap();
        assert_eq!(s as usize, (ids.len() - 1) / SKIP_INTERVAL);
    }

    #[test]
    fn cursor_matches_linear_scan() {
        let ids: Vec<u32> = (0..2000).map(|i| i * 7 + (i % 3)).collect();
        let mut buf = Vec::new();
        encode_postings(&ids, &mut buf);
        // Ascending targets, mixing hits, gaps, and long jumps.
        let targets: Vec<u32> = (0..600).map(|i| i * 23 + (i % 11)).collect();
        let mut cursor = PostingCursor::new(&buf).unwrap();
        for &t in &targets {
            let expect = ids.iter().copied().find(|&id| id >= t);
            assert_eq!(cursor.advance_to(t), expect, "target {t}");
        }
    }

    #[test]
    fn cursor_exhausts_cleanly() {
        let mut buf = Vec::new();
        encode_postings(&[5, 10], &mut buf);
        let mut cursor = PostingCursor::new(&buf).unwrap();
        assert_eq!(cursor.current(), Some(5));
        assert_eq!(cursor.advance_to(6), Some(10));
        assert_eq!(cursor.advance_to(11), None);
        assert_eq!(cursor.advance_to(12), None);

        let mut empty = Vec::new();
        encode_postings(&[], &mut empty);
        let cursor = PostingCursor::new(&empty).unwrap();
        assert_eq!(cursor.current(), None);
    }

    #[test]
    fn decode_rejects_malformed_buffers() {
        let mut out = Vec::new();
        // Truncated mid-body.
        let mut buf = Vec::new();
        encode_postings(&(0..300).collect::<Vec<u32>>(), &mut buf);
        assert_eq!(decode_postings_into(&buf[..buf.len() - 1], &mut out), None);
        // Trailing garbage.
        buf.push(0);
        assert_eq!(decode_postings_into(&buf, &mut out), None);
        // Absurd count.
        let huge = [0xff, 0xff, 0xff, 0x7f];
        assert_eq!(decode_postings_into(&huge, &mut out), None);
    }
}
