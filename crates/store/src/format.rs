//! Shared on-disk format primitives: FNV-1a checksums, LEB128 varints,
//! and the escape/magic-line helpers of the workspace's line-oriented
//! text stores.
//!
//! This is the one format module: the paged binary layout ([`crate::file`])
//! builds on the checksum and varint helpers, and the query cache's text
//! persistence (`smartcrawl-cache`) re-exports the escape helpers from
//! here instead of keeping private copies — the first step toward the
//! shared cross-process store.

/// FNV-1a offset basis (the same fold the workspace's digests use).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` at `*pos`, advancing `*pos` past it.
/// Returns `None` on truncation or a varint wider than 64 bits.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Backslash-escapes tabs, newlines, and backslashes so a cell can live
/// on one line of a tab-separated text store.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a dangling or unknown escape.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// An `InvalidData` I/O error with the given message — the rejection
/// shape every text store in the workspace uses for foreign or corrupt
/// files.
pub fn invalid_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_representative_values() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), None);
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80], &mut pos),
            None,
            "dangling continuation bit"
        );
        // 10 continuation bytes push past 64 bits.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff; 11], &mut pos), None);
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "tab\tnl\ncr\rback\\slash", "\\t literal"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None);
        assert_eq!(unescape("dangling\\"), None);
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
