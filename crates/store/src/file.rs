//! The block/offset file layout: fixed-size pages behind a versioned,
//! checksummed header.
//!
//! ```text
//! offset 0:  #smartcrawl-pages v1\n  (magic, 21 bytes)
//!            u32 page_size (LE)
//!            u64 num_pages (LE)
//!            u64 FNV-1a over the 33 bytes above
//!            zero padding to byte 64
//! offset 64: page 0, page 1, …  (each `page_size` bytes)
//! ```
//!
//! Each page is `[u32 payload_len][u64 FNV-1a over payload][payload]`
//! zero-padded to `page_size`. The header is written *last* (by
//! [`PagedWriter::finish`], which seeks back over the placeholder), so a
//! writer that died mid-build leaves a file that fails header validation
//! instead of one that silently reads short — the single-writer →
//! multi-reader discipline: a file is immutable and complete the moment
//! any [`PagedReader`] can open it.
//!
//! This module is the only place in the crate that creates or writes
//! files (the `io-hygiene` lint rule enforces that); every validation
//! failure is a clean [`StoreError::Corrupt`], never a panic.

use crate::format::{fnv1a, invalid_data};
use crate::{Result, StoreError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Versioned magic line opening every paged file.
pub const MAGIC: &[u8] = b"#smartcrawl-pages v1\n";
/// Bytes reserved for the file header (magic + sizes + checksum + pad).
pub const HEADER_SPAN: usize = 64;
/// Per-page header: `u32` payload length + `u64` payload checksum.
pub const PAGE_HEADER_LEN: usize = 12;
/// Smallest page size that leaves room for a header and some payload.
pub const MIN_PAGE_SIZE: usize = 32;
/// Upper bound on accepted page sizes (a corrupt header must not make a
/// reader allocate gigabytes).
pub const MAX_PAGE_SIZE: usize = 1 << 24;

fn le_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4)?
        .try_into()
        .ok()
        .map(u32::from_le_bytes)
}

fn le_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off + 8)?
        .try_into()
        .ok()
        .map(u64::from_le_bytes)
}

fn header_bytes(page_size: usize, num_pages: u64) -> Vec<u8> {
    let mut head = Vec::with_capacity(HEADER_SPAN);
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&(page_size as u32).to_le_bytes());
    head.extend_from_slice(&num_pages.to_le_bytes());
    let sum = fnv1a(&head);
    head.extend_from_slice(&sum.to_le_bytes());
    head.resize(HEADER_SPAN, 0);
    head
}

/// Single writer of a paged file. Pages are appended in order; the
/// validating header only lands when [`finish`](Self::finish) runs.
#[derive(Debug)]
pub struct PagedWriter {
    file: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    page_size: usize,
    num_pages: u64,
    /// Reused per-page staging buffer (header + payload + padding).
    staging: Vec<u8>,
}

impl PagedWriter {
    /// Creates (truncating) `path` and reserves the header span.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StoreError::Io(invalid_data("page size out of range")));
        }
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(&[0u8; HEADER_SPAN])?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            num_pages: 0,
            staging: Vec::with_capacity(page_size),
        })
    }

    /// Payload bytes one page can hold.
    pub fn payload_capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_LEN
    }

    /// Appends one page holding `payload`; returns the page index.
    pub fn append_page(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > self.payload_capacity() {
            return Err(StoreError::corrupt(
                &self.path,
                "page payload exceeds capacity",
            ));
        }
        self.staging.clear();
        self.staging
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.staging
            .extend_from_slice(&fnv1a(payload).to_le_bytes());
        self.staging.extend_from_slice(payload);
        self.staging.resize(self.page_size, 0);
        self.file.write_all(&self.staging)?;
        let page = self.num_pages;
        self.num_pages += 1;
        Ok(page)
    }

    /// Flushes the pages and writes the validating header. Until this
    /// returns, the file on disk does not pass [`PagedReader::open`].
    pub fn finish(self) -> Result<()> {
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header_bytes(self.page_size, self.num_pages))?;
        file.flush()?;
        Ok(())
    }
}

/// Validating reader over a finished paged file.
#[derive(Debug)]
pub struct PagedReader {
    file: std::fs::File,
    path: PathBuf,
    page_size: usize,
    num_pages: u64,
    /// Reused raw-page read buffer.
    raw: Vec<u8>,
}

impl PagedReader {
    /// Opens `path`, validating magic, header checksum, and file length.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut head = vec![0u8; HEADER_SPAN];
        let corrupt = |detail: &str| StoreError::corrupt(path, detail);
        file.read_exact(&mut head)
            .map_err(|_| corrupt("file shorter than its header"))?;
        if !head.starts_with(MAGIC) {
            return Err(corrupt("not a smartcrawl paged file (bad magic)"));
        }
        let page_size = le_u32(&head, MAGIC.len())
            .ok_or_else(|| corrupt("header too short for page size"))?
            as usize;
        let num_pages = le_u64(&head, MAGIC.len() + 4)
            .ok_or_else(|| corrupt("header too short for page count"))?;
        let declared_sum = le_u64(&head, MAGIC.len() + 12)
            .ok_or_else(|| corrupt("header too short for checksum"))?;
        let summed = head.get(..MAGIC.len() + 12).map(fnv1a);
        if summed != Some(declared_sum) {
            return Err(corrupt("header checksum mismatch"));
        }
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(corrupt("header declares an impossible page size"));
        }
        let expect = HEADER_SPAN as u64 + num_pages * page_size as u64;
        if file.metadata()?.len() < expect {
            return Err(corrupt("file truncated below its declared page count"));
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            page_size,
            num_pages,
            raw: Vec::new(),
        })
    }

    /// The file this reader validates against (for error reporting).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages the header declares.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Page size the header declares.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Payload bytes one page can hold.
    pub fn payload_capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_LEN
    }

    /// Reads page `page` into `out` (payload only), verifying its length
    /// and checksum. Corruption is a clean error.
    pub fn read_page(&mut self, page: u64, out: &mut Vec<u8>) -> Result<()> {
        if page >= self.num_pages {
            return Err(StoreError::corrupt(
                &self.path,
                "page index beyond page count",
            ));
        }
        self.file.seek(SeekFrom::Start(
            HEADER_SPAN as u64 + page * self.page_size as u64,
        ))?;
        self.raw.resize(self.page_size, 0);
        self.file
            .read_exact(&mut self.raw)
            .map_err(|_| StoreError::corrupt(&self.path, "short read inside a page"))?;
        let len = le_u32(&self.raw, 0)
            .ok_or_else(|| StoreError::corrupt(&self.path, "page header truncated"))?
            as usize;
        if len > self.payload_capacity() {
            return Err(StoreError::corrupt(
                &self.path,
                "page declares impossible payload length",
            ));
        }
        let declared_sum = le_u64(&self.raw, 4)
            .ok_or_else(|| StoreError::corrupt(&self.path, "page header truncated"))?;
        let payload = self
            .raw
            .get(PAGE_HEADER_LEN..PAGE_HEADER_LEN + len)
            .ok_or_else(|| StoreError::corrupt(&self.path, "page payload truncated"))?;
        if fnv1a(payload) != declared_sum {
            return Err(StoreError::corrupt(&self.path, "page checksum mismatch"));
        }
        out.clear();
        out.extend_from_slice(payload);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smartcrawl_store_file_{}_{name}",
            std::process::id()
        ))
    }

    #[test]
    fn pages_round_trip() {
        let path = tmp("rt");
        let mut w = PagedWriter::create(&path, 64).unwrap();
        let cap = w.payload_capacity();
        assert_eq!(w.append_page(b"hello").unwrap(), 0);
        assert_eq!(w.append_page(&vec![0xAB; cap]).unwrap(), 1);
        assert_eq!(w.append_page(b"").unwrap(), 2);
        w.finish().unwrap();

        let mut r = PagedReader::open(&path).unwrap();
        assert_eq!(r.num_pages(), 3);
        assert_eq!(r.page_size(), 64);
        let mut out = Vec::new();
        r.read_page(0, &mut out).unwrap();
        assert_eq!(out, b"hello");
        r.read_page(1, &mut out).unwrap();
        assert_eq!(out, vec![0xAB; cap]);
        r.read_page(2, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(r.read_page(3, &mut out).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_file_does_not_open() {
        let path = tmp("unfinished");
        let mut w = PagedWriter::create(&path, 64).unwrap();
        w.append_page(b"data").unwrap();
        // No finish(): the header is still the zero placeholder.
        drop(w);
        assert!(matches!(
            PagedReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let path = tmp("oversize");
        let mut w = PagedWriter::create(&path, 64).unwrap();
        let cap = w.payload_capacity();
        assert!(w.append_page(&vec![0u8; cap + 1]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn silly_page_sizes_are_rejected() {
        let path = tmp("sizes");
        assert!(PagedWriter::create(&path, 8).is_err());
        assert!(PagedWriter::create(&path, MAX_PAGE_SIZE + 1).is_err());
        std::fs::remove_file(&path).ok();
    }
}
