//! Property tests of the storage substrate: codec round-trips over
//! arbitrary ascending id sets, cursor-vs-linear equivalence, blob runs
//! straddling tiny pages under a tiny cache, and — the recovery
//! contract — truncated or bit-flipped files surfacing as clean
//! `StoreError`s, never panics.

use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use smartcrawl_store::postings::{decode_postings_into, encode_postings, PostingCursor};
use smartcrawl_store::{BlobReader, BlobWriter, PagedReader, PagedWriter, SharedStats, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smartcrawl_store_prop_{}_{name}_{case}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → decode is the identity on any ascending id set, with any
    /// skip-interval crossing the set size happens to produce.
    #[test]
    fn posting_codec_round_trips(ids in btree_set(0u32..5_000, 0..600)) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut buf = Vec::new();
        encode_postings(&ids, &mut buf);
        let mut out = Vec::new();
        prop_assert_eq!(decode_postings_into(&buf, &mut out), Some(ids.len()));
        prop_assert_eq!(out, ids);
    }

    /// A skip-jumping cursor visits exactly the elements a linear scan
    /// finds, for any ascending target sequence.
    #[test]
    fn cursor_agrees_with_linear_scan(
        ids in btree_set(0u32..10_000, 1..500),
        raw_targets in vec(0u32..11_000, 1..200),
    ) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut targets = raw_targets;
        targets.sort_unstable();
        let mut buf = Vec::new();
        encode_postings(&ids, &mut buf);
        let mut cursor = PostingCursor::new(&buf).expect("header parses");
        for &t in &targets {
            let expect = ids.iter().copied().find(|&id| id >= t);
            prop_assert_eq!(cursor.advance_to(t), expect, "target {}", t);
        }
    }

    /// Blob runs write/read back byte-identically across page boundaries,
    /// with a cache far smaller than the file.
    #[test]
    fn blob_runs_round_trip_across_pages(
        case in 0u64..1_000_000,
        runs in vec(vec(0u8..=255, 0..120), 1..40),
    ) {
        let path = tmp("blob", case);
        // 32-byte pages → 20-byte payloads: most runs straddle pages.
        let mut w = BlobWriter::create(&path, 32).expect("create");
        let locs: Vec<_> = runs.iter().map(|r| w.append(r).expect("append")).collect();
        w.finish().expect("finish");
        let mut r = BlobReader::open(&path, 3, Arc::new(SharedStats::default())).expect("open");
        let mut out = Vec::new();
        // Forward then backward: the backward pass defeats any residual
        // cache warmth from the forward pass.
        for (loc, run) in locs.iter().zip(&runs).chain(locs.iter().zip(&runs).rev()) {
            r.read(*loc, &mut out).expect("read");
            prop_assert_eq!(&out, run);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any truncation of a finished file is either rejected at open or at
    /// the first page read — never a panic, never silent bad data.
    #[test]
    fn truncation_is_a_clean_error(
        case in 0u64..1_000_000,
        pages in 1usize..6,
        cut in 1usize..200,
    ) {
        let path = tmp("trunc", case);
        let mut w = PagedWriter::create(&path, 64).expect("create");
        for i in 0..pages {
            w.append_page(&[i as u8; 20]).expect("append");
        }
        w.finish().expect("finish");
        let full = std::fs::read(&path).expect("read file");
        let keep = full.len().saturating_sub(cut % full.len());
        std::fs::write(&path, &full[..keep]).expect("truncate");
        match PagedReader::open(&path) {
            Err(StoreError::Corrupt { .. } | StoreError::Io(_)) => {}
            Ok(mut reader) => {
                // Open may succeed if the header survived; the torn page
                // itself must then fail its read.
                let mut out = Vec::new();
                let mut failures = 0;
                for p in 0..reader.num_pages() {
                    if reader.read_page(p, &mut out).is_err() {
                        failures += 1;
                    }
                }
                prop_assert!(failures > 0, "truncated file read back clean");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// A single flipped bit anywhere in the file is caught by the header
    /// or page checksum — reads that reach the flipped byte error out.
    #[test]
    fn bit_rot_is_detected(
        case in 0u64..1_000_000,
        victim in 0usize..300,
        bit in 0u8..8,
    ) {
        let path = tmp("rot", case);
        let mut w = PagedWriter::create(&path, 64).expect("create");
        for i in 0..4u8 {
            w.append_page(&[i; 20]).expect("append");
        }
        w.finish().expect("finish");
        let mut bytes = std::fs::read(&path).expect("read file");
        let idx = victim % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite");
        match PagedReader::open(&path) {
            Err(_) => {} // header rejected the flip
            Ok(mut reader) => {
                let mut out = Vec::new();
                let mut clean = Vec::new();
                for p in 0..reader.num_pages() {
                    match reader.read_page(p, &mut out) {
                        Ok(()) => clean.push((p, out.clone())),
                        Err(StoreError::Corrupt { .. }) => {}
                        Err(e) => panic!("unexpected error kind: {e}"),
                    }
                }
                // Pages that still read clean must be the untouched ones.
                for (p, payload) in clean {
                    prop_assert_eq!(payload, vec![p as u8; 20], "flipped page read back clean");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
