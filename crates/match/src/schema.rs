//! Schema matching (paper §2: "we assume that schemas have been aligned"
//! — the alignment itself is done by the DeepER demo system [43] using
//! standard techniques; this module provides one).
//!
//! Given the column names and a row sample from both tables, each
//! `(local column, hidden column)` pair is scored by a blend of
//!
//! * **name similarity** — token-set Jaccard over the column names after
//!   splitting camelCase/snake_case ("business_name" vs "Name" share
//!   "name"), falling back to normalized edit distance for opaque names;
//! * **value overlap** — Jaccard of the token sets of the sampled column
//!   values (two "city" columns share their city names even when the
//!   headers say `loc` and `municipality`).
//!
//! Pairs are then assigned greedily by descending score above a threshold,
//! each column used at most once — the classic instance-based matcher.

use std::collections::HashSet;

/// One aligned column pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaMatch {
    /// Column index in the local table.
    pub local_col: usize,
    /// Column index in the hidden table.
    pub hidden_col: usize,
    /// Blended similarity score in [0, 1].
    pub score: f64,
}

/// Splits an identifier into lowercase word tokens ("businessName_2" →
/// {"business", "name", "2"}).
fn name_tokens(name: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !cur.is_empty() {
                out.insert(std::mem::take(&mut cur));
            }
            prev_lower = c.is_lowercase() || c.is_numeric();
            cur.extend(c.to_lowercase());
        } else {
            if !cur.is_empty() {
                out.insert(std::mem::take(&mut cur));
            }
            prev_lower = false;
        }
    }
    if !cur.is_empty() {
        out.insert(cur);
    }
    out
}

fn jaccard_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn name_similarity(a: &str, b: &str) -> f64 {
    let (ta, tb) = (name_tokens(a), name_tokens(b));
    let token_sim = jaccard_sets(&ta, &tb);
    if token_sim > 0.0 {
        return token_sim;
    }
    // Opaque names: normalized Levenshtein.
    let (la, lb) = (a.to_lowercase(), b.to_lowercase());
    let d = smartcrawl_text::similarity::levenshtein(&la, &lb);
    let max = la.chars().count().max(lb.chars().count()).max(1);
    1.0 - d as f64 / max as f64
}

/// Token set of a column's sampled values.
fn value_tokens(rows: &[Vec<String>], col: usize, cap: usize) -> HashSet<String> {
    let mut out = HashSet::new();
    for row in rows.iter().take(cap) {
        if let Some(v) = row.get(col) {
            for t in v.split(|c: char| !c.is_alphanumeric()) {
                if !t.is_empty() {
                    out.insert(t.to_lowercase());
                }
            }
        }
    }
    out
}

/// Matches two schemas from their headers and row samples. Returns the
/// greedy one-to-one alignment with scores ≥ `threshold`, ordered by
/// descending score.
pub fn match_schemas(
    local_header: &[String],
    local_rows: &[Vec<String>],
    hidden_header: &[String],
    hidden_rows: &[Vec<String>],
    threshold: f64,
) -> Vec<SchemaMatch> {
    const SAMPLE_CAP: usize = 200;
    let local_values: Vec<HashSet<String>> = (0..local_header.len())
        .map(|c| value_tokens(local_rows, c, SAMPLE_CAP))
        .collect();
    let hidden_values: Vec<HashSet<String>> = (0..hidden_header.len())
        .map(|c| value_tokens(hidden_rows, c, SAMPLE_CAP))
        .collect();

    let mut candidates: Vec<SchemaMatch> = Vec::new();
    for (li, lname) in local_header.iter().enumerate() {
        for (hi, hname) in hidden_header.iter().enumerate() {
            let names = name_similarity(lname, hname);
            let values = jaccard_sets(&local_values[li], &hidden_values[hi]);
            let score = 0.4 * names + 0.6 * values;
            if score >= threshold {
                candidates.push(SchemaMatch { local_col: li, hidden_col: hi, score });
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.local_col.cmp(&b.local_col))
            .then(a.hidden_col.cmp(&b.hidden_col))
    });
    let mut used_local = vec![false; local_header.len()];
    let mut used_hidden = vec![false; hidden_header.len()];
    let mut out = Vec::new();
    for c in candidates {
        if !used_local[c.local_col] && !used_hidden[c.hidden_col] {
            used_local[c.local_col] = true;
            used_hidden[c.hidden_col] = true;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter().map(|r| r.iter().map(|s| s.to_string()).collect()).collect()
    }

    #[test]
    fn name_tokens_split_styles() {
        let t = name_tokens("businessName_id2");
        assert!(t.contains("business"));
        assert!(t.contains("name"));
        assert!(t.contains("id2") || (t.contains("id") && t.contains("2")), "{t:?}");
    }

    #[test]
    fn aligns_by_header_names() {
        let m = match_schemas(
            &["name".into(), "city".into()],
            &rows(&[&["a b", "x"]]),
            &["business_name".into(), "city".into(), "rating".into()],
            &rows(&[&["c d", "y", "4.5"]]),
            0.2,
        );
        let pairs: Vec<(usize, usize)> =
            m.iter().map(|x| (x.local_col, x.hidden_col)).collect();
        assert!(pairs.contains(&(0, 0)), "{m:?}");
        assert!(pairs.contains(&(1, 1)), "{m:?}");
    }

    #[test]
    fn aligns_by_values_when_names_are_opaque() {
        // Headers share nothing, but the value distributions do.
        let m = match_schemas(
            &["c1".into(), "c2".into()],
            &rows(&[
                &["thai noodle house", "phoenix"],
                &["jade palace", "tucson"],
                &["lotus of siam", "phoenix"],
            ]),
            &["colA".into(), "colB".into()],
            &rows(&[
                &["phoenix", "thai noodle house"],
                &["tucson", "jade palace"],
                &["mesa", "golden grill"],
            ]),
            0.2,
        );
        let pairs: Vec<(usize, usize)> =
            m.iter().map(|x| (x.local_col, x.hidden_col)).collect();
        assert!(pairs.contains(&(0, 1)), "name column should cross-align: {m:?}");
        assert!(pairs.contains(&(1, 0)), "city column should cross-align: {m:?}");
    }

    #[test]
    fn assignment_is_one_to_one() {
        let m = match_schemas(
            &["name".into(), "title".into()],
            &rows(&[&["x", "x"]]),
            &["name".into()],
            &rows(&[&["x"]]),
            0.1,
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].hidden_col, 0);
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let m = match_schemas(
            &["alpha".into()],
            &rows(&[&["one two"]]),
            &["zzz".into()],
            &rows(&[&["three four"]]),
            0.5,
        );
        assert!(m.is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let m = match_schemas(
            &["name".into(), "city".into()],
            &rows(&[&["a", "phoenix"]]),
            &["name".into(), "city".into()],
            &rows(&[&["a", "phoenix"]]),
            0.1,
        );
        assert!(m.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
