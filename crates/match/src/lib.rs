//! Entity resolution for SmartCrawl (paper §2 treats it as a pluggable
//! black box; §6.1 instantiates it with a Jaccard ≥ 0.9 similarity join).
//!
//! The crawler must decide, for every returned hidden record, which local
//! records it covers. Under Assumption 3 this is exact document equality;
//! in the fuzzy-matching setting it is a similarity join between `q(D)` and
//! the returned top-k page. [`PageIndex`] makes that join cheap by
//! token-blocking the (≤ k) page documents.

pub mod join;
pub mod matcher;
pub mod schema;

pub use join::PageIndex;
pub use matcher::Matcher;
pub use schema::{match_schemas, SchemaMatch};
