//! Similarity join between `q(D)` and a returned top-k page (paper §6.1).
//!
//! The page has at most `k` documents (k ≤ 1000 in practice), but `q(D)`
//! can be large for a frequent query, so the join is driven from the local
//! side against a token-blocked index of the page: a local document only
//! gets verified against page documents sharing at least one token (a
//! document pair with Jaccard > 0 must share a token; exact matching uses a
//! hash lookup instead).

use crate::matcher::Matcher;
use smartcrawl_text::similarity::jaccard;
use smartcrawl_text::{Document, TokenId};
use std::collections::HashMap;

/// Token-blocked index over one result page.
#[derive(Debug, Default)]
pub struct PageIndex {
    docs: Vec<Document>,
    by_token: HashMap<TokenId, Vec<u32>>,
    by_doc: HashMap<Document, u32>,
}

impl PageIndex {
    /// Indexes the page documents (position = page index).
    pub fn build(docs: Vec<Document>) -> Self {
        let mut by_token: HashMap<TokenId, Vec<u32>> = HashMap::new();
        let mut by_doc: HashMap<Document, u32> = HashMap::new();
        for (i, d) in docs.iter().enumerate() {
            for t in d.iter() {
                by_token.entry(t).or_default().push(i as u32);
            }
            // Keep the first occurrence: pages have no duplicates in
            // practice (hidden databases are deduplicated, paper fn. 3).
            by_doc.entry(d.clone()).or_insert(i as u32);
        }
        Self { docs, by_token, by_doc }
    }

    /// Number of indexed page documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the page is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The indexed documents.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Finds the best-matching page document for `d` under `matcher`.
    ///
    /// Returns the page position of the match with the highest similarity
    /// (ties → smallest position), or `None` if nothing clears the
    /// threshold. Exact matching is a single hash lookup.
    pub fn find_match(&self, d: &Document, matcher: Matcher) -> Option<usize> {
        match matcher {
            Matcher::Exact => self.by_doc.get(d).map(|&i| i as usize),
            Matcher::Jaccard { threshold } => {
                let mut best: Option<(f64, usize)> = None;
                let mut seen: Vec<u32> = Vec::new();
                for t in d.iter() {
                    if let Some(list) = self.by_token.get(&t) {
                        seen.extend_from_slice(list);
                    }
                }
                seen.sort_unstable();
                seen.dedup();
                for &i in &seen {
                    let h = &self.docs[i as usize];
                    // Size filter: |h| must lie in [τ|d|, |d|/τ] for
                    // Jaccard ≥ τ to be possible.
                    let (dl, hl) = (d.len() as f64, h.len() as f64);
                    if hl < threshold * dl || hl * threshold > dl {
                        continue;
                    }
                    let sim = jaccard(d, h);
                    if sim >= threshold {
                        let better = match best {
                            None => true,
                            Some((bs, bi)) => {
                                sim > bs || (sim == bs && (i as usize) < bi)
                            }
                        };
                        if better {
                            best = Some((sim, i as usize));
                        }
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }

    /// Joins a batch of local documents against the page: yields
    /// `(local position, page position)` for every local document that
    /// matches some page document.
    pub fn join<'a>(
        &'a self,
        locals: impl IntoIterator<Item = &'a Document> + 'a,
        matcher: Matcher,
    ) -> impl Iterator<Item = (usize, usize)> + 'a {
        locals
            .into_iter()
            .enumerate()
            .filter_map(move |(li, d)| self.find_match(d, matcher).map(|pi| (li, pi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> Document {
        Document::from_tokens(ids.iter().map(|&i| TokenId(i)).collect())
    }

    #[test]
    fn exact_match_is_found_by_hash() {
        let page = PageIndex::build(vec![doc(&[1, 2]), doc(&[3, 4])]);
        assert_eq!(page.find_match(&doc(&[2, 1]), Matcher::Exact), Some(0));
        assert_eq!(page.find_match(&doc(&[3]), Matcher::Exact), None);
    }

    #[test]
    fn jaccard_match_finds_the_best_candidate() {
        // d shares 9/10 with page[1] and 5/15 with page[0].
        let d = doc(&(0..10).collect::<Vec<_>>());
        let close = doc(&(0..9).chain([99]).collect::<Vec<_>>());
        let far = doc(&(0..5).chain(50..60).collect::<Vec<_>>());
        let page = PageIndex::build(vec![far, close]);
        assert_eq!(page.find_match(&d, Matcher::Jaccard { threshold: 0.8 }), Some(1));
        assert_eq!(page.find_match(&d, Matcher::Jaccard { threshold: 0.95 }), None);
    }

    #[test]
    fn disjoint_documents_never_match() {
        let page = PageIndex::build(vec![doc(&[1, 2, 3])]);
        assert_eq!(page.find_match(&doc(&[7, 8]), Matcher::Jaccard { threshold: 0.1 }), None);
    }

    #[test]
    fn join_pairs_every_matching_local() {
        let page = PageIndex::build(vec![doc(&[1, 2]), doc(&[3, 4])]);
        let locals = [doc(&[1, 2]), doc(&[9]), doc(&[3, 4])];
        let pairs: Vec<_> = page.join(locals.iter(), Matcher::Exact).collect();
        assert_eq!(pairs, vec![(0, 0), (2, 1)]);
    }

    #[test]
    fn empty_page_matches_nothing() {
        let page = PageIndex::build(vec![]);
        assert!(page.is_empty());
        assert_eq!(page.find_match(&doc(&[1]), Matcher::Exact), None);
        assert_eq!(page.find_match(&doc(&[1]), Matcher::paper_fuzzy()), None);
    }

    #[test]
    fn size_filter_does_not_drop_valid_matches() {
        // Identical docs pass the size filter trivially.
        let d = doc(&[5, 6, 7]);
        let page = PageIndex::build(vec![d.clone()]);
        assert_eq!(page.find_match(&d, Matcher::Jaccard { threshold: 1.0 }), Some(0));
    }
}
