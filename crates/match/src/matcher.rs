//! Record-pair matching policies.

use smartcrawl_text::similarity::jaccard;
use smartcrawl_text::Document;

/// How the crawler decides that a local and a hidden record refer to the
/// same real-world entity. Both documents must be interned in the *same*
/// vocabulary (the crawler tokenizes returned hidden text into its own).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Matcher {
    /// `document(d) = document(h)` — Assumption 3's exact matching.
    Exact,
    /// Token-set Jaccard similarity at or above a threshold (paper §6.1
    /// uses 0.9).
    Jaccard {
        /// Minimum similarity in `(0, 1]`.
        threshold: f64,
    },
}

impl Matcher {
    /// The paper's fuzzy-matching configuration: Jaccard ≥ 0.9.
    pub fn paper_fuzzy() -> Self {
        Matcher::Jaccard { threshold: 0.9 }
    }

    /// Whether documents `d` and `h` match under this policy.
    pub fn matches(&self, d: &Document, h: &Document) -> bool {
        match *self {
            Matcher::Exact => d == h,
            Matcher::Jaccard { threshold } => jaccard(d, h) >= threshold,
        }
    }

    /// The Jaccard threshold, treating exact matching as threshold 1.0 on
    /// equal sets (useful for size filters).
    pub fn threshold(&self) -> f64 {
        match *self {
            Matcher::Exact => 1.0,
            Matcher::Jaccard { threshold } => threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::TokenId;

    fn doc(ids: &[u32]) -> Document {
        Document::from_tokens(ids.iter().map(|&i| TokenId(i)).collect())
    }

    #[test]
    fn exact_requires_set_equality() {
        let m = Matcher::Exact;
        assert!(m.matches(&doc(&[1, 2]), &doc(&[2, 1])));
        assert!(!m.matches(&doc(&[1, 2]), &doc(&[1, 2, 3])));
    }

    #[test]
    fn jaccard_threshold_cuts_correctly() {
        // |A∩B| = 9, |A∪B| = 10 → 0.9.
        let a = doc(&(0..10).collect::<Vec<_>>());
        let b = doc(&(0..9).chain([42]).collect::<Vec<_>>());
        assert!(Matcher::Jaccard { threshold: 0.9 }.matches(&a, &a));
        assert!(!Matcher::Jaccard { threshold: 0.91 }.matches(&a, &b));
        // 9/11 < 0.9: one word replaced on both sides.
        let c = doc(&(0..9).chain([43]).collect::<Vec<_>>());
        assert!(!Matcher::paper_fuzzy().matches(&b, &c));
    }

    #[test]
    fn jaccard_one_equals_exact_on_nonempty() {
        let m = Matcher::Jaccard { threshold: 1.0 };
        assert!(m.matches(&doc(&[1, 2]), &doc(&[1, 2])));
        assert!(!m.matches(&doc(&[1, 2]), &doc(&[1])));
    }

    #[test]
    fn threshold_accessor() {
        assert_eq!(Matcher::Exact.threshold(), 1.0);
        assert_eq!(Matcher::paper_fuzzy().threshold(), 0.9);
    }
}
