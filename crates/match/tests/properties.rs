//! Property tests: the blocked similarity join must agree with a brute
//! force scan, and matcher semantics must be internally consistent.

use proptest::prelude::*;
use smartcrawl_match::{Matcher, PageIndex};
use smartcrawl_text::similarity::jaccard;
use smartcrawl_text::{Document, TokenId};

fn doc_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec(0u32..16, 0..8)
        .prop_map(|v| Document::from_tokens(v.into_iter().map(TokenId).collect()))
}

fn page_strategy() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec(doc_strategy(), 0..12)
}

/// Brute-force best match: highest similarity ≥ τ, ties → smallest index.
fn brute_best(d: &Document, page: &[Document], threshold: f64) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, h) in page.iter().enumerate() {
        let sim = jaccard(d, h);
        if sim >= threshold {
            match best {
                None => best = Some((sim, i)),
                Some((bs, _)) if sim > bs => best = Some((sim, i)),
                _ => {}
            }
        }
    }
    best.map(|(_, i)| i)
}

proptest! {
    #[test]
    fn blocked_join_equals_brute_force(
        d in doc_strategy(),
        page in page_strategy(),
        threshold in 0.05f64..1.0,
    ) {
        // Empty local documents have similarity 0 with any non-empty page
        // doc and 1.0 with an empty one; blocking cannot find token-free
        // candidates, so skip the degenerate case the join never sees
        // (pool queries require |q(D)| ≥ 1 and documents are non-empty).
        prop_assume!(!d.is_empty());
        prop_assume!(page.iter().all(|h| !h.is_empty()));
        let idx = PageIndex::build(page.clone());
        let got = idx.find_match(&d, Matcher::Jaccard { threshold });
        let expect = brute_best(&d, &page, threshold);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn exact_match_agrees_with_scan(d in doc_strategy(), page in page_strategy()) {
        let idx = PageIndex::build(page.clone());
        let got = idx.find_match(&d, Matcher::Exact);
        let expect = page.iter().position(|h| h == &d);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn exact_match_implies_jaccard_match(a in doc_strategy(), b in doc_strategy()) {
        if Matcher::Exact.matches(&a, &b) {
            let strict = Matcher::Jaccard { threshold: 1.0 }.matches(&a, &b);
            let fuzzy = Matcher::paper_fuzzy().matches(&a, &b);
            prop_assert!(strict);
            prop_assert!(fuzzy);
        }
    }

    #[test]
    fn lower_threshold_matches_superset(
        a in doc_strategy(), b in doc_strategy(),
        lo in 0.05f64..0.5, hi in 0.5f64..1.0,
    ) {
        if (Matcher::Jaccard { threshold: hi }).matches(&a, &b) {
            let loose = Matcher::Jaccard { threshold: lo }.matches(&a, &b);
            prop_assert!(loose);
        }
    }
}
