//! The data-parallel primitives: `par_map`, `par_map_indexed`,
//! `par_chunks`.
//!
//! All three share one engine: the input slice is cut into fixed chunks
//! ([`chunk_size_for`], a function of the length only), workers pull chunk
//! indices from an atomic counter, and results are merged by chunk index.
//! The caller's function must be pure (a function of its arguments alone);
//! under that contract the output is byte-identical for every thread
//! count, which the property tests in `tests/par_properties.rs` pin down
//! for the pool, the engine setup, and every crawling approach.

use crate::budget::{current_threads, IN_WORKER};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many items one chunk holds for an input of `len` items.
///
/// Deliberately a function of `len` *only* — never of the thread count —
/// so the chunk decomposition (and any per-chunk state, like the
/// dominance-pruning scratch buffer) is identical at every
/// `SMARTCRAWL_THREADS`. Targets 64 chunks: enough slots to keep any
/// realistic budget busy under dynamic chunk-stealing, few enough that
/// per-chunk overhead stays negligible.
pub fn chunk_size_for(len: usize) -> usize {
    const TARGET_CHUNKS: usize = 64;
    len.div_ceil(TARGET_CHUNKS).max(1)
}

/// Maps `f` over `items` in parallel; `out[i] == f(&items[i])`.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_indexed(items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` in parallel; `out[i] == f(i, &items[i])`.
pub fn par_map_indexed<T: Sync, U: Send>(items: &[T], f: impl Fn(usize, &T) -> U + Sync) -> Vec<U> {
    let per_chunk = par_chunks(items, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(i, item)| f(start + i, item))
            .collect::<Vec<U>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Applies `f(chunk_start, chunk)` to each fixed chunk of `items` in
/// parallel, returning the per-chunk results in chunk order.
///
/// This is the primitive to reach for when a computation wants per-worker
/// scratch state: allocate the scratch once per chunk inside `f` and reuse
/// it across the chunk's items — the chunk boundaries are thread-count
/// independent, so the scratch's lifecycle is too.
pub fn par_chunks<T: Sync, U: Send>(items: &[T], f: impl Fn(usize, &[T]) -> U + Sync) -> Vec<U> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let chunk_size = chunk_size_for(len);
    let n_chunks = len.div_ceil(chunk_size);
    let threads = current_threads().min(n_chunks);
    // Sequential fast path: a budget of one, or a call from inside a
    // worker thread (single-level fan-out — see the crate docs).
    if threads <= 1 || IN_WORKER.with(|w| w.get()) {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, c)| f(ci * chunk_size, c))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut produced: Vec<(usize, U)> = Vec::new();
                    loop {
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let start = ci * chunk_size;
                        let end = (start + chunk_size).min(len);
                        produced.push((ci, f(start, &items[start..end])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A worker panic is re-raised here, on the calling thread,
            // with the original payload.
            let produced = match handle.join() {
                Ok(p) => p,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (ci, result) in produced {
                slots[ci] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scope joined every worker, so every chunk was computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::with_threads;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn chunking_depends_on_length_only() {
        assert_eq!(chunk_size_for(0), 1);
        assert_eq!(chunk_size_for(1), 1);
        assert_eq!(chunk_size_for(64), 1);
        assert_eq!(chunk_size_for(65), 2);
        assert_eq!(chunk_size_for(10_000), 157);
        // The decomposition never changes with the thread budget.
        let boundaries = |_threads: usize| {
            let len = 1000;
            let c = chunk_size_for(len);
            (0..len).step_by(c).collect::<Vec<_>>()
        };
        assert_eq!(boundaries(1), boundaries(16));
    }

    #[test]
    fn par_map_matches_sequential_map_at_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items
            .iter()
            .map(|&x| x.wrapping_mul(2654435761) >> 3)
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || {
                par_map(&items, |&x| x.wrapping_mul(2654435761) >> 3)
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items = vec!["a"; 300];
        let got = with_threads(4, || par_map_indexed(&items, |i, s| format!("{s}{i}")));
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v, &format!("a{i}"));
        }
    }

    #[test]
    fn par_chunks_preserves_chunk_order_and_coverage() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 7] {
            let spans = with_threads(threads, || {
                par_chunks(&items, |start, chunk| (start, chunk.len()))
            });
            // Spans tile [0, 500) in order.
            let mut cursor = 0;
            for &(start, len) in &spans {
                assert_eq!(start, cursor);
                cursor += len;
            }
            assert_eq!(cursor, items.len());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(with_threads(8, || par_map(&[41u32], |&x| x + 1)), vec![42]);
    }

    #[test]
    fn nested_calls_run_sequentially_without_deadlock() {
        let outer: Vec<u32> = (0..130).collect();
        let got = with_threads(4, || {
            par_map(&outer, |&x| {
                // Nested fan-out: must degrade to the sequential path.
                let inner: Vec<u32> = (0..x % 5).collect();
                par_map(&inner, |&y| y + x).iter().sum::<u32>()
            })
        });
        let expect: Vec<u32> = outer
            .iter()
            .map(|&x| (0..x % 5).map(|y| y + x).sum::<u32>())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let hit = AtomicBool::new(false);
        let items: Vec<u32> = (0..200).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| {
                    if x == 137 {
                        hit.store(true, Ordering::SeqCst);
                        panic!("item 137");
                    }
                    x
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        assert!(hit.load(Ordering::SeqCst));
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "item 137");
    }

    #[test]
    fn large_input_is_fully_covered() {
        let items: Vec<u64> = (0..50_000).collect();
        let sums = with_threads(8, || par_chunks(&items, |_, c| c.iter().sum::<u64>()));
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
    }
}
