//! Deterministic data-parallel runtime for the SmartCrawl setup hot paths.
//!
//! The workspace's determinism invariant (enforced by `smartcrawl-lint`)
//! says every crawl result must be byte-identical run over run. Naive
//! threading breaks that in two ways: work *decomposition* that depends on
//! the thread count (different chunk boundaries ⇒ different per-chunk
//! scratch state), and result *merging* that depends on completion order.
//! This crate rules both out by construction:
//!
//! * **Fixed chunking** — an input slice is split into chunks whose
//!   boundaries depend only on its length ([`chunk_size_for`]), never on
//!   the thread count. A per-chunk computation therefore sees exactly the
//!   same items at `SMARTCRAWL_THREADS=1` and `=64`.
//! * **In-order merging** — chunk results are placed by chunk index, not
//!   completion order, so the output vector is identical for any thread
//!   count (workers race only over *which chunk to grab next*, which is
//!   unobservable for pure per-chunk functions).
//! * **One fan-out level** — a `par_*` call made from inside a worker
//!   thread runs sequentially instead of spawning a nested scope, so
//!   coarse-grained parallelism (e.g. the bench harness fanning out whole
//!   crawl runs) composes with the fine-grained pool/engine parallelism
//!   without oversubscribing the machine.
//!
//! The thread count comes from a [`ThreadBudget`] read once from the
//! `SMARTCRAWL_THREADS` environment variable (default: the machine's
//! available parallelism); [`with_threads`] overrides it for a scope,
//! which is how `bench_perf` and the determinism property tests sweep
//! thread counts inside one process. No RNG, no wall clock, no deps.

pub mod budget;
pub mod pipeline;
pub mod runtime;

pub use budget::{current_threads, with_threads, ThreadBudget};
pub use pipeline::{
    current_pipeline_depth, run_pipeline, with_pipeline_depth, PipelineHandle, MAX_PIPELINE_DEPTH,
};
pub use runtime::{chunk_size_for, par_chunks, par_map, par_map_indexed};
