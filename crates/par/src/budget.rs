//! The thread budget: how many worker threads `par_*` calls may use.
//!
//! Read once from the environment (`SMARTCRAWL_THREADS`, default: the
//! machine's available parallelism) and cached for the process lifetime,
//! PoolConfig-style: a plain value fixed at startup, not a knob that
//! drifts mid-run. [`with_threads`] installs a scoped override on the
//! calling thread so benchmarks and property tests can sweep thread
//! counts within one process without touching the environment.

use std::cell::Cell;
use std::sync::OnceLock;

/// Upper bound on the thread budget — a guard against a typo'd
/// `SMARTCRAWL_THREADS=10000`, far above any real machine this runs on.
pub const MAX_THREADS: usize = 256;

/// A resolved worker-thread count, always in `1..=MAX_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBudget {
    threads: usize,
}

impl ThreadBudget {
    /// Resolves the budget from the environment: `SMARTCRAWL_THREADS` if
    /// set to a positive integer, otherwise the machine's available
    /// parallelism (1 if that cannot be determined).
    pub fn from_env() -> Self {
        let configured = std::env::var("SMARTCRAWL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let threads = configured.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Self::fixed(threads)
    }

    /// A fixed budget, clamped into `1..=MAX_THREADS`.
    pub fn fixed(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The number of worker threads.
    pub fn get(&self) -> usize {
        self.threads
    }
}

/// The process-wide env-derived budget, resolved on first use.
fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| ThreadBudget::from_env().get())
}

thread_local! {
    /// Scoped override installed by [`with_threads`] (calling thread only).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside `par_*` worker threads: nested calls run sequentially.
    pub(crate) static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the thread budget overridden to `threads` on the calling
/// thread. Nestable; the previous override (or the env default) is
/// restored on exit, including on panic.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(ThreadBudget::fixed(threads).get())));
    let _restore = Restore(prev);
    f()
}

/// The thread budget in effect on the calling thread: the innermost
/// [`with_threads`] override if any, else the env-derived default.
pub fn current_threads() -> usize {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(env_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clamps_into_range() {
        assert_eq!(ThreadBudget::fixed(0).get(), 1);
        assert_eq!(ThreadBudget::fixed(4).get(), 4);
        assert_eq!(ThreadBudget::fixed(1_000_000).get(), MAX_THREADS);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3, "inner override must unwind");
        });
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let outside = current_threads();
        let caught = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn override_is_clamped() {
        with_threads(0, || assert_eq!(current_threads(), 1));
        with_threads(usize::MAX, || assert_eq!(current_threads(), MAX_THREADS));
    }
}
