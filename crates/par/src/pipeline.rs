//! Bounded-depth speculative work pipeline: the asynchronous half of the
//! pipelined crawl driver.
//!
//! [`run_pipeline`] spins up worker threads under `std::thread::scope`
//! (the same discipline as `par_chunks`: scoped spawns, panics re-raised
//! on the calling thread, `SMARTCRAWL_THREADS` as the budget) and hands
//! the caller a [`PipelineHandle`] with three operations:
//!
//! * [`PipelineHandle::submit`] — enqueue an item for a worker, returning
//!   a ticket;
//! * [`PipelineHandle::take`] — block until that ticket's result is
//!   ready and return it;
//! * [`PipelineHandle::forget`] — discard a ticket whose result will
//!   never be taken (a mispredicted speculation).
//!
//! Determinism is the caller's contract, made easy by construction: the
//! pipeline never decides *order*. Workers race over which pending item
//! to grab, but every result is keyed by its submission ticket, so the
//! caller commits results in exactly the order it chooses — completion
//! order is unobservable. The job must be pure (a function of its input
//! alone); side-effectful accounting belongs on the calling thread at
//! commit time. Under that contract the caller's output is byte-identical
//! at every pipeline depth and thread count, including the sequential
//! fallback.
//!
//! The sequential fallback: with a thread budget of 1, from inside a
//! `par_*` worker (single-level fan-out, as everywhere in this crate), or
//! at depth ≤ 1, no threads spawn and `submit` computes the job inline.
//! Results are still ticketed, so callers never branch on the mode.
//!
//! [`with_pipeline_depth`] / [`current_pipeline_depth`] mirror
//! [`with_threads`](crate::with_threads): a scoped, thread-local override
//! (default depth 1 = sequential) that benchmarks and property tests use
//! to sweep depths in one process, and that the crawl driver reads to
//! decide whether to pipeline at all.

use crate::budget::{current_threads, IN_WORKER};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Upper bound on the pipeline depth — a guard against a typo'd depth;
/// beyond a handful of in-flight queries speculation accuracy, not slot
/// count, is the limiter.
pub const MAX_PIPELINE_DEPTH: usize = 64;

thread_local! {
    /// Scoped override installed by [`with_pipeline_depth`].
    static DEPTH_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `f` with the pipeline depth overridden to `depth` (clamped to
/// `1..=MAX_PIPELINE_DEPTH`) on the calling thread. Nestable; the
/// previous override is restored on exit, including on panic.
pub fn with_pipeline_depth<R>(depth: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEPTH_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let clamped = depth.clamp(1, MAX_PIPELINE_DEPTH);
    let prev = DEPTH_OVERRIDE.with(|c| c.replace(Some(clamped)));
    let _restore = Restore(prev);
    f()
}

/// The pipeline depth in effect on the calling thread: the innermost
/// [`with_pipeline_depth`] override if any, else 1 (sequential).
pub fn current_pipeline_depth() -> usize {
    DEPTH_OVERRIDE.with(|c| c.get()).unwrap_or(1)
}

/// One job's completion: the result, or the panic payload to re-raise at
/// `take` time.
type Completion<U> = Result<U, Box<dyn std::any::Any + Send + 'static>>;

/// State shared between the driver thread and the workers, guarded by one
/// mutex. Tickets are dense sequence numbers, so membership tests are
/// linear scans over at-most-depth-sized vectors — no keyed containers.
struct State<T, U> {
    /// Submitted, not yet claimed by a worker: `(ticket, input)`.
    pending: VecDeque<(u64, T)>,
    /// Finished: `(ticket, completion)`.
    done: Vec<(u64, Completion<U>)>,
    /// Tickets claimed by a worker whose results are no longer wanted.
    forgotten: Vec<u64>,
    /// Jobs currently executing on a worker (claimed, not yet done).
    in_flight: usize,
    /// Set once the driver closure returns: workers drain and exit.
    shutdown: bool,
}

struct Shared<T, U> {
    state: Mutex<State<T, U>>,
    /// Signaled when `pending` gains an item or `shutdown` is set.
    work_ready: Condvar,
    /// Signaled when `done` gains an item.
    done_ready: Condvar,
}

/// The driver's handle into a running pipeline. Lives only inside the
/// `drive` closure of [`run_pipeline`].
pub struct PipelineHandle<'p, T, U> {
    shared: &'p Shared<T, U>,
    /// `None` in threaded mode; `Some(job)` in the inline fallback, where
    /// `submit` computes eagerly on the calling thread.
    inline_job: Option<&'p (dyn Fn(T) -> U + Sync)>,
    next_ticket: std::cell::Cell<u64>,
}

impl<T, U> PipelineHandle<'_, T, U> {
    /// Enqueues `item` for a worker (or computes it inline in the
    /// sequential fallback) and returns its ticket.
    pub fn submit(&self, item: T) -> u64 {
        let ticket = self.next_ticket.get();
        self.next_ticket.set(ticket + 1);
        match self.inline_job {
            Some(job) => {
                let completion = catch_unwind(AssertUnwindSafe(|| job(item)));
                let mut state = self.shared.state.lock().expect("pipeline lock");
                state.done.push((ticket, completion));
            }
            None => {
                let mut state = self.shared.state.lock().expect("pipeline lock");
                state.pending.push_back((ticket, item));
                drop(state);
                self.shared.work_ready.notify_one();
            }
        }
        ticket
    }

    /// Blocks until `ticket`'s job finishes and returns its result. A
    /// panic inside the job is re-raised here with the original payload.
    pub fn take(&self, ticket: u64) -> U {
        let mut state = self.shared.state.lock().expect("pipeline lock");
        loop {
            if let Some(i) = state.done.iter().position(|(t, _)| *t == ticket) {
                let completion = state.done.swap_remove(i).1;
                // Release the lock before unwinding so a propagated job
                // panic can't poison the pipeline mutex under the workers.
                drop(state);
                match completion {
                    Ok(result) => return result,
                    Err(payload) => resume_unwind(payload),
                }
            }
            state = self.shared.done_ready.wait(state).expect("pipeline lock");
        }
    }

    /// Declares that `ticket`'s result will never be taken: drops it if
    /// already computed, cancels it if still pending, and marks it to be
    /// dropped on completion if a worker already claimed it. A panic in a
    /// forgotten job is still re-raised (at the end of `run_pipeline`).
    pub fn forget(&self, ticket: u64) {
        let mut state = self.shared.state.lock().expect("pipeline lock");
        if let Some(i) = state.done.iter().position(|(t, _)| *t == ticket) {
            let completion = state.done.swap_remove(i).1;
            drop(state);
            if let Err(payload) = completion {
                resume_unwind(payload);
            }
            return;
        }
        if let Some(i) = state.pending.iter().position(|(t, _)| *t == ticket) {
            state.pending.remove(i);
            return;
        }
        state.forgotten.push(ticket);
    }

    /// Number of submitted-but-not-yet-taken jobs (pending + executing +
    /// done-but-unclaimed).
    pub fn outstanding(&self) -> usize {
        let state = self.shared.state.lock().expect("pipeline lock");
        state.pending.len() + state.in_flight + state.done.len()
    }
}

/// Runs `drive` with a [`PipelineHandle`] backed by up to `depth` worker
/// threads executing `job`, and returns `drive`'s result.
///
/// Worker count is `min(depth, thread budget − 1)`: one core stays with
/// the driver, which has its own work to overlap. With no budget to
/// spare, from inside a `par_*` worker, or at `depth <= 1`, the pipeline
/// degrades to the inline sequential mode — same API, no threads.
pub fn run_pipeline<T, U, R>(
    depth: usize,
    job: impl Fn(T) -> U + Sync,
    drive: impl FnOnce(&PipelineHandle<'_, T, U>) -> R,
) -> R
where
    T: Send,
    U: Send,
{
    let depth = depth.clamp(1, MAX_PIPELINE_DEPTH);
    let workers = depth.min(current_threads().saturating_sub(1));
    let shared: Shared<T, U> = Shared {
        state: Mutex::new(State {
            pending: VecDeque::new(),
            done: Vec::new(),
            forgotten: Vec::new(),
            in_flight: 0,
            shutdown: false,
        }),
        work_ready: Condvar::new(),
        done_ready: Condvar::new(),
    };
    if workers == 0 || depth <= 1 || IN_WORKER.with(|w| w.get()) {
        let handle = PipelineHandle {
            shared: &shared,
            inline_job: Some(&job),
            // lint:allow(send-sync-boundary) driver-thread-only ticket counter
            // inside the !Sync handle; prefetch workers never touch it
            next_ticket: std::cell::Cell::new(0),
        };
        return drive(&handle);
    }

    /// Sets `shutdown` and wakes every worker when the drive closure
    /// exits — on the normal path *and* when it unwinds (e.g. a job panic
    /// re-raised by `take`). Without this, `std::thread::scope` would
    /// join workers that are still parked on `work_ready` forever.
    struct ShutdownOnExit<'s, T, U>(&'s Shared<T, U>);
    impl<T, U> Drop for ShutdownOnExit<'_, T, U> {
        fn drop(&mut self) {
            let mut state = match self.0.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            state.shutdown = true;
            state.pending.clear();
            drop(state);
            self.0.work_ready.notify_all();
        }
    }

    let result = std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let mut state = shared.state.lock().expect("pipeline lock");
                    let (ticket, item) = loop {
                        if let Some(work) = state.pending.pop_front() {
                            break work;
                        }
                        if state.shutdown {
                            return;
                        }
                        state = shared.work_ready.wait(state).expect("pipeline lock");
                    };
                    state.in_flight += 1;
                    drop(state);
                    let completion = catch_unwind(AssertUnwindSafe(|| job(item)));
                    let mut state = shared.state.lock().expect("pipeline lock");
                    state.in_flight -= 1;
                    if let Some(i) = state.forgotten.iter().position(|&t| t == ticket) {
                        state.forgotten.swap_remove(i);
                        // A mispredicted job's result is dropped, but its
                        // panic still surfaces after `drive` returns.
                        if let Err(payload) = completion {
                            state.done.push((ticket, Err(payload)));
                            drop(state);
                            shared.done_ready.notify_all();
                        }
                        continue;
                    }
                    state.done.push((ticket, completion));
                    drop(state);
                    shared.done_ready.notify_all();
                }
            });
        }
        let handle = PipelineHandle {
            shared: &shared,
            inline_job: None,
            // lint:allow(send-sync-boundary) driver-thread-only ticket counter
            // inside the !Sync handle; prefetch workers never touch it
            next_ticket: std::cell::Cell::new(0),
        };
        let _shutdown = ShutdownOnExit(&shared);
        drive(&handle)
        // Scope exit joins the workers; the guard has already woken them.
    });
    // Surface any panic from a job whose result was never taken (the
    // driver forgot it, or shut down before taking it).
    let mut state = shared.state.lock().expect("pipeline lock");
    for (_, completion) in state.done.drain(..) {
        if let Err(payload) = completion {
            resume_unwind(payload);
        }
    }
    drop(state);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::with_threads;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn depth_override_installs_and_restores() {
        assert_eq!(current_pipeline_depth(), 1);
        with_pipeline_depth(4, || {
            assert_eq!(current_pipeline_depth(), 4);
            with_pipeline_depth(2, || assert_eq!(current_pipeline_depth(), 2));
            assert_eq!(current_pipeline_depth(), 4);
        });
        assert_eq!(current_pipeline_depth(), 1);
    }

    #[test]
    fn depth_override_is_clamped_and_panic_safe() {
        with_pipeline_depth(0, || assert_eq!(current_pipeline_depth(), 1));
        with_pipeline_depth(usize::MAX, || {
            assert_eq!(current_pipeline_depth(), MAX_PIPELINE_DEPTH)
        });
        let caught = std::panic::catch_unwind(|| {
            with_pipeline_depth(8, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_pipeline_depth(), 1);
    }

    /// Results come back by ticket regardless of submit/take interleaving
    /// or completion order, at every depth and thread budget.
    #[test]
    fn takes_return_results_by_ticket_in_any_order() {
        for threads in [1, 2, 8] {
            for depth in [1, 2, 4, 8] {
                let got = with_threads(threads, || {
                    run_pipeline(
                        depth,
                        |x: u64| x.wrapping_mul(2654435761),
                        |pipe| {
                            let tickets: Vec<u64> = (0..20).map(|x| pipe.submit(x)).collect();
                            // Take in reverse submission order.
                            tickets
                                .iter()
                                .rev()
                                .map(|&t| pipe.take(t))
                                .collect::<Vec<u64>>()
                        },
                    )
                });
                let expect: Vec<u64> = (0..20u64)
                    .rev()
                    .map(|x| x.wrapping_mul(2654435761))
                    .collect();
                assert_eq!(got, expect, "threads {threads}, depth {depth}");
            }
        }
    }

    #[test]
    fn interleaved_submit_and_take_pipelines_correctly() {
        let got = with_threads(4, || {
            run_pipeline(
                3,
                |x: usize| x * 10,
                |pipe| {
                    let mut out = Vec::new();
                    let mut window: VecDeque<u64> = VecDeque::new();
                    for x in 0..50 {
                        window.push_back(pipe.submit(x));
                        if window.len() == 3 {
                            out.push(pipe.take(window.pop_front().expect("nonempty")));
                        }
                    }
                    while let Some(t) = window.pop_front() {
                        out.push(pipe.take(t));
                    }
                    out
                },
            )
        });
        assert_eq!(got, (0..50).map(|x| x * 10).collect::<Vec<usize>>());
    }

    #[test]
    fn forget_discards_pending_executing_and_done_results() {
        for threads in [1, 4] {
            let taken = with_threads(threads, || {
                run_pipeline(
                    4,
                    |x: u32| x + 1,
                    |pipe| {
                        let keep = pipe.submit(10);
                        let drop_a = pipe.submit(20);
                        let drop_b = pipe.submit(30);
                        pipe.forget(drop_a);
                        let v = pipe.take(keep);
                        pipe.forget(drop_b);
                        v
                    },
                )
            });
            assert_eq!(taken, 11, "threads {threads}");
        }
    }

    #[test]
    fn outstanding_counts_unclaimed_work() {
        with_threads(1, || {
            run_pipeline(
                2,
                |x: u32| x,
                |pipe| {
                    assert_eq!(pipe.outstanding(), 0);
                    let t = pipe.submit(1);
                    assert_eq!(pipe.outstanding(), 1);
                    pipe.take(t);
                    assert_eq!(pipe.outstanding(), 0);
                },
            )
        });
    }

    #[test]
    fn job_panic_propagates_at_take_with_payload() {
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                with_threads(threads, || {
                    run_pipeline(
                        2,
                        |x: u32| {
                            if x == 7 {
                                panic!("job 7");
                            }
                            x
                        },
                        |pipe| {
                            let ok = pipe.submit(1);
                            let bad = pipe.submit(7);
                            assert_eq!(pipe.take(ok), 1);
                            pipe.take(bad)
                        },
                    )
                })
            });
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "job 7", "threads {threads}");
        }
    }

    #[test]
    fn untaken_job_panic_surfaces_after_drive_returns() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run_pipeline(
                    2,
                    |_: u32| -> u32 { panic!("never taken") },
                    |pipe| {
                        let t = pipe.submit(1);
                        // Give the worker time to claim before forgetting,
                        // then return without taking.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        pipe.forget(t);
                    },
                )
            })
        });
        assert!(result.is_err(), "a forgotten job's panic must not vanish");
    }

    /// Nested inside a `par_*` worker the pipeline runs inline — no
    /// nested thread explosion, same results.
    #[test]
    fn pipeline_inside_par_worker_degrades_to_inline() {
        let items: Vec<u32> = (0..40).collect();
        let got = with_threads(4, || {
            crate::par_map(&items, |&x| {
                run_pipeline(
                    4,
                    |y: u32| y + x,
                    |pipe| {
                        let t = pipe.submit(100);
                        pipe.take(t)
                    },
                )
            })
        });
        let expect: Vec<u32> = items.iter().map(|&x| 100 + x).collect();
        assert_eq!(got, expect);
    }

    /// The threaded pipeline genuinely overlaps: two slow jobs on two
    /// workers finish in roughly one job's wall time. (Loose bound — this
    /// is a smoke check, not a benchmark.)
    #[test]
    fn workers_actually_run_concurrently() {
        let concurrent_peak = AtomicUsize::new(0);
        let running = AtomicUsize::new(0);
        with_threads(4, || {
            run_pipeline(
                2,
                |_: u32| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    concurrent_peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    running.fetch_sub(1, Ordering::SeqCst);
                },
                |pipe| {
                    let a = pipe.submit(1);
                    let b = pipe.submit(2);
                    pipe.take(a);
                    pipe.take(b);
                },
            )
        });
        assert_eq!(concurrent_peak.load(Ordering::SeqCst), 2);
    }
}
