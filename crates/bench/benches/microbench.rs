//! Criterion microbenchmarks for the performance-critical substrates:
//! posting-list intersection, frequent-pattern mining, pool generation,
//! the lazy priority queue vs a naive rescan, estimator throughput, and an
//! end-to-end crawl. Sized to finish in a couple of minutes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_core::{LocalDb, PoolConfig, QueryPool, TextContext};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_fpm::{apriori, fpgrowth, MinerConfig};
use smartcrawl_index::{InvertedIndex, LazyQueue, QueryId};
use smartcrawl_match::Matcher;
use smartcrawl_text::{Document, TokenId};
use std::hint::black_box;

fn synthetic_corpus(n_docs: usize, vocab: u32, doc_len: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_docs)
        .map(|_| {
            // Zipf-flavoured skew: square the uniform to favour low ids.
            Document::from_tokens(
                (0..doc_len)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        TokenId((u * u * vocab as f64) as u32 % vocab)
                    })
                    .collect(),
            )
        })
        .collect()
}

fn bench_inverted_index(c: &mut Criterion) {
    let corpus = synthetic_corpus(20_000, 2_000, 12, 1);
    let idx = InvertedIndex::build(&corpus, 2_000);
    let queries: Vec<Vec<TokenId>> = (0..100)
        .map(|i| vec![TokenId(i % 50), TokenId(50 + i % 100)])
        .collect();
    c.bench_function("inverted_index/pair_frequency_100q", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &queries {
                acc += idx.frequency(black_box(q));
            }
            black_box(acc)
        })
    });
    c.bench_function("inverted_index/build_20k_docs", |b| {
        b.iter(|| black_box(InvertedIndex::build(black_box(&corpus), 2_000)))
    });
}

fn bench_fpm(c: &mut Criterion) {
    let corpus = synthetic_corpus(1_000, 300, 8, 2);
    let cfg = MinerConfig::new(2, 2);
    c.bench_function("fpm/fpgrowth_1k_docs", |b| {
        b.iter(|| black_box(fpgrowth(black_box(&corpus), cfg)))
    });
    c.bench_function("fpm/apriori_1k_docs", |b| {
        b.iter(|| black_box(apriori(black_box(&corpus), cfg)))
    });
}

fn bench_pool_generation(c: &mut Criterion) {
    let scenario = Scenario::build({
        let mut cfg = ScenarioConfig::tiny(3);
        cfg.local_size = 1_000;
        cfg.hidden_size = 2_000;
        cfg.delta_d = 0;
        cfg
    });
    c.bench_function("pool/generate_1k_records", |b| {
        b.iter_batched(
            || {
                let mut ctx = TextContext::new();
                LocalDb::build(scenario.local.clone(), &mut ctx)
            },
            |local| {
                black_box(QueryPool::generate(
                    &local,
                    &PoolConfig { min_support: 2, max_len: 2, seed: 1 },
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lazy_queue(c: &mut Criterion) {
    // Pop all of n entries while decaying random entries — lazy queue vs a
    // naive argmax rescan (the §6.3 claim).
    let n = 10_000usize;
    let priorities: Vec<f64> = (0..n).map(|i| (i % 997) as f64).collect();
    c.bench_function("selection/lazy_queue_10k", |b| {
        b.iter_batched(
            || (LazyQueue::new(&priorities), StdRng::seed_from_u64(4), priorities.clone()),
            |(mut q, mut rng, mut prio)| {
                for _ in 0..n {
                    let dirty = QueryId(rng.gen_range(0..n as u32));
                    if q.is_live(dirty) {
                        prio[dirty.index()] *= 0.5;
                        q.mark_dirty(dirty);
                    }
                    let popped = q.pop_max(|id| prio[id.index()]);
                    black_box(popped);
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("selection/naive_rescan_10k", |b| {
        b.iter_batched(
            || (vec![true; n], StdRng::seed_from_u64(4), priorities.clone()),
            |(mut live, mut rng, mut prio)| {
                for _ in 0..n {
                    let dirty = rng.gen_range(0..n);
                    if live[dirty] {
                        prio[dirty] *= 0.5;
                    }
                    let best = (0..n)
                        .filter(|&i| live[i])
                        .max_by(|&a, &b| prio[a].total_cmp(&prio[b]));
                    if let Some(i) = best {
                        live[i] = false;
                    }
                    black_box(best);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let scenario = Scenario::build({
        let mut cfg = ScenarioConfig::tiny(5);
        cfg.local_size = 400;
        cfg.hidden_size = 2_000;
        cfg.k = 20;
        cfg
    });
    c.bench_function("crawl/smartcrawl_b_400_locals_b80", |b| {
        b.iter(|| {
            let mut spec = RunSpec::new(Approach::SmartB, 80);
            spec.theta = 0.02;
            black_box(run_approach(black_box(&scenario), &spec))
        })
    });
    c.bench_function("crawl/naive_400_locals_b80", |b| {
        b.iter(|| {
            let spec = RunSpec::new(Approach::Naive, 80);
            black_box(run_approach(black_box(&scenario), &spec))
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    // Fuzzy page-to-D matching with the prefix filter (the §6.1 join).
    let scenario = Scenario::build({
        let mut cfg = ScenarioConfig::tiny(7);
        cfg.local_size = 2_000;
        cfg.hidden_size = 4_000;
        cfg.delta_d = 0;
        cfg.error_pct = 0.3;
        cfg
    });
    let mut ctx = TextContext::new();
    let local = LocalDb::build(scenario.local.clone(), &mut ctx);
    let match_index = smartcrawl_core::LocalMatchIndex::build(&local);
    // A synthetic "page" of 100 hidden docs.
    let page: Vec<Document> = scenario
        .hidden
        .iter()
        .take(100)
        .map(|r| ctx.doc_of_fields(r.searchable.fields()))
        .collect();
    let live = vec![true; local.len()];
    c.bench_function("match/fuzzy_page100_vs_2k_locals", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for doc in &page {
                hits += match_index
                    .find_matches(black_box(doc), Matcher::Jaccard { threshold: 0.9 }, Some(&live))
                    .len();
            }
            black_box(hits)
        })
    });
    c.bench_function("match/exact_page100_vs_2k_locals", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for doc in &page {
                hits += match_index.find_matches(black_box(doc), Matcher::Exact, Some(&live)).len();
            }
            black_box(hits)
        })
    });
}

fn bench_estimators(c: &mut Criterion) {
    use smartcrawl_core::{fisher_nch_mean, Estimator, EstimatorKind};
    let est = Estimator::new(EstimatorKind::Biased, 100, 0.005, 10_000, 500);
    c.bench_function("estimate/biased_benefit_10k_calls", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..10_000usize {
                acc += est.benefit(black_box(i % 500 + 1), i % 7, i % 5);
            }
            black_box(acc)
        })
    });
    c.bench_function("estimate/fisher_nch_mean_k100", |b| {
        b.iter(|| black_box(fisher_nch_mean(black_box(100), 9_900, 500, 2.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inverted_index, bench_fpm, bench_pool_generation, bench_lazy_queue, bench_matching, bench_estimators, bench_end_to_end
}
criterion_main!(benches);
