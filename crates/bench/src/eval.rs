//! Ground-truth evaluation of crawl reports (paper §7.1.1 "Evaluation
//! Metrics").
//!
//! *Coverage* is the number of local records covered by the crawled hidden
//! records; *relative coverage* normalizes by `|D − ΔD|` (the coverable
//! records); *recall* (used for the Yelp experiment) is the fraction of
//! matching `(d, h)` pairs whose `h` was crawled — identical to relative
//! coverage in our one-to-one entity model. Coverage is computed from
//! entity ground truth, never from the crawler's own matcher, exactly like
//! the paper's hand-labeled evaluation.

use smartcrawl_core::CrawlReport;
use smartcrawl_data::{EntityId, GroundTruth};
use std::collections::HashSet;

/// One labeled series: coverage after each checkpoint budget.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Series label (approach name).
    pub label: String,
    /// Budgets (number of issued queries) at which coverage was measured.
    pub budgets: Vec<usize>,
    /// Ground-truth covered local records at each budget.
    pub covered: Vec<usize>,
}

impl Curve {
    /// Final coverage (at the largest checkpoint).
    pub fn final_coverage(&self) -> usize {
        self.covered.last().copied().unwrap_or(0)
    }

    /// Relative values against a denominator (e.g. `|D − ΔD|`).
    pub fn relative(&self, denom: usize) -> Vec<f64> {
        self.covered.iter().map(|&c| c as f64 / denom.max(1) as f64).collect()
    }
}

/// Computes the coverage curve of a report at the given checkpoints
/// (budgets, ascending). A checkpoint beyond the number of issued queries
/// reports the final coverage.
pub fn coverage_curve(
    label: impl Into<String>,
    report: &CrawlReport,
    truth: &GroundTruth,
    checkpoints: &[usize],
) -> Curve {
    debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    let mut crawled: HashSet<EntityId> = HashSet::new();
    let mut covered_flags = vec![false; truth.num_local()];
    let mut covered_count = 0usize;
    let mut budgets = Vec::with_capacity(checkpoints.len());
    let mut covered = Vec::with_capacity(checkpoints.len());

    // Entity of each local record, precomputed.
    let local_entities: Vec<EntityId> =
        (0..truth.num_local()).map(|i| truth.local_entity(i)).collect();
    // Entity → local records (entities are unique per local in our
    // generators, but stay general).
    let mut by_entity: std::collections::HashMap<EntityId, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &e) in local_entities.iter().enumerate() {
        by_entity.entry(e).or_default().push(i);
    }

    let mut ck = checkpoints.iter().peekable();
    for (step_idx, step) in report.steps.iter().enumerate() {
        for &ext in &step.returned {
            if let Some(e) = truth.entity_of_external(ext) {
                if crawled.insert(e) {
                    if let Some(locals) = by_entity.get(&e) {
                        for &i in locals {
                            if !covered_flags[i] {
                                covered_flags[i] = true;
                                covered_count += 1;
                            }
                        }
                    }
                }
            }
        }
        while let Some(&&c) = ck.peek() {
            if c == step_idx + 1 {
                budgets.push(c);
                covered.push(covered_count);
                ck.next();
            } else {
                break;
            }
        }
    }
    // Remaining checkpoints (budget larger than issued queries).
    for &c in ck {
        budgets.push(c);
        covered.push(covered_count);
    }
    Curve { label: label.into(), budgets, covered }
}

/// Final ground-truth coverage of a report.
pub fn final_coverage(report: &CrawlReport, truth: &GroundTruth) -> usize {
    let n = report.steps.len().max(1);
    coverage_curve("", report, truth, &[n]).final_coverage()
}

/// Recall: covered matchable records / all matchable records.
pub fn recall(report: &CrawlReport, truth: &GroundTruth) -> f64 {
    final_coverage(report, truth) as f64 / truth.matchable_count().max(1) as f64
}

/// Precision of the crawler's *own* enrichment assignments: the fraction
/// of claimed (local, hidden) pairs whose entities actually agree. The
/// paper assumes a perfect entity-resolution black box; this measures how
/// far the configured matcher is from that assumption.
pub fn enrichment_precision(report: &CrawlReport, truth: &GroundTruth) -> f64 {
    if report.enriched.is_empty() {
        return 1.0;
    }
    let correct = report
        .enriched
        .iter()
        .filter(|p| {
            truth.entity_of_external(p.external) == Some(truth.local_entity(p.local))
        })
        .count();
    correct as f64 / report.enriched.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_core::crawl::CrawlStep;
    use smartcrawl_data::{Scenario, ScenarioConfig};
    use smartcrawl_hidden::ExternalId;

    fn fake_report(returned: Vec<Vec<ExternalId>>) -> CrawlReport {
        CrawlReport {
            steps: returned
                .into_iter()
                .map(|r| CrawlStep { keywords: vec![], returned: r, full_page: false })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn curve_accumulates_per_checkpoint() {
        let s = Scenario::build(ScenarioConfig::tiny(1));
        // Crawl "everything" in two giant steps: all externals split in two.
        let all: Vec<ExternalId> = s.hidden.iter().map(|r| r.external_id).collect();
        let (a, b) = all.split_at(all.len() / 2);
        let report = fake_report(vec![a.to_vec(), b.to_vec()]);
        let curve = coverage_curve("x", &report, &s.truth, &[1, 2]);
        assert_eq!(curve.budgets, vec![1, 2]);
        // After both steps every matchable local is covered.
        assert_eq!(curve.final_coverage(), s.truth.matchable_count());
        assert!(curve.covered[0] <= curve.covered[1]);
    }

    #[test]
    fn unknown_externals_are_ignored() {
        let s = Scenario::build(ScenarioConfig::tiny(2));
        let report = fake_report(vec![vec![ExternalId(9_999_999)]]);
        assert_eq!(final_coverage(&report, &s.truth), 0);
    }

    #[test]
    fn checkpoints_beyond_issued_queries_repeat_final_value() {
        let s = Scenario::build(ScenarioConfig::tiny(3));
        let all: Vec<ExternalId> = s.hidden.iter().map(|r| r.external_id).collect();
        let report = fake_report(vec![all]);
        let curve = coverage_curve("x", &report, &s.truth, &[1, 50, 100]);
        assert_eq!(curve.covered[0], curve.covered[2]);
        assert_eq!(curve.budgets, vec![1, 50, 100]);
    }

    #[test]
    fn precision_counts_entity_agreement() {
        let s = Scenario::build(ScenarioConfig::tiny(5));
        // Build a report claiming one correct and one wrong assignment.
        let ext_of_local0 = s
            .hidden
            .iter()
            .find(|r| s.truth.entity_of_external(r.external_id) == Some(s.truth.local_entity(0)))
            .map(|r| r.external_id);
        let Some(correct_ext) = ext_of_local0 else {
            return; // local 0 happens to be ΔD under this seed — skip
        };
        let wrong_ext = s
            .hidden
            .iter()
            .find(|r| s.truth.entity_of_external(r.external_id) != Some(s.truth.local_entity(1)))
            .map(|r| r.external_id)
            .unwrap();
        let mut report = fake_report(vec![vec![correct_ext, wrong_ext]]);
        report.enriched = vec![
            smartcrawl_core::crawl::EnrichedPair {
                local: 0,
                external: correct_ext,
                payload: Vec::new().into(),
                hidden_fields: Vec::new().into(),
            },
            smartcrawl_core::crawl::EnrichedPair {
                local: 1,
                external: wrong_ext,
                payload: Vec::new().into(),
                hidden_fields: Vec::new().into(),
            },
        ];
        assert!((enrichment_precision(&report, &s.truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_is_one_when_everything_crawled() {
        let s = Scenario::build(ScenarioConfig::tiny(4));
        let all: Vec<ExternalId> = s.hidden.iter().map(|r| r.external_id).collect();
        let report = fake_report(vec![all]);
        assert!((recall(&report, &s.truth) - 1.0).abs() < 1e-12);
    }
}
