//! Emission of experiment results: aligned terminal tables and CSV files
//! under `results/`.

use crate::eval::Curve;
use smartcrawl_core::CrawlReport;
use std::io::Write;
use std::path::Path;

/// Prints a titled table: first column is the budget, one column per
/// curve. All curves must share their budget axis.
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("\n== {title} ==");
    if curves.is_empty() {
        println!("(no data)");
        return;
    }
    let budgets = &curves[0].budgets;
    for c in curves {
        assert_eq!(&c.budgets, budgets, "curves must share the budget axis");
    }
    let mut header = format!("{:>8}", "budget");
    for c in curves {
        header.push_str(&format!("  {:>14}", c.label));
    }
    println!("{header}");
    for (i, b) in budgets.iter().enumerate() {
        let mut row = format!("{b:>8}");
        for c in curves {
            row.push_str(&format!("  {:>14}", c.covered[i]));
        }
        println!("{row}");
    }
}

/// Prints the same table with values normalized by `denom` (relative
/// coverage / recall).
pub fn print_curves_relative(title: &str, curves: &[Curve], denom: usize) {
    println!("\n== {title} (relative, denom = {denom}) ==");
    if curves.is_empty() {
        return;
    }
    let budgets = &curves[0].budgets;
    let mut header = format!("{:>8}", "budget");
    for c in curves {
        header.push_str(&format!("  {:>14}", c.label));
    }
    println!("{header}");
    for (i, b) in budgets.iter().enumerate() {
        let mut row = format!("{b:>8}");
        for c in curves {
            row.push_str(&format!("  {:>14.3}", c.covered[i] as f64 / denom.max(1) as f64));
        }
        println!("{row}");
    }
}

/// Renders one row of the per-phase instrumentation table (without the
/// label column). Split out so tests can assert the exact shape.
fn phase_row(report: &CrawlReport) -> String {
    let ms = |ns: u64| ns as f64 / 1.0e6;
    format!(
        "{:>8} {:>8} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>10}",
        report.events.queries_issued,
        report.enriched.len(),
        report.events.retries,
        ms(report.timing.selection_ns),
        ms(report.timing.search_ns),
        ms(report.timing.matching_ns),
        report.timing.backoff_ticks,
    )
}

/// Prints the per-phase timing and event columns of labeled crawl
/// reports: queries issued, enriched pairs, retry attempts, per-phase
/// wall-clock (selection / search / matching, in ms) and simulated
/// backoff ticks.
pub fn print_report_phases(title: &str, rows: &[(String, &CrawlReport)]) {
    println!("\n== {title} ==");
    println!(
        "{:>18} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "approach", "queries", "pairs", "retries", "select_ms", "search_ms", "match_ms", "backoff"
    );
    for (label, report) in rows {
        println!("{label:>18} {}", phase_row(report));
    }
}

/// Renders one row of the cache statistics table (without the label
/// column). Split out so tests can assert the exact shape.
fn cache_row(report: &CrawlReport) -> String {
    match report.cache {
        Some(stats) => format!(
            "{:>8} {:>8} {:>8} {:>9.1}% {:>8} {:>8}",
            stats.hits,
            stats.negative_hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.insertions,
            stats.evictions,
        ),
        None => format!(
            "{:>8} {:>8} {:>8} {:>10} {:>8} {:>8}",
            "-", "-", "-", "-", "-", "-"
        ),
    }
}

/// Prints the query-result cache section of labeled crawl reports: hits
/// (and how many of those were cached empty pages), misses, hit rate,
/// insertions, and evictions. Reports from uncached runs render as `-`.
pub fn print_cache_stats(title: &str, rows: &[(String, &CrawlReport)]) {
    println!("\n== {title} ==");
    println!(
        "{:>18} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "approach", "hits", "neg", "misses", "hit_rate", "inserts", "evicts"
    );
    for (label, report) in rows {
        println!("{label:>18} {}", cache_row(report));
    }
}

/// Writes curves as CSV: `budget,<label1>,<label2>,…`.
pub fn write_csv(path: impl AsRef<Path>, curves: &[Curve]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    if curves.is_empty() {
        return Ok(());
    }
    write!(f, "budget")?;
    for c in curves {
        write!(f, ",{}", c.label)?;
    }
    writeln!(f)?;
    for (i, b) in curves[0].budgets.iter().enumerate() {
        write!(f, "{b}")?;
        for c in curves {
            write!(f, ",{}", c.covered[i])?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Writes a generic two-column-plus CSV used by sweep experiments
/// (`x,<label1>,<label2>,…` with f64 values).
pub fn write_sweep_csv(
    path: impl AsRef<Path>,
    x_name: &str,
    xs: &[f64],
    series: &[(String, Vec<f64>)],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "{x_name}")?;
    for (label, _) in series {
        write!(f, ",{label}")?;
    }
    writeln!(f)?;
    for (i, x) in xs.iter().enumerate() {
        write!(f, "{x}")?;
        for (_, ys) in series {
            write!(f, ",{}", ys[i])?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Prints a sweep table (`x` column + one column per series).
pub fn print_sweep(title: &str, x_name: &str, xs: &[f64], series: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    let mut header = format!("{x_name:>10}");
    for (label, _) in series {
        header.push_str(&format!("  {label:>14}"));
    }
    println!("{header}");
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("{x:>10}");
        for (_, ys) in series {
            row.push_str(&format!("  {:>14.1}", ys[i]));
        }
        println!("{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str) -> Curve {
        Curve { label: label.into(), budgets: vec![1, 2], covered: vec![3, 5] }
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("smartcrawl_table_test");
        let path = dir.join("t.csv");
        write_csv(&path, &[curve("A"), curve("B")]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "budget,A,B\n1,3,3\n2,5,5\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_csv_round_trip() {
        let dir = std::env::temp_dir().join("smartcrawl_sweep_test");
        let path = dir.join("s.csv");
        write_sweep_csv(
            &path,
            "theta",
            &[0.1, 0.2],
            &[("X".to_owned(), vec![1.0, 2.0])],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "theta,X\n0.1,1\n0.2,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_row_formats_events_and_timings() {
        let mut report = CrawlReport::default();
        report.events.queries_issued = 7;
        report.events.retries = 2;
        report.timing.selection_ns = 1_500_000;
        report.timing.search_ns = 2_000_000;
        report.timing.matching_ns = 500_000;
        report.timing.backoff_ticks = 300;
        let row = phase_row(&report);
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(
            cols,
            vec!["7", "0", "2", "1.500", "2.000", "0.500", "300"],
            "row was: {row:?}"
        );
    }

    #[test]
    #[should_panic(expected = "curves must share the budget axis")]
    fn mismatched_axes_rejected() {
        let a = curve("A");
        let mut b = curve("B");
        b.budgets = vec![1, 3];
        print_curves("t", &[a, b]);
    }
}
