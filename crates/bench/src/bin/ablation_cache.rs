//! Ablation: the query-result cache (no paper counterpart — the paper
//! assumes every query is answered fresh; real crawls repeat work across
//! runs, seeds, and restarts).
//!
//! Three passes over the same sweep (SmartCrawl-B and NaiveCrawl, two
//! seeds each):
//!
//! 1. **cold** — a single shared [`QueryCache`] starts empty and fills up
//!    while the sweep runs; overlapping queries across approaches/seeds
//!    already hit.
//! 2. **warm** — the cache is saved to disk and re-loaded (exercising the
//!    persistence round-trip), then the identical sweep replays. Every
//!    lookup must hit: zero queries reach the hidden interface.
//! 3. **warm+flaky** — the warm sweep again, but behind an interface that
//!    injects 20% transient failures. Hits bypass the interface entirely,
//!    so the fault injector never fires and coverage is unchanged.
//!
//! The bin asserts the warm passes are fully served from cache and that
//! their coverage curves are identical to the cold pass, then writes
//! per-run rows (hit rate, queries saved, wall-clock) to
//! `results/ablation_cache.csv`.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{
    run_approach_cached, run_approach_cached_flaky, Approach, RunOutcome, RunSpec,
};
use smartcrawl_bench::table::{print_cache_stats, print_curves};
use smartcrawl_cache::{load_cache, save_cache, CachePolicy, QueryCache};
use smartcrawl_core::CrawlReport;
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::RetryPolicy;
use std::io::Write;
use std::time::Instant;

const SEEDS: [u64; 2] = [7, 8];
const FLAKY_RATE: f64 = 0.2;

struct Row {
    pass: &'static str,
    label: String,
    wall_ms: f64,
    outcome: RunOutcome,
}

fn sweep(
    pass: &'static str,
    cache: &mut QueryCache,
    scenario: &Scenario,
    budget: usize,
    cks: &[usize],
    flaky: bool,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for approach in [Approach::SmartB, Approach::Naive] {
        for seed in SEEDS {
            let mut spec = RunSpec::new(approach, budget);
            spec.checkpoints = cks.to_vec();
            spec.seed = seed;
            let start = Instant::now();
            let outcome = if flaky {
                run_approach_cached_flaky(
                    scenario,
                    &spec,
                    cache,
                    FLAKY_RATE,
                    RetryPolicy::standard(),
                )
            } else {
                run_approach_cached(scenario, &spec, cache)
            };
            rows.push(Row {
                pass,
                label: format!("{}/s{}", approach.label(), seed),
                wall_ms: start.elapsed().as_secs_f64() * 1.0e3,
                outcome,
            });
        }
    }
    rows
}

fn write_rows(path: &str, rows: &[Row]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "pass,approach,coverage,steps,inner_queries,hits,misses,hit_rate,\
         insertions,evictions,queries_saved,wall_ms"
    )?;
    for row in rows {
        let report = &row.outcome.report;
        let stats = report.cache.unwrap_or_default();
        writeln!(
            f,
            "{},{},{},{},{},{},{},{:.3},{},{},{},{:.3}",
            row.pass,
            row.label,
            row.outcome.curve.covered.last().copied().unwrap_or(0),
            report.steps.len(),
            stats.misses,
            stats.hits,
            stats.misses,
            stats.hit_rate(),
            stats.insertions,
            stats.evictions,
            stats.hits,
            row.wall_ms,
        )?;
    }
    Ok(())
}

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(50_000, scale);
    cfg.local_size = scaled(5_000, scale);
    let scenario = Scenario::build(cfg);
    let budget = scaled(1_000, scale);
    let cks = checkpoints(budget);

    // Cold pass: one shared store across approaches and seeds.
    let mut cache = QueryCache::new(CachePolicy::default());
    let mut rows = sweep("cold", &mut cache, &scenario, budget, &cks, false);

    // Persist, then warm-start a fresh store from disk.
    let store_path = "results/ablation_cache.store";
    std::fs::create_dir_all("results").expect("create results dir");
    save_cache(store_path, &cache).expect("save cache store");
    let mut warm =
        load_cache(store_path, CachePolicy::default()).expect("load cache store");
    println!(
        "cache store: {} entries saved to {store_path} and re-loaded",
        warm.len()
    );

    rows.extend(sweep("warm", &mut warm, &scenario, budget, &cks, false));
    rows.extend(sweep("warm+flaky", &mut warm, &scenario, budget, &cks, true));

    // The warm sweeps must be fully served from cache and reproduce the
    // cold coverage exactly.
    for (cold, later) in rows[..rows.len() / 3].iter().zip(&rows[rows.len() / 3..]) {
        let stats = later.outcome.report.cache.expect("cached run reports stats");
        assert_eq!(
            stats.misses, 0,
            "{} {} reached the hidden interface",
            later.pass, later.label
        );
        assert_eq!(
            cold.outcome.curve.covered,
            later.outcome.curve.covered,
            "{} {} diverged from the cold pass",
            later.pass,
            later.label
        );
    }
    let warm_rows = &rows[rows.len() / 3..];
    println!(
        "warm passes: {} runs, 0 inner queries, hit rate 100.0% — cold coverage reproduced",
        warm_rows.len()
    );

    let mut curves = Vec::new();
    for row in &rows[..rows.len() / 3] {
        let mut curve = row.outcome.curve.clone();
        curve.label = row.label.clone();
        curves.push(curve);
    }
    print_curves("Ablation: query-result cache — cold-pass coverage", &curves);
    let stat_rows: Vec<(String, &CrawlReport)> = rows
        .iter()
        .map(|row| (format!("{}:{}", row.pass, row.label), &row.outcome.report))
        .collect();
    print_cache_stats(
        "Cache activity per run (shared store; warm passes replay from disk)",
        &stat_rows,
    );

    write_rows("results/ablation_cache.csv", &rows).expect("write csv");
    println!("\nwrote results/ablation_cache.csv");
}
