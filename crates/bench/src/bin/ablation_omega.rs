//! Ablation: the §5.3 odds ratio ω of the overflow model.
//!
//! The paper assumes `q(D) ∩ q(H)` is a uniform draw from `q(H)` (ω = 1)
//! because users cannot calibrate ω. Here we *construct* a biased world:
//! local publications are all recent (2010–2018) while the hidden ranking
//! is year-descending, so top-k records are much likelier to belong to `D`
//! (true ω > 1). Sweeping ω shows how much the uniform-draw assumption
//! costs, and that mis-set ω degrades gracefully.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_bench::table::{print_curves, write_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    cfg.recent_local = true; // ranking now favours local records: ω > 1
    let scenario = Scenario::build(cfg);
    let budget = scaled(2_000, scale);
    let cks = checkpoints(budget);

    let mut curves = Vec::new();
    for omega in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = cks.clone();
        spec.omega = omega;
        let mut curve = run_approach(&scenario, &spec);
        curve.label = format!("SmartB w={omega}");
        curves.push(curve);
    }
    print_curves(
        "Ablation: overflow-model odds ratio ω (recent-biased local DB), coverage vs budget",
        &curves,
    );
    write_csv("results/ablation_omega.csv", &curves).expect("write csv");
}
