//! Ablation: Observed vs Predicted solidity for QSel-Est's ΔD removal
//! (§4.2 / Algorithm 4 line 29; DESIGN.md §7 deviation 3).
//!
//! `Observed` removes `q(D)` only when the page proves the query solid
//! (`|page| < k`); `Predicted` follows the paper's pseudocode and trusts
//! the sample-based type prediction. Run on a 20%-ΔD scenario, where the
//! removal policy matters most.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_bench::table::{print_curves, write_csv};
use smartcrawl_core::DeltaRemoval;
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

fn main() {
    let scale = scale_from_args();
    let budget = scaled(2_000, scale);

    // Exact-matching world with a large ΔD: the observed witness prunes
    // true ΔD records sooner and is sound, so it should win or tie.
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    cfg.delta_d = cfg.local_size / 5;
    let scenario = Scenario::build(cfg);
    let cks = checkpoints(budget);
    let mut curves = Vec::new();
    for (label, policy) in
        [("Est-B/observed", DeltaRemoval::Observed), ("Est-B/predicted", DeltaRemoval::Predicted)]
    {
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = cks.clone();
        spec.delta_removal = policy;
        let mut curve = run_approach(&scenario, &spec);
        curve.label = label.to_owned();
        curves.push(curve);
    }
    print_curves(
        "Ablation A: ΔD-removal policy, exact matching, |ΔD| = 20% of |D|",
        &curves,
    );
    write_csv("results/ablation_delta_removal.csv", &curves).expect("write csv");

    // Drifted fuzzy-matching world (Yelp-style): the observed witness
    // wrongly prunes records whose drifted twins fail the similarity
    // join; the predicted policy leaves them retryable.
    let mut cfg = ScenarioConfig::yelp_like();
    cfg.hidden_size = scaled(60_000, scale);
    cfg.local_size = scaled(3_000, scale);
    cfg.delta_d = scaled(150, scale);
    let scenario = Scenario::build(cfg);
    let budget2 = scaled(3_000, scale);
    let cks = checkpoints(budget2);
    let mut curves = Vec::new();
    for (label, policy) in
        [("Est-B/observed", DeltaRemoval::Observed), ("Est-B/predicted", DeltaRemoval::Predicted)]
    {
        let mut spec = RunSpec::new(Approach::SmartB, budget2);
        spec.checkpoints = cks.clone();
        spec.delta_removal = policy;
        spec.matcher = Matcher::paper_fuzzy();
        spec.theta = 0.002;
        let mut curve = run_approach(&scenario, &spec);
        curve.label = label.to_owned();
        curves.push(curve);
    }
    print_curves(
        "Ablation B: ΔD-removal policy, drifted Yelp-style world (Jaccard ≥ 0.9)",
        &curves,
    );
    write_csv("results/ablation_delta_removal_drift.csv", &curves).expect("write csv");
}
