//! Ablation: runtime sampling (paper §9, future work #1).
//!
//! The paper's estimators need a hidden-database sample whose construction
//! itself costs queries (6 483 for the Yelp sample). This experiment
//! charges that cost honestly and compares, at equal *total* budget:
//!
//! * **offline/free** — SmartCrawl-B with a free oracle sample (the
//!   paper's accounting);
//! * **offline/charged** — the sample is built first through the
//!   interface (pool sampler), and only the remaining budget crawls;
//! * **online** — no upfront sample; sampling rounds are interleaved
//!   (ε = 20% of queries), the estimator sharpening as the sample grows;
//! * **no sample** — QSel-Simple.

use smartcrawl_bench::eval::coverage_curve;
use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_bench::table::{print_curves, write_csv};
use smartcrawl_core::crawl::{online_smart_crawl, OnlineCrawlConfig};
use smartcrawl_core::{LocalDb, TextContext};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::Metered;
use smartcrawl_sampler::{pool_sample, PoolSamplerConfig};
use smartcrawl_text::Tokenizer;

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    let scenario = Scenario::build(cfg);
    let budget = scaled(2_000, scale);
    let cks = checkpoints(budget);
    let mut curves = Vec::new();

    // Offline sample, cost ignored (paper accounting).
    {
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = cks.clone();
        let mut curve = run_approach(&scenario, &spec);
        curve.label = "offline/free".to_owned();
        curves.push(curve);
    }

    // Offline sample, cost charged against the same budget.
    {
        let tokenizer = Tokenizer::default();
        let mut words: Vec<String> = scenario
            .local
            .iter()
            .flat_map(|r| tokenizer.raw_tokens(&r.fields().join(" ")).collect::<Vec<_>>())
            .collect();
        words.sort_unstable();
        words.dedup();
        let sample_budget = budget / 4;
        let mut iface = Metered::new(&scenario.hidden, Some(sample_budget));
        let out = pool_sample(
            &mut iface,
            &words,
            &PoolSamplerConfig {
                target_size: scaled(500, scale),
                max_queries: sample_budget,
                seed: 5,
            },
        );
        let spent = out.queries_used;
        let mut spec = RunSpec::new(Approach::SmartB, budget.saturating_sub(spent));
        spec.checkpoints = checkpoints(budget.saturating_sub(spent).max(1));
        spec.sample_override = Some(out.sample);
        let mut curve = run_approach(&scenario, &spec);
        // Shift the curve by the sampling cost so the x-axis is total
        // budget: pad the front with zero coverage.
        let mut budgets = vec![spent];
        budgets.extend(curve.budgets.iter().map(|b| b + spent));
        let mut covered = vec![0usize];
        covered.extend(curve.covered.iter().copied());
        curve.budgets = budgets;
        curve.covered = covered;
        curve.label = format!("offline/charged({spent}q)");
        // Re-sample onto the shared checkpoints for printing.
        let aligned: Vec<usize> = cks
            .iter()
            .map(|&c| {
                curve
                    .budgets
                    .iter()
                    .zip(&curve.covered)
                    .take_while(|&(&b, _)| b <= c)
                    .map(|(_, &cov)| cov)
                    .last()
                    .unwrap_or(0)
            })
            .collect();
        curves.push(smartcrawl_bench::eval::Curve {
            label: curve.label,
            budgets: cks.clone(),
            covered: aligned,
        });
    }

    // Online (runtime) sampling.
    {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(scenario.local.clone(), &mut ctx);
        let mut iface = Metered::new(&scenario.hidden, Some(budget));
        let report = online_smart_crawl(
            &local,
            &mut iface,
            &OnlineCrawlConfig { budget, seed: 5, ..Default::default() },
            ctx,
        );
        let mut curve = coverage_curve("online(e=0.2)", &report, &scenario.truth, &cks);
        curve.label = "online(e=0.2)".to_owned();
        curves.push(curve);
    }

    // No sample at all: QSel-Simple.
    {
        let mut spec = RunSpec::new(Approach::Simple, budget);
        spec.checkpoints = cks.clone();
        let mut curve = run_approach(&scenario, &spec);
        curve.label = "no sample".to_owned();
        curves.push(curve);
    }

    print_curves(
        "Ablation: runtime sampling — equal total budgets (sampling cost charged)",
        &curves,
    );
    write_csv("results/ablation_online.csv", &curves).expect("write csv");
}
