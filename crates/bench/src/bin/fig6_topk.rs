//! Regenerates Figure 6 of the paper. `--quick` for a 0.1-scale run,
//! `--scale X` for an arbitrary factor.

fn main() {
    let scale = smartcrawl_bench::experiments::scale_from_args();
    eprintln!("running figure 6 at scale {scale}");
    smartcrawl_bench::experiments::fig6::run(scale);
}
