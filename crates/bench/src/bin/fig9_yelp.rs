//! Regenerates Figure 9 of the paper. `--quick` for a 0.1-scale run,
//! `--scale X` for an arbitrary factor.

fn main() {
    let scale = smartcrawl_bench::experiments::scale_from_args();
    eprintln!("running figure 9 at scale {scale}");
    smartcrawl_bench::experiments::fig9::run(scale);
}
