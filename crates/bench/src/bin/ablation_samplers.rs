//! Ablation: deep-web sampler designs (paper §5.1 treats sampling as
//! orthogonal; this measures how much the choice actually matters).
//!
//! Compares, on the Yelp-style disjunctive world:
//! * the **pool** rejection sampler (Bar-Yossef–Gurevich / Zhang-style,
//!   singles + within-record pairs);
//! * the **random-walk** specialization sampler (Dasgupta-style);
//! * the **Bernoulli oracle** (the simulated-experiment assumption).
//!
//! Reported per sampler: sample size, queries spent, θ̂ vs realized θ, and
//! the downstream SmartCrawl-B recall when crawling with that sample.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_match::Matcher;
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::{Metered, SearchInterface};
use smartcrawl_sampler::{
    bernoulli_sample, pool_sample_queries, random_walk_sample, HiddenSample, PoolSamplerConfig,
    RandomWalkConfig,
};
use smartcrawl_text::Tokenizer;

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::yelp_like();
    cfg.hidden_size = scaled(60_000, scale);
    cfg.local_size = scaled(3_000, scale);
    cfg.delta_d = scaled(150, scale);
    let scenario = Scenario::build(cfg);
    let budget = scenario.config.local_size;
    let target = scaled(500, scale);
    let query_cap = scaled(25_000, scale.max(0.5));

    // Shared keyword material from the local snapshot.
    let tokenizer = Tokenizer::default();
    let mut singles: Vec<String> = Vec::new();
    let mut pairs: Vec<Vec<String>> = Vec::new();
    for r in &scenario.local {
        let mut toks: Vec<String> = tokenizer.raw_tokens(&r.fields().join(" ")).collect();
        toks.sort_unstable();
        toks.dedup();
        for i in 0..toks.len() {
            singles.push(toks[i].clone());
            for j in (i + 1)..toks.len() {
                pairs.push(vec![toks[i].clone(), toks[j].clone()]);
            }
        }
    }
    singles.sort_unstable();
    singles.dedup();
    let mut pool: Vec<Vec<String>> = pairs;
    pool.extend(singles.iter().map(|w| vec![w.clone()]));
    pool.sort_unstable();
    pool.dedup();

    let true_theta = |n: usize| n as f64 / scenario.hidden.len() as f64;
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "sampler", "|Hs|", "queries", "theta_hat", "theta_true", "recall"
    );

    let evaluate = |name: &str, sample: HiddenSample, queries: usize| {
        let theta_hat = sample.theta;
        let n = sample.len();
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = checkpoints(budget);
        spec.matcher = Matcher::Jaccard { threshold: 0.75 };
        spec.sample_override = Some(sample);
        let curve = run_approach(&scenario, &spec);
        let recall =
            curve.final_coverage() as f64 / scenario.truth.matchable_count() as f64;
        println!(
            "{:<14} {:>8} {:>10} {:>10.4} {:>10.4} {:>10.3}",
            name,
            n,
            queries,
            theta_hat,
            true_theta(n),
            recall
        );
    };

    // Pool sampler.
    {
        let mut iface = Metered::new(&scenario.hidden, None);
        let out = pool_sample_queries(
            &mut iface,
            &pool,
            &PoolSamplerConfig { target_size: target, max_queries: query_cap, seed: 7 },
        );
        evaluate("pool", out.sample, out.queries_used);
    }

    // Random-walk sampler.
    {
        let mut iface = Metered::new(&scenario.hidden, None);
        let out = random_walk_sample(
            &mut iface,
            &singles,
            &RandomWalkConfig {
                target_size: target,
                max_queries: query_cap,
                max_depth: 5,
                acceptance_scale: 1e-4,
                seed: 7,
            },
        );
        evaluate("random-walk", out.sample, out.queries_used);
        let _ = iface.queries_issued();
    }

    // Bernoulli oracle at the paper's 0.2%.
    {
        let sample = bernoulli_sample(&scenario.hidden, 0.002, 7);
        evaluate("oracle-0.2%", sample, 0);
    }
}
