//! Ablation: ranking-function independence.
//!
//! Lemmas 4–5 hold *regardless of the underlying ranking function*. This
//! run compares SmartCrawl-B under three rankings — year-descending,
//! year-ascending, and a seeded hash (worst-case "inscrutable relevance")
//! — on otherwise-identical scenarios. Coverage should be broadly stable.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_bench::table::{print_curves, write_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::Ranking;

fn main() {
    let scale = scale_from_args();
    let budget = scaled(2_000, scale);
    let mut curves = Vec::new();
    for (label, ranking) in [
        ("rank: year desc", Ranking::SignalDesc),
        ("rank: year asc", Ranking::SignalAsc),
        ("rank: hashed", Ranking::Hashed { seed: 99 }),
    ] {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.hidden_size = scaled(100_000, scale);
        cfg.local_size = scaled(10_000, scale);
        cfg.ranking = ranking;
        let scenario = Scenario::build(cfg);
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = checkpoints(budget);
        let mut curve = run_approach(&scenario, &spec);
        curve.label = label.to_owned();
        curves.push(curve);
    }
    print_curves(
        "Ablation: SmartCrawl-B under different (opaque) ranking functions",
        &curves,
    );
    write_csv("results/ablation_ranking.csv", &curves).expect("write csv");
}
