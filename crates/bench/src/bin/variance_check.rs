//! Seed-sensitivity check: every figure in this reproduction is a single
//! seeded run (like the paper's). This binary rebuilds the default
//! scenario under several master seeds and reports the mean ± sample
//! standard deviation of final coverage per approach, confirming that the
//! reported orderings are not seed artifacts.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_data::{Scenario, ScenarioConfig};

fn main() {
    let scale = scale_from_args().min(0.5); // variance runs are repeated; cap the size
    let seeds: [u64; 5] = [11, 23, 37, 53, 71];
    let budget = scaled(2_000, scale);
    let approaches = [
        Approach::Ideal,
        Approach::SmartB,
        Approach::SmartU,
        Approach::Full,
        Approach::Naive,
    ];

    println!(
        "seed-sensitivity over {} scenarios (|H| = {}, |D| = {}, b = {budget}):\n",
        seeds.len(),
        scaled(100_000, scale),
        scaled(10_000, scale),
    );
    println!("{:<16} {:>10} {:>10} {:>8}", "approach", "mean", "std", "cv%");
    for approach in approaches {
        let finals: Vec<f64> = seeds
            .iter()
            .map(|&seed| {
                let mut cfg = ScenarioConfig::paper_default();
                cfg.hidden_size = scaled(100_000, scale);
                cfg.local_size = scaled(10_000, scale);
                cfg.seed = seed;
                let scenario = Scenario::build(cfg);
                let mut spec = RunSpec::new(approach, budget);
                spec.checkpoints = checkpoints(budget);
                spec.seed = seed;
                run_approach(&scenario, &spec).final_coverage() as f64
            })
            .collect();
        let n = finals.len() as f64;
        let mean = finals.iter().sum::<f64>() / n;
        let var = finals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let std = var.sqrt();
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>7.2}%",
            approach.label(),
            mean,
            std,
            100.0 * std / mean.max(1.0)
        );
    }
}
