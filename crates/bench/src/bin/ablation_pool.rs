//! Ablation: query-pool parameters (§3.1; DESIGN.md §7 deviation 2).
//!
//! Sweeps the frequent-itemset length cap (`max_len`) and the support
//! threshold `t`, reporting pool size, generation time, and the coverage
//! SmartCrawl-B reaches with the paper's default budget.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach, Approach, RunSpec};
use smartcrawl_core::{LocalDb, PoolConfig, QueryPool, TextContext};
use smartcrawl_data::{Scenario, ScenarioConfig};
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    let scenario = Scenario::build(cfg);
    let budget = scaled(2_000, scale);

    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "pool config", "pool size", "gen time(ms)", "coverage"
    );
    for (min_support, max_len) in [(2usize, 1usize), (2, 2), (2, 3), (3, 2), (5, 2)] {
        let pool_cfg = PoolConfig { min_support, max_len, seed: 0x5A17 };
        // Measure pool size/time separately from the crawl.
        let mut ctx = TextContext::new();
        let local = LocalDb::build(scenario.local.clone(), &mut ctx);
        let t0 = Instant::now();
        let pool = QueryPool::generate(&local, &pool_cfg);
        let gen_ms = t0.elapsed().as_millis();

        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = checkpoints(budget);
        spec.pool = pool_cfg;
        let curve = run_approach(&scenario, &spec);
        println!(
            "{:<24} {:>12} {:>12} {:>12}",
            format!("t={min_support}, max_len={max_len}"),
            pool.len(),
            gen_ms,
            curve.final_coverage()
        );
    }
}
