//! Regenerates Table 2: true benefits vs biased estimates on the running
//! example (k = 2, θ = 1/3). The instance is the consistent reconstruction
//! described in `smartcrawl-core/src/fixture.rs`; the estimator formulas
//! are the paper's (Table 1).

use smartcrawl_core::{Estimator, EstimatorKind, LocalDb, TextContext};
use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord};
use smartcrawl_text::Record;

fn main() {
    let k = 2usize;
    let theta = 1.0 / 3.0;
    let mut ctx = TextContext::new();
    let local = LocalDb::build(
        vec![
            Record::from(["Thai Noodle House"]),
            Record::from(["Jade Noodle House"]),
            Record::from(["Thai House"]),
            Record::from(["Thai Noodle Express"]),
        ],
        &mut ctx,
    );
    let names = [
        "Thai Noodle House",
        "Jade Noodle House",
        "Thai House",
        "Thai Noodle Express",
        "Steak House",
        "Ramen Bar",
        "Noodle World",
        "Thai Palace",
        "House of Curry",
    ];
    let hidden = HiddenDbBuilder::new()
        .k(k)
        .records(names.iter().enumerate().map(|(i, &n)| {
            HiddenRecord::new(i as u64, Record::from([n]), vec![], (9 - i) as f64)
        }))
        .build();
    // Figure 1(b) sample: Thai House, Steak House, Ramen Bar.
    let sample_texts = ["thai house", "steak house", "ramen bar"];

    let est_b = Estimator::new(EstimatorKind::Biased, k, theta, local.len(), 3);
    let est_u = Estimator::new(EstimatorKind::Unbiased, k, theta, local.len(), 3);

    let queries: [(&str, &[&str]); 7] = [
        ("q1 (naive d1)", &["thai", "noodle", "house"]),
        ("q2 (naive d2)", &["jade", "noodle", "house"]),
        ("q3 = thai house", &["thai", "house"]),
        ("q4 (naive d4)", &["thai", "noodle", "express"]),
        ("q5 = house", &["house"]),
        ("q6 = thai", &["thai"]),
        ("q7 = noodle house", &["noodle", "house"]),
    ];

    println!(
        "{:<20} {:>7} {:>8} {:>9} {:>12} {:>10} {:>10}",
        "query", "|q(D)|", "|q(Hs)|", "type", "true benefit", "biased", "unbiased"
    );
    for (label, kws) in queries {
        let tokens: Vec<_> = kws.iter().filter_map(|w| ctx.vocab.get(w)).collect();
        let freq_d = local.index().frequency(&tokens);
        let freq_hs = sample_texts
            .iter()
            .filter(|t| kws.iter().all(|w| t.split(' ').any(|x| x == *w)))
            .count();
        // |q(D) ∩̃ q(Hs)|: local records in q(D) whose text appears in Hs.
        let inter = (0..local.len())
            .filter(|&i| local.doc(i).contains_all(&tokens))
            .filter(|&i| {
                let text = local.record(i).full_text().to_lowercase();
                sample_texts.contains(&text.as_str())
            })
            .count();
        // True benefit: issue for free and match exactly.
        let kw_strings: Vec<String> = kws.iter().map(|s| s.to_string()).collect();
        let page = hidden.search(&kw_strings);
        let truth = page
            .iter()
            .filter(|r| {
                let rdoc = ctx.doc_of_fields(&r.fields[..]);
                (0..local.len()).any(|i| local.doc(i) == &rdoc)
            })
            .count();
        let qtype = est_b.predict_type(freq_d, freq_hs);
        println!(
            "{:<20} {:>7} {:>8} {:>9} {:>12} {:>10.3} {:>10.3}",
            label,
            freq_d,
            freq_hs,
            format!("{qtype:?}"),
            truth,
            est_b.benefit(freq_d, freq_hs, inter),
            est_u.benefit(freq_d, freq_hs, inter),
        );
    }
}
