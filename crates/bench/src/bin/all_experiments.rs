//! Runs every figure experiment in sequence (Figures 4–9). `--quick` or
//! `--scale X` applies to all of them.

use smartcrawl_bench::experiments::{self, scale_from_args};

fn main() {
    let scale = scale_from_args();
    eprintln!("running all experiments at scale {scale}");
    let t0 = std::time::Instant::now();
    experiments::fig4::run(scale);
    experiments::fig5::run(scale);
    experiments::fig6::run(scale);
    experiments::fig7::run(scale);
    experiments::fig8::run(scale);
    experiments::fig9::run(scale);
    eprintln!("all experiments finished in {:.1}s", t0.elapsed().as_secs_f64());
}
