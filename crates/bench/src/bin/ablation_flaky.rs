//! Ablation: interface fault tolerance (the paper assumes a perfectly
//! reliable search interface; real keyword APIs time out and rate-limit).
//!
//! Each approach runs against the same scenario while the interface
//! injects seeded transient failures at increasing rates. The crawler
//! retries under the standard bounded-backoff policy, and every attempt —
//! served or failed — is charged against the query budget, so fault
//! tolerance is paid for honestly: a failure-heavy run serves fewer
//! queries and its coverage curve flattens accordingly. The second table
//! shows the structured instrumentation (retry counts, per-phase timings,
//! simulated backoff) that the session driver records along the way.

use smartcrawl_bench::experiments::{checkpoints, scale_from_args, scaled};
use smartcrawl_bench::harness::{run_approach_flaky, run_approach_report, Approach, RunSpec};
use smartcrawl_bench::table::{print_curves, print_report_phases, write_csv};
use smartcrawl_core::CrawlReport;
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::RetryPolicy;

fn main() {
    let scale = scale_from_args();
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(50_000, scale);
    cfg.local_size = scaled(5_000, scale);
    let scenario = Scenario::build(cfg);
    let budget = scaled(1_000, scale);
    let cks = checkpoints(budget);

    let rates = [0.0, 0.1, 0.2, 0.4];
    let mut curves = Vec::new();
    let mut reports: Vec<(String, CrawlReport)> = Vec::new();

    for approach in [Approach::SmartB, Approach::Naive] {
        let mut spec = RunSpec::new(approach, budget);
        spec.checkpoints = cks.clone();
        for &rate in &rates {
            let out = if rate == 0.0 {
                run_approach_report(&scenario, &spec)
            } else {
                run_approach_flaky(&scenario, &spec, rate, RetryPolicy::standard())
            };
            let label = format!("{}@{:.0}%", approach.label(), rate * 100.0);
            let mut curve = out.curve;
            curve.label = label.clone();
            curves.push(curve);
            reports.push((label, out.report));
        }
    }

    print_curves(
        "Ablation: fault tolerance — coverage under seeded transient failures (standard retries)",
        &curves,
    );
    let rows: Vec<(String, &CrawlReport)> =
        reports.iter().map(|(label, report)| (label.clone(), report)).collect();
    print_report_phases("Per-phase instrumentation (retries, timings, backoff)", &rows);
    write_csv("results/ablation_flaky.csv", &curves).expect("write csv");
}
