//! Prints Table 3: the experiment parameter grid and defaults, as encoded
//! in `ScenarioConfig::paper_default()`.

use smartcrawl_data::ScenarioConfig;

fn main() {
    let d = ScenarioConfig::paper_default();
    println!("{:<28} {:<28} {:<14}", "Parameter", "Domain", "Default");
    let rows = [
        ("Hidden Database (|H|)", "100,000".to_owned(), d.hidden_size.to_string()),
        (
            "Local Database (|D|)",
            "1, 10, 10^2, 10^3, 10^4".to_owned(),
            d.local_size.to_string(),
        ),
        ("Result# Limit (k)", "1, 50, 100, 500".to_owned(), d.k.to_string()),
        ("ΔD = D − H", "[1000, 3000]".to_owned(), d.delta_d.to_string()),
        ("Budget (b)", "1% – 20% of |D|".to_owned(), "20% of |D|".to_owned()),
        ("Sample Ratio (θ)", "0.1% – 1%".to_owned(), "0.5%".to_owned()),
        ("error%", "0% – 50%".to_owned(), format!("{:.0}%", d.error_pct * 100.0)),
    ];
    for (name, domain, default) in rows {
        println!("{name:<28} {domain:<28} {default:<14}");
    }
    println!("\n(defaults live in ScenarioConfig::paper_default(); the Yelp-style");
    println!(" setup of §7.1.2 is ScenarioConfig::yelp_like())");
}
