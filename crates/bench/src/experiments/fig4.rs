//! Figure 4 — impact of the sampling ratio (§7.2.1).
//!
//! (a) coverage vs budget at θ = 0.2%; (b) at θ = 1%; (c) coverage at
//! b = 2 000 as θ sweeps 0.1%…1%. Compared: IdealCrawl, SmartCrawl-B,
//! SmartCrawl-U, FullCrawl, NaiveCrawl. Expected shape: SmartCrawl-B ≈
//! IdealCrawl even at tiny θ; SmartCrawl-U collapses toward random
//! selection at small θ; both baselines trail by 2–4×.

use crate::experiments::{compare, scaled};
use crate::harness::Approach;
use crate::table::{print_curves, print_sweep, write_csv, write_sweep_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

/// All five approaches of the figure.
const APPROACHES: [Approach; 5] = [
    Approach::Ideal,
    Approach::SmartB,
    Approach::SmartU,
    Approach::Full,
    Approach::Naive,
];

/// Runs Figure 4(a,b,c); writes `results/fig4{a,b,c}.csv`.
pub fn run(scale: f64) {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    let budget = scaled(2_000, scale);
    let scenario = Scenario::build(cfg);

    // (a) θ = 0.2% — sample size = 0.2% · |H|.
    let curves_a = compare(&scenario, &APPROACHES, budget, 0.002, Matcher::Exact);
    print_curves("Figure 4(a): coverage vs budget, theta = 0.2%", &curves_a);
    write_csv("results/fig4a.csv", &curves_a).expect("write fig4a");

    // (b) θ = 1%.
    let curves_b = compare(&scenario, &APPROACHES, budget, 0.01, Matcher::Exact);
    print_curves("Figure 4(b): coverage vs budget, theta = 1%", &curves_b);
    write_csv("results/fig4b.csv", &curves_b).expect("write fig4b");

    // (c) final coverage at b = budget as θ sweeps.
    let thetas = [0.001, 0.002, 0.005, 0.01];
    let mut series: Vec<(String, Vec<f64>)> = APPROACHES
        .iter()
        .map(|a| (a.label().to_owned(), Vec::new()))
        .collect();
    for &theta in &thetas {
        let curves = compare(&scenario, &APPROACHES, budget, theta, Matcher::Exact);
        for (i, c) in curves.iter().enumerate() {
            series[i].1.push(c.final_coverage() as f64);
        }
    }
    let xs: Vec<f64> = thetas.iter().map(|t| t * 100.0).collect();
    print_sweep(
        &format!("Figure 4(c): coverage at b = {budget} vs sampling ratio (%)"),
        "theta(%)",
        &xs,
        &series,
    );
    write_sweep_csv("results/fig4c.csv", "theta_pct", &xs, &series).expect("write fig4c");
}
