//! Figure 7 — impact of |ΔD| on the biased estimators (§7.2.4).
//!
//! The biased estimator's bias is `|q(ΔD)|`; growing `ΔD = D − H` widens
//! the gap between SmartCrawl-B and IdealCrawl. Curves for |ΔD| ∈
//! {5%, 20%, 30%} of |D|. Expected shape: the gap grows with |ΔD| but
//! SmartCrawl-B keeps beating both baselines even at 30%.

use crate::experiments::{compare, scaled};
use crate::harness::Approach;
use crate::table::{print_curves, write_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

const APPROACHES: [Approach; 4] =
    [Approach::Ideal, Approach::SmartB, Approach::Full, Approach::Naive];

const THETA: f64 = 0.005;

/// Runs Figure 7(a,b,c); writes `results/fig7{a,b,c}.csv`.
pub fn run(scale: f64) {
    let budget = scaled(2_000, scale);
    for (panel, pct) in [("a", 0.05f64), ("b", 0.20), ("c", 0.30)] {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.hidden_size = scaled(100_000, scale);
        cfg.local_size = scaled(10_000, scale);
        cfg.delta_d = ((cfg.local_size as f64) * pct).round() as usize;
        let scenario = Scenario::build(cfg);
        let curves = compare(&scenario, &APPROACHES, budget, THETA, Matcher::Exact);
        print_curves(
            &format!(
                "Figure 7({panel}): |ΔD| = {:.0}% of |D| ({} records), coverage vs budget",
                pct * 100.0,
                scenario.config.delta_d
            ),
            &curves,
        );
        write_csv(format!("results/fig7{panel}.csv"), &curves)
            .expect("write fig7 csv");
    }
}
