//! Figure 6 — impact of the result-number limit `k` (§7.2.3).
//!
//! (a) k = 50 curves; (b) k = 500 curves; (c) coverage at b = 2 000 as k
//! sweeps {1, 50, 100, 500}. Expected shape: at k = 1 SmartCrawl-B,
//! IdealCrawl and NaiveCrawl coincide (no query sharing possible);
//! NaiveCrawl stays flat as k grows while everything else climbs.

use crate::experiments::{compare, scaled};
use crate::harness::Approach;
use crate::table::{print_curves, print_sweep, write_csv, write_sweep_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

const APPROACHES: [Approach; 5] = [
    Approach::Ideal,
    Approach::SmartB,
    Approach::SmartU,
    Approach::Full,
    Approach::Naive,
];

const THETA: f64 = 0.005;

fn scenario_with_k(scale: f64, k: usize) -> Scenario {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = scaled(10_000, scale);
    cfg.k = k;
    Scenario::build(cfg)
}

/// Runs Figure 6(a,b,c); writes `results/fig6{a,b,c}.csv`.
pub fn run(scale: f64) {
    let budget = scaled(2_000, scale);

    // (a) k = 50.
    let s_a = scenario_with_k(scale, 50);
    let curves_a = compare(&s_a, &APPROACHES, budget, THETA, Matcher::Exact);
    print_curves("Figure 6(a): k = 50, coverage vs budget", &curves_a);
    write_csv("results/fig6a.csv", &curves_a).expect("write fig6a");

    // (b) k = 500.
    let s_b = scenario_with_k(scale, 500);
    let curves_b = compare(&s_b, &APPROACHES, budget, THETA, Matcher::Exact);
    print_curves("Figure 6(b): k = 500, coverage vs budget", &curves_b);
    write_csv("results/fig6b.csv", &curves_b).expect("write fig6b");

    // (c) coverage at b = budget vs k.
    let ks = [1usize, 50, 100, 500];
    let mut series: Vec<(String, Vec<f64>)> = APPROACHES
        .iter()
        .map(|a| (a.label().to_owned(), Vec::new()))
        .collect();
    for &k in &ks {
        let s = scenario_with_k(scale, k);
        let curves = compare(&s, &APPROACHES, budget, THETA, Matcher::Exact);
        for (i, c) in curves.iter().enumerate() {
            series[i].1.push(c.final_coverage() as f64);
        }
    }
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    print_sweep(
        &format!("Figure 6(c): coverage at b = {budget} vs k"),
        "k",
        &xs,
        &series,
    );
    write_sweep_csv("results/fig6c.csv", "k", &xs, &series).expect("write fig6c");
}
