//! Figure 8 — fuzzy matching robustness (§7.2.5).
//!
//! error% of local records get one word removed/added/replaced; both
//! crawlers switch to the Jaccard ≥ 0.9 similarity join (§6.1). Expected
//! shape: going from 5% to 50% errors barely dents SmartCrawl-B (its
//! general queries rarely contain the corrupted keyword) while NaiveCrawl
//! loses roughly half of its coverage (its specific queries embed the
//! corruption).

use crate::experiments::{compare, scaled};
use crate::harness::Approach;
use crate::table::{print_curves, write_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

const APPROACHES: [Approach; 2] = [Approach::SmartB, Approach::Naive];
const THETA: f64 = 0.005;

/// Runs Figure 8(a,b); writes `results/fig8{a,b}.csv`.
pub fn run(scale: f64) {
    let budget = scaled(2_000, scale);
    for (panel, error_pct) in [("a", 0.05f64), ("b", 0.50)] {
        let mut cfg = ScenarioConfig::paper_default();
        cfg.hidden_size = scaled(100_000, scale);
        cfg.local_size = scaled(10_000, scale);
        cfg.error_pct = error_pct;
        let scenario = Scenario::build(cfg);
        let curves =
            compare(&scenario, &APPROACHES, budget, THETA, Matcher::paper_fuzzy());
        print_curves(
            &format!(
                "Figure 8({panel}): error% = {:.0}%, coverage vs budget (Jaccard ≥ 0.9)",
                error_pct * 100.0
            ),
            &curves,
        );
        write_csv(format!("results/fig8{panel}.csv"), &curves).expect("write fig8 csv");
    }
}
