//! The per-figure experiments of §7. Each module regenerates one figure
//! (or table); the binaries under `src/bin/` are thin wrappers.
//!
//! All experiments accept a scale factor: `1.0` reproduces the paper's
//! sizes (|H| = 100 000, |D| = 10 000, b ≤ 2 000), smaller factors shrink
//! everything proportionally for quick runs (`--quick` ⇒ 0.1).

pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use crate::eval::Curve;
use crate::harness::{run_specs, Approach, RunSpec};
use smartcrawl_data::Scenario;
use smartcrawl_match::Matcher;

/// Parses the scale factor from CLI args: `--scale X` ⇒ X, `--quick` ⇒
/// 0.1, default 1.0 (paper scale). An explicit `--scale` beats `--quick`,
/// so `--scale 2 --quick` means "2× corpus, but take the quick variant of
/// everything else the binary trims under `--quick`" (fewer repeats,
/// shorter sweeps).
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
            return v;
        }
    }
    if args.iter().any(|a| a == "--quick") {
        return 0.1;
    }
    1.0
}

/// Scales a paper-sized quantity, keeping it at least 1.
pub fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(1)
}

/// Ten evenly spaced checkpoints up to `budget`.
pub fn checkpoints(budget: usize) -> Vec<usize> {
    let step = (budget / 10).max(1);
    let mut cks: Vec<usize> = (1..=10).map(|i| (i * step).min(budget)).collect();
    cks.dedup();
    if cks.last() != Some(&budget) {
        cks.push(budget);
    }
    cks
}

/// Runs several approaches over one scenario concurrently and returns
/// their curves in input order.
pub fn compare(
    scenario: &Scenario,
    approaches: &[Approach],
    budget: usize,
    theta: f64,
    matcher: Matcher,
) -> Vec<Curve> {
    let cks = checkpoints(budget);
    let specs: Vec<RunSpec> = approaches
        .iter()
        .map(|&approach| {
            let mut spec = RunSpec::new(approach, budget);
            spec.checkpoints = cks.clone();
            spec.theta = theta;
            spec.matcher = matcher;
            spec
        })
        .collect();
    run_specs(scenario, &specs).into_iter().map(|o| o.curve).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_end_at_budget() {
        assert_eq!(checkpoints(20).last(), Some(&20));
        assert_eq!(checkpoints(7).last(), Some(&7));
        assert_eq!(checkpoints(1), vec![1]);
    }

    #[test]
    fn scaled_floors_at_one() {
        assert_eq!(scaled(100, 0.5), 50);
        assert_eq!(scaled(3, 0.01), 1);
    }

    #[test]
    fn compare_runs_multiple_approaches() {
        let s = Scenario::build(smartcrawl_data::ScenarioConfig::tiny(8));
        let curves = compare(
            &s,
            &[Approach::SmartB, Approach::Naive],
            10,
            0.05,
            Matcher::Exact,
        );
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "SmartCrawl-B");
        assert_eq!(curves[1].label, "NaiveCrawl");
    }
}
