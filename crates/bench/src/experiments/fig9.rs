//! Figure 9 — the Yelp-style "real hidden database" experiment (§7.3).
//!
//! The scenario reproduces §7.1.2: a stale 3 000-record local snapshot of
//! a 36 500-business hidden database with textual drift and closures, a
//! k = 50 *non-conjunctive* (disjunctive) interface, and a hidden-database
//! sample built through the interface itself with the pool-based sampler
//! (the paper used Zhang et al. \[48\]: a 500-record sample via 6 483
//! queries). Recall vs budget for SmartCrawl, NaiveCrawl, FullCrawl.
//! Expected shape: SmartCrawl reaches high recall with a fraction of |D|
//! queries; NaiveCrawl plateaus below it even after |D| queries (data
//! inconsistencies poison its specific queries); FullCrawl crawls mostly
//! irrelevant businesses.

use crate::experiments::{checkpoints, scaled};
use crate::harness::{run_approach, Approach, RunSpec};
use crate::table::{print_curves, print_curves_relative, write_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::Metered;
use smartcrawl_match::Matcher;
use smartcrawl_sampler::{pool_sample_queries, PoolSamplerConfig};
use smartcrawl_text::Tokenizer;

/// Runs Figure 9; writes `results/fig9.csv`.
pub fn run(scale: f64) {
    let mut cfg = ScenarioConfig::yelp_like();
    cfg.hidden_size = scaled(60_000, scale);
    cfg.local_size = scaled(3_000, scale);
    cfg.delta_d = scaled(150, scale);
    let scenario = Scenario::build(cfg);
    let budget = scenario.config.local_size; // paper sweeps 300…3000 = |D|

    // Build the hidden-database sample through the interface, like the
    // paper: the sampler's pool holds every single keyword of the local
    // snapshot plus every within-record keyword pair (pairs keep the
    // sampler effective when most single keywords overflow at k = 50 —
    // the role of Zhang et al.'s query trees).
    let tokenizer = Tokenizer::default();
    let mut pool_queries: Vec<Vec<String>> = Vec::new();
    let mut singles: Vec<String> = Vec::new();
    for r in &scenario.local {
        let mut toks: Vec<String> = tokenizer.raw_tokens(&r.fields().join(" ")).collect();
        toks.sort_unstable();
        toks.dedup();
        for i in 0..toks.len() {
            singles.push(toks[i].clone());
            for j in (i + 1)..toks.len() {
                pool_queries.push(vec![toks[i].clone(), toks[j].clone()]);
            }
        }
    }
    singles.sort_unstable();
    singles.dedup();
    pool_queries.extend(singles.into_iter().map(|w| vec![w]));
    pool_queries.sort_unstable();
    pool_queries.dedup();
    let mut sampler_iface = Metered::new(&scenario.hidden, None);
    let sampler_cfg = PoolSamplerConfig {
        target_size: scaled(500, scale),
        max_queries: scaled(25_000, scale.max(0.5)),
        seed: 7,
    };
    let out = pool_sample_queries(&mut sampler_iface, &pool_queries, &sampler_cfg);
    println!(
        "pool sampler: |Hs| = {}, theta_hat = {:.4}, |H|_hat = {:.0} (true {}), {} queries",
        out.sample.len(),
        out.sample.theta,
        out.size_estimate,
        scenario.hidden.len(),
        out.queries_used
    );

    // Two SmartCrawl variants: one with an oracle-quality sample (the
    // paper assumes the Zhang et al. sampler delivers an unbiased sample
    // with a correct θ — "0.2% sample with size 500"), and one driven by
    // the sample our own interface-based sampler produced, as an honest
    // sensitivity check.
    // The entity-resolution black box is domain-tuned (paper §2 treats ER
    // as pluggable): with name + address + city documents, a Jaccard
    // threshold of 0.75 absorbs one drifted token while addresses keep
    // distinct businesses well below it.
    let matcher = Matcher::Jaccard { threshold: 0.75 };
    let cks = checkpoints(budget);
    let mut curves = Vec::new();
    {
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = cks.clone();
        spec.matcher = matcher;
        spec.theta = 0.002; // the paper's 0.2% sample
        let curve = run_approach(&scenario, &spec);
        curves.push(curve);
    }
    {
        let mut spec = RunSpec::new(Approach::SmartB, budget);
        spec.checkpoints = cks.clone();
        spec.matcher = matcher;
        spec.sample_override = Some(out.sample.clone());
        let mut curve = run_approach(&scenario, &spec);
        curve.label = "SmartB/sampled".to_owned();
        curves.push(curve);
    }
    for approach in [Approach::Naive, Approach::Full] {
        let mut spec = RunSpec::new(approach, budget);
        spec.checkpoints = cks.clone();
        spec.matcher = matcher;
        let curve = run_approach(&scenario, &spec);
        curves.push(curve);
    }
    // The paper also reports NaiveCrawl after issuing *all* |D| queries —
    // covered by budget = |D| above.
    let denom = scenario.truth.matchable_count();
    print_curves("Figure 9: Yelp-style hidden database, covered records vs budget", &curves);
    print_curves_relative("Figure 9: recall vs budget", &curves, denom);
    write_csv("results/fig9.csv", &curves).expect("write fig9");
}
