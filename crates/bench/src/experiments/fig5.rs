//! Figure 5 — impact of the local database size (§7.2.2).
//!
//! (a) |D| = 100, b = 50; (b) |D| = 1 000, b = 200; (c) relative coverage
//! as |D| sweeps 10…10 000 with b = 20%·|D|. Expected shape: FullCrawl is
//! hopeless for small |D|/|H| and catches up as the ratio grows; the
//! local-database-aware approaches are insensitive; NaiveCrawl's relative
//! coverage is flat at ≈ b/|D| = 20%.

use crate::experiments::{compare, scaled};
use crate::harness::Approach;
use crate::table::{print_curves, print_sweep, write_csv, write_sweep_csv};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_match::Matcher;

const APPROACHES: [Approach; 5] = [
    Approach::Ideal,
    Approach::SmartB,
    Approach::SmartU,
    Approach::Full,
    Approach::Naive,
];

/// Table 3 default sample ratio.
const THETA: f64 = 0.005;

fn scenario_with_local(scale: f64, local: usize) -> Scenario {
    let mut cfg = ScenarioConfig::paper_default();
    cfg.hidden_size = scaled(100_000, scale);
    cfg.local_size = local.min(cfg.hidden_size);
    Scenario::build(cfg)
}

/// Runs Figure 5(a,b,c); writes `results/fig5{a,b,c}.csv`.
pub fn run(scale: f64) {
    // (a) |D| = 100, b = 50 (paper issues 50 queries here).
    let s_a = scenario_with_local(scale, scaled(100, scale.max(0.5)));
    let b_a = (s_a.config.local_size / 2).max(5);
    let curves_a = compare(&s_a, &APPROACHES, b_a, THETA, Matcher::Exact);
    print_curves(
        &format!("Figure 5(a): |D| = {}, coverage vs budget", s_a.config.local_size),
        &curves_a,
    );
    write_csv("results/fig5a.csv", &curves_a).expect("write fig5a");

    // (b) |D| = 1 000, b = 200.
    let s_b = scenario_with_local(scale, scaled(1_000, scale.max(0.5)));
    let b_b = (s_b.config.local_size / 5).max(5);
    let curves_b = compare(&s_b, &APPROACHES, b_b, THETA, Matcher::Exact);
    print_curves(
        &format!("Figure 5(b): |D| = {}, coverage vs budget", s_b.config.local_size),
        &curves_b,
    );
    write_csv("results/fig5b.csv", &curves_b).expect("write fig5b");

    // (c) relative coverage vs |D| at b = 20%·|D|.
    let sizes: Vec<usize> =
        [10usize, 100, 1_000, 10_000].iter().map(|&n| scaled(n, scale.max(0.2))).collect();
    let mut series: Vec<(String, Vec<f64>)> = APPROACHES
        .iter()
        .map(|a| (a.label().to_owned(), Vec::new()))
        .collect();
    for &n in &sizes {
        let s = scenario_with_local(scale, n);
        let b = (n / 5).max(1);
        let curves = compare(&s, &APPROACHES, b, THETA, Matcher::Exact);
        let denom = s.truth.matchable_count().max(1);
        for (i, c) in curves.iter().enumerate() {
            series[i].1.push(100.0 * c.final_coverage() as f64 / denom as f64);
        }
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    print_sweep(
        "Figure 5(c): relative coverage (%) vs |D| at b = 20%|D|",
        "|D|",
        &xs,
        &series,
    );
    write_sweep_csv("results/fig5c.csv", "local_size", &xs, &series).expect("write fig5c");
}
