//! Experiment harness for the SmartCrawl reproduction.
//!
//! One module per figure/table of the paper's evaluation (§7), plus the
//! shared machinery:
//!
//! * [`eval`] — ground-truth coverage/recall curves from crawl reports;
//! * [`harness`] — runs any approach (IdealCrawl, SmartCrawl-B/-U,
//!   QSel-Simple/Bound variants, NaiveCrawl, FullCrawl) over a scenario;
//! * [`table`] — aligned-text and CSV emission;
//! * [`experiments`] — the per-figure parameter sweeps.
//!
//! Each figure has a binary (`cargo run --release -p smartcrawl-bench
//! --bin fig4_sampling_ratio`) that prints the series and writes
//! `results/<figure>.csv`.

pub mod eval;
pub mod experiments;
pub mod harness;
pub mod table;

pub use eval::{coverage_curve, enrichment_precision, recall, Curve};
pub use harness::{
    run_approach, run_approach_cached, run_approach_cached_flaky, run_approach_flaky,
    run_approach_report, Approach, RunOutcome, RunSpec,
};
