//! Runs any of the paper's approaches over a scenario and evaluates the
//! ground-truth coverage curve (Appendix C "Implementation of Different
//! Approaches").

use crate::eval::{coverage_curve, Curve};
use smartcrawl_cache::{CachedInterface, QueryCache};
use smartcrawl_core::crawl::{
    full_crawl_with, ideal_crawl_with, naive_crawl_with, smart_crawl_with, CrawlObserver,
    CrawlReport, IdealCrawlConfig, NullObserver, SmartCrawlConfig,
};
use smartcrawl_core::{
    DeltaRemoval, IndexBackendConfig, LocalDb, PoolConfig, Strategy, TextContext,
};
use smartcrawl_data::Scenario;
use smartcrawl_hidden::{FlakyInterface, Metered, RetryPolicy, SearchInterface};
use smartcrawl_match::Matcher;
use smartcrawl_sampler::{bernoulli_sample, HiddenSample};

/// The crawling approaches compared throughout §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// IdealCrawl: QSel-Ideal with oracle benefits (upper bound).
    Ideal,
    /// SmartCrawl-B: QSel-Est with biased estimators.
    SmartB,
    /// SmartCrawl-U: QSel-Est with unbiased estimators.
    SmartU,
    /// SmartCrawl with QSel-Simple (no sample).
    Simple,
    /// SmartCrawl with QSel-Bound (no sample; no-top-k analysis).
    Bound,
    /// NaiveCrawl baseline.
    Naive,
    /// FullCrawl baseline (uses its own 1% sample, per Appendix C).
    Full,
}

impl Approach {
    /// Display label used in tables and CSV headers.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Ideal => "IdealCrawl",
            Approach::SmartB => "SmartCrawl-B",
            Approach::SmartU => "SmartCrawl-U",
            Approach::Simple => "QSel-Simple",
            Approach::Bound => "QSel-Bound",
            Approach::Naive => "NaiveCrawl",
            Approach::Full => "FullCrawl",
        }
    }
}

/// Parameters of one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Which approach to run.
    pub approach: Approach,
    /// Query budget `b`.
    pub budget: usize,
    /// Budgets at which to report coverage (ascending; last should equal
    /// `budget`).
    pub checkpoints: Vec<usize>,
    /// Sampling ratio θ for SmartCrawl's sample (ignored by others).
    pub theta: f64,
    /// Sampling ratio for FullCrawl's own sample (paper: 1%).
    pub full_theta: f64,
    /// Entity-resolution policy used by the crawler.
    pub matcher: Matcher,
    /// Query-pool generation parameters.
    pub pool: PoolConfig,
    /// ΔD-removal policy for QSel-Est.
    pub delta_removal: DeltaRemoval,
    /// §5.3 overflow-model odds ratio ω (1.0 = paper assumption).
    pub omega: f64,
    /// Seed for sampling and order randomization.
    pub seed: u64,
    /// Pre-built sample overriding `theta` (e.g. from the pool-based
    /// sampler in the Yelp experiment).
    pub sample_override: Option<HiddenSample>,
    /// Index storage backend: RAM-resident (default) or the out-of-core
    /// paged store. Shards are contiguous record-id ranges, so crawl
    /// results are byte-identical either way; only memory residency and
    /// the report's `store` block differ.
    pub backend: IndexBackendConfig,
    /// Crawl-driver pipeline depth (1 = strictly sequential). Depths > 1
    /// overlap speculative hidden-site searches with selection and
    /// matching; results are byte-identical at any depth by construction
    /// (commit-order accounting), so this knob only moves wall-clock and
    /// the report's `pipeline` profile.
    pub pipeline_depth: usize,
}

impl RunSpec {
    /// A spec with the paper's common defaults for the given approach and
    /// budget, with checkpoints every `budget/10`.
    pub fn new(approach: Approach, budget: usize) -> Self {
        let step = (budget / 10).max(1);
        let mut checkpoints: Vec<usize> = (1..=10).map(|i| i * step).collect();
        if checkpoints.last() != Some(&budget) {
            checkpoints.push(budget);
        }
        Self {
            approach,
            budget,
            checkpoints,
            theta: 0.005, // Table 3 default sample ratio 0.5%
            full_theta: 0.01,
            matcher: Matcher::Exact,
            pool: PoolConfig::default(),
            delta_removal: DeltaRemoval::Observed,
            omega: 1.0,
            seed: 0,
            sample_override: None,
            backend: IndexBackendConfig::Ram,
            pipeline_depth: 1,
        }
    }
}

/// A run's full result: the ground-truth coverage curve plus the raw crawl
/// report (for timing/event instrumentation).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Ground-truth coverage at each checkpoint.
    pub curve: Curve,
    /// The raw report with steps, timings, and event counts.
    pub report: CrawlReport,
}

/// Runs `spec` against `scenario` and returns the ground-truth coverage
/// curve.
pub fn run_approach(scenario: &Scenario, spec: &RunSpec) -> Curve {
    run_approach_report(scenario, spec).curve
}

/// Runs every spec against `scenario`, fanning the runs across the thread
/// budget, and returns the outcomes in spec order.
///
/// This is the coarse-grained parallelism level: each run executes on one
/// worker, and the fine-grained `par_*` calls inside pool generation and
/// engine setup automatically degrade to sequential there (single-level
/// fan-out), so a sweep never oversubscribes the machine. Runs are
/// independent simulations, so the outcome vector is identical to running
/// them sequentially.
pub fn run_specs(scenario: &Scenario, specs: &[RunSpec]) -> Vec<RunOutcome> {
    smartcrawl_par::par_map(specs, |spec| run_approach_report(scenario, spec))
}

/// [`run_approach`], also returning the raw crawl report.
pub fn run_approach_report(scenario: &Scenario, spec: &RunSpec) -> RunOutcome {
    let mut iface = Metered::new(&scenario.hidden, Some(spec.budget));
    let report = dispatch(
        scenario,
        spec,
        &mut iface,
        RetryPolicy::none(),
        &mut NullObserver,
    );
    outcome(scenario, spec, report)
}

/// Runs `spec` under seeded fault injection: the metered interface is
/// wrapped in a [`FlakyInterface`] with the given transient-failure rate,
/// and the crawler retries under `retry`. Failures are injected *outside*
/// the meter, so only served queries consume the interface budget.
pub fn run_approach_flaky(
    scenario: &Scenario,
    spec: &RunSpec,
    failure_rate: f64,
    retry: RetryPolicy,
) -> RunOutcome {
    let mut iface = FlakyInterface::new(
        Metered::new(&scenario.hidden, Some(spec.budget)),
        failure_rate,
        spec.seed ^ 0xF1A4,
    );
    let report = dispatch(scenario, spec, &mut iface, retry, &mut NullObserver);
    outcome(scenario, spec, report)
}

/// Runs `spec` with a query-result cache between the crawler and the
/// metered interface. The store is borrowed so sweeps can share one cache
/// across approaches, seeds, and repeats (the warm-start case); pass a
/// fresh `QueryCache` for a cold run. Budget semantics follow the store's
/// [`CachePolicy`](smartcrawl_cache::CachePolicy): hits are free unless
/// `charged_hits` is set.
pub fn run_approach_cached(
    scenario: &Scenario,
    spec: &RunSpec,
    cache: &mut QueryCache,
) -> RunOutcome {
    let mut iface = CachedInterface::new(cache, Metered::new(&scenario.hidden, Some(spec.budget)));
    let report = dispatch(
        scenario,
        spec,
        &mut iface,
        RetryPolicy::none(),
        &mut NullObserver,
    );
    outcome(scenario, spec, report)
}

/// [`run_approach_cached`] under seeded fault injection: the cache wraps
/// the flaky interface, so hits bypass injected failures entirely while
/// misses face them (and retry under `retry`) exactly as in
/// [`run_approach_flaky`].
pub fn run_approach_cached_flaky(
    scenario: &Scenario,
    spec: &RunSpec,
    cache: &mut QueryCache,
    failure_rate: f64,
    retry: RetryPolicy,
) -> RunOutcome {
    let mut iface = CachedInterface::new(
        cache,
        FlakyInterface::new(
            Metered::new(&scenario.hidden, Some(spec.budget)),
            failure_rate,
            spec.seed ^ 0xF1A4,
        ),
    );
    let report = dispatch(scenario, spec, &mut iface, retry, &mut NullObserver);
    outcome(scenario, spec, report)
}

fn outcome(scenario: &Scenario, spec: &RunSpec, report: CrawlReport) -> RunOutcome {
    let curve = coverage_curve(
        spec.approach.label(),
        &report,
        &scenario.truth,
        &spec.checkpoints,
    );
    RunOutcome { curve, report }
}

/// Builds the local database and runs the configured approach against any
/// interface — the single dispatch point every harness entry shares.
fn dispatch<I: SearchInterface>(
    scenario: &Scenario,
    spec: &RunSpec,
    iface: &mut I,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
) -> CrawlReport {
    let mut ctx = TextContext::new();
    let local = LocalDb::build_with(scenario.local.clone(), &mut ctx, &spec.backend)
        .expect("index backend build failed");

    let smart_sample = |theta: f64| -> HiddenSample {
        match &spec.sample_override {
            Some(s) => s.clone(),
            None => bernoulli_sample(&scenario.hidden, theta, spec.seed ^ 0x005A_3B1E),
        }
    };

    // Scoped: the depth applies to exactly this run, so sweeps mixing
    // sequential and pipelined specs can't leak depth across runs.
    let mut report =
        smartcrawl_par::with_pipeline_depth(spec.pipeline_depth, || match spec.approach {
            Approach::Ideal => ideal_crawl_with(
                &local,
                iface,
                &scenario.hidden,
                &IdealCrawlConfig {
                    budget: spec.budget,
                    matcher: spec.matcher,
                    pool: spec.pool,
                },
                retry,
                observer,
                ctx,
            ),
            Approach::SmartB | Approach::SmartU | Approach::Simple | Approach::Bound => {
                let (strategy, sample) = match spec.approach {
                    Approach::SmartB => (
                        Strategy::Est {
                            kind: smartcrawl_core::EstimatorKind::Biased,
                            delta_removal: spec.delta_removal,
                        },
                        smart_sample(spec.theta),
                    ),
                    Approach::SmartU => (
                        Strategy::Est {
                            kind: smartcrawl_core::EstimatorKind::Unbiased,
                            delta_removal: spec.delta_removal,
                        },
                        smart_sample(spec.theta),
                    ),
                    Approach::Simple => (
                        Strategy::Simple,
                        HiddenSample {
                            records: vec![],
                            theta: 0.0,
                        },
                    ),
                    Approach::Bound => (
                        Strategy::Bound,
                        HiddenSample {
                            records: vec![],
                            theta: 0.0,
                        },
                    ),
                    _ => unreachable!(),
                };
                smart_crawl_with(
                    &local,
                    &sample,
                    iface,
                    &SmartCrawlConfig {
                        budget: spec.budget,
                        strategy,
                        matcher: spec.matcher,
                        pool: spec.pool,
                        omega: spec.omega,
                    },
                    retry,
                    observer,
                    ctx,
                )
            }
            Approach::Naive => naive_crawl_with(
                &local,
                iface,
                spec.budget,
                spec.matcher,
                spec.seed,
                retry,
                observer,
                ctx,
            ),
            Approach::Full => {
                let sample =
                    bernoulli_sample(&scenario.hidden, spec.full_theta, spec.seed ^ 0xF011);
                full_crawl_with(
                    &local,
                    &sample,
                    iface,
                    spec.budget,
                    spec.matcher,
                    retry,
                    observer,
                    ctx,
                )
            }
        });
    // Disk runs carry the page-cache residency numbers out through the
    // report; the RAM backend has no store and the field stays None. The
    // stats are schedule-dependent (hit/miss order varies with thread
    // interleaving) and are never folded into result digests.
    report.store = local.store_report();
    report
}

/// FNV-1a over everything result-bearing in a sweep's outcomes: curves,
/// issued queries, returned pages, enrichment pairs, and event tallies.
/// Deliberately excludes timings and store cache statistics — those vary
/// with scheduling — so the digest is the cross-thread-count and
/// cross-backend determinism check.
pub fn digest_outcomes(outcomes: &[RunOutcome]) -> u64 {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            digest = (digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for o in outcomes {
        for (&b, &c) in o.curve.budgets.iter().zip(&o.curve.covered) {
            fold(b as u64);
            fold(c as u64);
        }
        for step in &o.report.steps {
            fold(step.keywords.len() as u64);
            for kw in &step.keywords {
                for b in kw.bytes() {
                    fold(u64::from(b));
                }
            }
            for r in &step.returned {
                fold(r.0);
            }
            fold(u64::from(step.full_page));
        }
        for e in &o.report.enriched {
            fold(e.local as u64);
            fold(e.external.0);
        }
        fold(o.report.records_removed as u64);
        fold(o.report.events.queries_issued as u64);
        fold(o.report.events.matched as u64);
        fold(o.report.events.records_removed as u64);
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_data::ScenarioConfig;

    #[test]
    fn all_approaches_run_on_a_tiny_scenario() {
        let s = smartcrawl_data::Scenario::build(ScenarioConfig::tiny(5));
        for approach in [
            Approach::Ideal,
            Approach::SmartB,
            Approach::SmartU,
            Approach::Simple,
            Approach::Bound,
            Approach::Naive,
            Approach::Full,
        ] {
            let mut spec = RunSpec::new(approach, 15);
            spec.theta = 0.05;
            let curve = run_approach(&s, &spec);
            assert_eq!(curve.label, approach.label());
            assert!(curve.final_coverage() <= s.truth.matchable_count());
            // Monotone non-decreasing.
            assert!(curve.covered.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn report_events_and_timings_are_populated() {
        let s = smartcrawl_data::Scenario::build(ScenarioConfig::tiny(7));
        let mut spec = RunSpec::new(Approach::SmartB, 15);
        spec.theta = 0.05;
        let out = run_approach_report(&s, &spec);
        let report = &out.report;
        // Event tallies must agree with the report's own bookkeeping.
        assert_eq!(report.events.queries_issued, report.queries_issued());
        assert_eq!(report.events.pages_received, report.queries_issued());
        assert_eq!(report.events.matched, report.covered_claimed());
        assert_eq!(report.events.records_removed, report.records_removed);
        assert_eq!(report.events.retries, 0);
        // Enough queries ran that the measured phases cannot all be zero.
        if report.queries_issued() >= 5 {
            assert!(report.timing.total_ns() > 0, "timing: {:?}", report.timing);
        }
    }

    #[test]
    fn flaky_run_with_retries_matches_clean_coverage() {
        // The acceptance demo: SmartCrawl under 20% seeded transient
        // failures, with the standard retry policy, ends within noise of
        // the failure-free run.
        let s = smartcrawl_data::Scenario::build(ScenarioConfig::tiny(8));
        let mut spec = RunSpec::new(Approach::SmartB, 20);
        spec.theta = 0.05;
        let clean = run_approach_report(&s, &spec);
        let flaky = run_approach_flaky(&s, &spec, 0.2, RetryPolicy::standard());
        assert!(flaky.report.events.retries > 0, "20% flakiness must retry");
        assert!(flaky.report.timing.backoff_ticks > 0);
        // Retried queries are re-issued verbatim against a deterministic
        // simulator, so the flaky run's served-query sequence is the clean
        // run's, truncated by whatever budget the failed attempts burned:
        // its coverage must match the clean run's at the same served count
        // (±1 for the rare query dropped after exhausting its retries).
        let served = flaky.report.queries_issued();
        assert!(served < spec.budget, "failed attempts must burn budget");
        let clean_at_served =
            crate::eval::coverage_curve("", &clean.report, &s.truth, &[served.max(1)])
                .final_coverage() as i64;
        let flaky_cov = flaky.curve.final_coverage() as i64;
        assert!(
            (flaky_cov - clean_at_served).abs() <= 1,
            "flaky coverage {flaky_cov} vs clean-at-{served} {clean_at_served}"
        );
    }

    #[test]
    fn disk_backend_reproduces_ram_results_exactly() {
        // The store acceptance check at harness level: the same sweep run
        // on the RAM index and on the paged disk store must digest
        // identically — shards are contiguous record ranges, so the merge
        // is the sorted match set either way.
        let s = smartcrawl_data::Scenario::build(ScenarioConfig::tiny(11));
        let specs: Vec<RunSpec> = [Approach::SmartB, Approach::Bound, Approach::Full]
            .into_iter()
            .map(|a| {
                let mut spec = RunSpec::new(a, 12);
                spec.theta = 0.05;
                spec
            })
            .collect();
        let ram = digest_outcomes(&run_specs(&s, &specs));
        let disk_specs: Vec<RunSpec> = specs
            .iter()
            .map(|spec| {
                let mut d = spec.clone();
                // A deliberately tiny cache so eviction paths run in-test.
                d.backend = IndexBackendConfig::Disk(smartcrawl_core::StoreConfig {
                    page_size: 256,
                    cache_pages: 8,
                    shards: 3,
                    ..Default::default()
                });
                d
            })
            .collect();
        let disk_outcomes = run_specs(&s, &disk_specs);
        assert_eq!(
            ram,
            digest_outcomes(&disk_outcomes),
            "disk backend diverged from RAM"
        );
        // Every disk run reports its store; the sweep as a whole must
        // have gone to disk (an individual approach may never probe the
        // inverted index, e.g. a pool-free baseline with exact matching).
        let misses: u64 = disk_outcomes
            .iter()
            .map(|o| {
                o.report
                    .store
                    .as_ref()
                    .expect("disk runs report store stats")
                    .stats
                    .misses
            })
            .sum();
        assert!(misses > 0, "pages must have been read from disk");
    }

    #[test]
    fn smart_b_beats_naive_on_small_budget() {
        let mut cfg = ScenarioConfig::tiny(6);
        cfg.local_size = 120;
        cfg.delta_d = 0;
        cfg.hidden_size = 600;
        cfg.k = 20;
        let s = smartcrawl_data::Scenario::build(cfg);
        let budget = 24; // 20% of |D|
        let mut spec_b = RunSpec::new(Approach::SmartB, budget);
        spec_b.theta = 0.05;
        let smart = run_approach(&s, &spec_b).final_coverage();
        let naive = run_approach(&s, &RunSpec::new(Approach::Naive, budget)).final_coverage();
        assert!(
            smart > naive,
            "query sharing should dominate: smart {smart} vs naive {naive}"
        );
    }
}
