//! Property tests for the benefit estimators (Table 1 + §6.2 + §5.3):
//! numeric hygiene and the bounds every estimate must respect.

use proptest::prelude::*;
use smartcrawl_core::{fisher_nch_mean, Estimator, EstimatorKind};

fn estimator_strategy() -> impl Strategy<Value = (Estimator, usize)> {
    (
        prop_oneof![Just(EstimatorKind::Biased), Just(EstimatorKind::Unbiased)],
        1usize..500,                       // k
        prop_oneof![Just(0.0f64), 0.001f64..0.2], // theta
        1usize..20_000,                    // |D|
        0usize..2_000,                     // |Hs|
        prop_oneof![Just(1.0f64), 0.25f64..8.0], // omega
    )
        .prop_map(|(kind, k, theta, d, hs, omega)| {
            let theta = if hs == 0 { 0.0 } else { theta };
            (Estimator::new(kind, k, theta, d, hs).with_omega(omega), k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn benefits_are_finite_nonnegative_and_bounded(
        (est, k) in estimator_strategy(),
        freq_d in 0usize..5_000,
        freq_hs in 0usize..500,
        inter_frac in 0.0f64..=1.0,
    ) {
        let inter = ((freq_d as f64) * inter_frac) as usize;
        let b = est.benefit(freq_d, freq_hs, inter);
        prop_assert!(b.is_finite(), "benefit must be finite");
        prop_assert!(b >= 0.0, "benefit must be non-negative");
        // No query can cover more than k records; the biased *solid*
        // estimator |q(D)| is the paper's deliberate exception (it ignores
        // the cap; Table 1), so only check the overflow branches.
        use smartcrawl_core::estimate::QueryType;
        if est.predict_type(freq_d, freq_hs) == QueryType::Overflowing {
            prop_assert!(
                b <= k as f64 + 1e-9,
                "overflow benefit {b} exceeds k = {k}"
            );
        }
    }

    #[test]
    fn biased_benefit_monotone_under_removals(
        (est, _k) in estimator_strategy(),
        freq_d in 1usize..2_000,
        freq_hs in 0usize..300,
    ) {
        // As records are removed (freq_d decreases, inter ≤ freq_d), the
        // biased benefit never increases — required by the lazy queue's
        // upper-bound property.
        let b_hi = est.benefit(freq_d, freq_hs, 0);
        let b_lo = est.benefit(freq_d - (freq_d / 2), freq_hs, 0);
        if est.kind() == EstimatorKind::Biased {
            prop_assert!(b_lo <= b_hi + 1e-9, "{b_lo} > {b_hi}");
        }
    }

    #[test]
    fn fisher_mean_is_bounded_by_support(
        m1 in 0usize..200,
        m2 in 0usize..200,
        n_frac in 0.0f64..=1.0,
        omega in 0.05f64..20.0,
    ) {
        let n = (((m1 + m2) as f64) * n_frac) as usize;
        let mean = fisher_nch_mean(m1, m2, n, omega);
        let lo = n.saturating_sub(m2) as f64;
        let hi = n.min(m1) as f64;
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "{mean} outside [{lo}, {hi}]");
    }

    #[test]
    fn fisher_mean_omega_one_matches_closed_form(
        m1 in 1usize..300,
        m2 in 1usize..300,
        n_frac in 0.0f64..=1.0,
    ) {
        let n = (((m1 + m2) as f64) * n_frac) as usize;
        let mean = fisher_nch_mean(m1, m2, n, 1.0);
        let expect = n as f64 * m1 as f64 / (m1 + m2) as f64;
        prop_assert!((mean - expect).abs() < 1e-6, "{mean} vs {expect}");
    }
}
