//! Property tests of the full SmartCrawl engine over randomized scenarios:
//! invariants that must hold for every strategy, matcher, budget and seed.

use proptest::prelude::*;
use smartcrawl_core::{
    crawl::{smart_crawl, SmartCrawlConfig},
    LocalDb, PoolConfig, TextContext,
};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::Metered;
use smartcrawl_hidden::SearchInterface;
use smartcrawl_match::Matcher;
use smartcrawl_sampler::bernoulli_sample;

fn strategy_strategy() -> impl Strategy<Value = smartcrawl_core::Strategy> {
    prop_oneof![
        Just(smartcrawl_core::Strategy::Simple),
        Just(smartcrawl_core::Strategy::Bound),
        Just(smartcrawl_core::Strategy::est_biased()),
        Just(smartcrawl_core::Strategy::est_unbiased()),
    ]
}

fn matcher_strategy() -> impl Strategy<Value = Matcher> {
    prop_oneof![
        Just(Matcher::Exact),
        Just(Matcher::Jaccard { threshold: 0.9 }),
        Just(Matcher::Jaccard { threshold: 0.7 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crawl_invariants_hold_on_random_worlds(
        seed in 0u64..1000,
        budget in 1usize..40,
        strategy in strategy_strategy(),
        matcher in matcher_strategy(),
        delta_d in 0usize..10,
        error_pct in prop_oneof![Just(0.0f64), Just(0.2f64)],
    ) {
        let mut cfg = ScenarioConfig::tiny(seed);
        cfg.local_size = 50;
        cfg.hidden_size = 250;
        cfg.delta_d = delta_d;
        cfg.error_pct = error_pct;
        cfg.k = 8;
        let s = Scenario::build(cfg);

        let mut ctx = TextContext::new();
        let local = LocalDb::build(s.local.clone(), &mut ctx);
        let sample = bernoulli_sample(&s.hidden, 0.05, seed);
        let mut iface = Metered::new(&s.hidden, Some(budget));
        let report = smart_crawl(
            &local,
            &sample,
            &mut iface,
            &SmartCrawlConfig {
                budget,
                strategy,
                matcher,
                pool: PoolConfig { min_support: 2, max_len: 2, seed },
                omega: 1.0,
            },
            ctx,
        );

        // 1. Budget discipline: never exceed either budget view.
        prop_assert!(report.queries_issued() <= budget);
        prop_assert_eq!(report.queries_issued(), iface.queries_issued());

        // 2. Enrichment assignments are unique per local record.
        let mut locals: Vec<usize> = report.enriched.iter().map(|p| p.local).collect();
        let before = locals.len();
        locals.sort_unstable();
        locals.dedup();
        prop_assert_eq!(locals.len(), before, "a record was enriched twice");

        // 3. Every enriched pair's hidden record was actually returned by
        //    some step, and the matcher really matches the pair.
        let crawled: std::collections::HashSet<_> =
            report.steps.iter().flat_map(|st| st.returned.iter().copied()).collect();
        let mut check_ctx = TextContext::new();
        let check_local = LocalDb::build(s.local.clone(), &mut check_ctx);
        for pair in &report.enriched {
            prop_assert!(crawled.contains(&pair.external));
            let hidden_rec = s.hidden.get(pair.external).expect("returned record exists");
            let hdoc = check_ctx.doc_of_fields(hidden_rec.searchable.fields());
            prop_assert!(
                matcher.matches(check_local.doc(pair.local), &hdoc),
                "claimed pair does not satisfy the matcher"
            );
        }

        // 4. Claimed coverage never exceeds |D|, removals never exceed |D|.
        prop_assert!(report.covered_claimed() <= s.local.len());
        prop_assert!(report.records_removed <= s.local.len());

        // 5. Steps never return more than k records.
        for st in &report.steps {
            prop_assert!(st.returned.len() <= 8);
            prop_assert_eq!(st.full_page, st.returned.len() >= 8);
            prop_assert!(!st.keywords.is_empty());
        }
    }

    #[test]
    fn more_budget_never_hurts(
        seed in 0u64..200,
        strategy in strategy_strategy(),
    ) {
        let mut cfg = ScenarioConfig::tiny(seed);
        cfg.local_size = 40;
        cfg.hidden_size = 200;
        cfg.delta_d = 4;
        cfg.k = 6;
        let s = Scenario::build(cfg);
        let run = |budget: usize| {
            let mut ctx = TextContext::new();
            let local = LocalDb::build(s.local.clone(), &mut ctx);
            let sample = bernoulli_sample(&s.hidden, 0.05, seed);
            let mut iface = Metered::new(&s.hidden, Some(budget));
            smart_crawl(
                &local,
                &sample,
                &mut iface,
                &SmartCrawlConfig {
                    budget,
                    strategy,
                    matcher: Matcher::Exact,
                    pool: PoolConfig { min_support: 2, max_len: 2, seed },
                    omega: 1.0,
                },
                ctx,
            )
            .covered_claimed()
        };
        // Deterministic engine: a prefix of the same run ⇒ monotone.
        prop_assert!(run(5) <= run(15));
        prop_assert!(run(15) <= run(30));
    }
}
