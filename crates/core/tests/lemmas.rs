//! Theoretical claims of the paper, checked empirically on randomized
//! instances:
//!
//! * **Lemma 1** — under Assumptions 1–3 (full coverage, no top-k, exact
//!   matching) QSel-Simple and QSel-Ideal are equivalent.
//! * **Lemma 2** — QSel-Bound covers at least `(1 − |ΔD|/b) · N_ideal`.
//! * **Lemma 3** — `|q(D) ∩ q(Hs)|/θ` is an unbiased estimator of
//!   `|q(D) ∩ q(H)|` for solid queries (Monte-Carlo over Bernoulli
//!   samples).
//! * **§5.3 ball model** — the expected number of covered records of an
//!   overflowing query is `n·k/N` under a random-draw assumption
//!   (hypergeometric mean).

use smartcrawl_core::{
    crawl::{ideal_crawl, smart_crawl, IdealCrawlConfig, SmartCrawlConfig},
    LocalDb, PoolConfig, Strategy, TextContext,
};
use smartcrawl_data::{Scenario, ScenarioConfig};
use smartcrawl_hidden::Metered;
use smartcrawl_match::Matcher;
use smartcrawl_sampler::{bernoulli_sample, HiddenSample};

fn no_topk_config(seed: u64, delta_d: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::tiny(seed);
    cfg.local_size = 60;
    cfg.delta_d = delta_d;
    cfg.hidden_size = 300;
    // Assumption 2: no top-k constraint — make k as large as |H| so no
    // query can overflow.
    cfg.k = 300;
    cfg
}

fn run_strategy(s: &Scenario, strategy: Strategy, budget: usize) -> usize {
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);
    let pool = PoolConfig { min_support: 2, max_len: 2, seed: 77 };
    let mut iface = Metered::new(&s.hidden, None);
    let empty_sample = HiddenSample { records: vec![], theta: 0.0 };
    let report = smart_crawl(
        &local,
        &empty_sample,
        &mut iface,
        &SmartCrawlConfig { budget, strategy, matcher: Matcher::Exact, pool, omega: 1.0 },
        ctx,
    );
    report.covered_claimed()
}

fn run_ideal(s: &Scenario, budget: usize) -> usize {
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);
    let pool = PoolConfig { min_support: 2, max_len: 2, seed: 77 };
    let mut iface = Metered::new(&s.hidden, None);
    let report = ideal_crawl(
        &local,
        &mut iface,
        &s.hidden,
        &IdealCrawlConfig { budget, matcher: Matcher::Exact, pool },
        ctx,
    );
    report.covered_claimed()
}

#[test]
fn lemma_1_simple_equals_ideal_under_assumptions() {
    for seed in 0..6u64 {
        let s = Scenario::build(no_topk_config(seed, 0)); // Assumption 1: ΔD = ∅
        for budget in [3usize, 8, 15] {
            let n_simple = run_strategy(&s, Strategy::Simple, budget);
            let n_ideal = run_ideal(&s, budget);
            assert_eq!(
                n_simple, n_ideal,
                "seed {seed} budget {budget}: simple {n_simple} vs ideal {n_ideal}"
            );
        }
    }
}

#[test]
fn lemma_2_bound_guarantee() {
    for seed in 0..6u64 {
        let delta_d = 6usize;
        let s = Scenario::build(no_topk_config(seed, delta_d));
        for budget in [10usize, 20, 30] {
            let n_bound = run_strategy(&s, Strategy::Bound, budget);
            let n_ideal = run_ideal(&s, budget);
            let floor = (1.0 - delta_d as f64 / budget as f64) * n_ideal as f64;
            assert!(
                n_bound as f64 >= floor - 1e-9,
                "seed {seed} budget {budget}: bound {n_bound} < floor {floor} (ideal {n_ideal})"
            );
        }
    }
}

#[test]
fn bound_never_beats_ideal() {
    for seed in 0..4u64 {
        let s = Scenario::build(no_topk_config(seed, 4));
        let b = 15;
        assert!(run_strategy(&s, Strategy::Bound, b) <= run_ideal(&s, b));
    }
}

#[test]
fn lemma_3_solid_estimator_is_unbiased() {
    // Construct a scenario, pick the statistic |q(D) ∩ q(Hs)|/θ for a
    // fixed single-keyword query, and average over many Bernoulli samples:
    // the mean must approach |q(D) ∩ q(H)| (here: the number of matchable
    // local records containing the keyword, since D ⊆ H textually).
    let mut cfg = ScenarioConfig::tiny(3);
    cfg.delta_d = 0;
    cfg.local_size = 100;
    cfg.hidden_size = 400;
    let s = Scenario::build(cfg);
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);

    // Pick the most frequent local keyword as the probe query.
    let (token, _) = (0..ctx.vocab.len())
        .map(|t| {
            let tid = smartcrawl_text::TokenId(t as u32);
            (tid, local.index().doc_frequency(tid))
        })
        .max_by_key(|&(_, df)| df)
        .unwrap();
    let _keyword = ctx.vocab.word(token); // probe keyword, for debugging

    // Ground truth |q(D) ∩ q(H)|: local records containing the keyword
    // whose exact text also exists in H (all matchable records here).
    let truth = (0..local.len())
        .filter(|&i| local.doc(i).contains(token))
        .filter(|&i| s.truth.local_has_match(i))
        .count() as f64;
    assert!(truth >= 3.0, "probe keyword too rare for a stable test");

    let theta = 0.25;
    let trials = 600;
    let mut sum = 0.0;
    for seed in 0..trials {
        let sample = bernoulli_sample(&s.hidden, theta, 1_000 + seed);
        let sample_idx = smartcrawl_core::SampleIndex::build(&sample, &mut ctx);
        // |q(D) ∩̃ q(Hs)| — count local keyword-records matched in-sample.
        let matched = sample_idx.local_matches(&local, Matcher::Exact);
        let inter = (0..local.len())
            .filter(|&i| local.doc(i).contains(token) && matched[i])
            .count() as f64;
        sum += inter / theta;
    }
    let mean = sum / trials as f64;
    let rel_err = (mean - truth).abs() / truth;
    assert!(rel_err < 0.08, "mean {mean} vs truth {truth} (rel err {rel_err})");
}

#[test]
fn overflow_ball_model_expectation() {
    // §5.3: draw n of N balls without replacement, first k are black;
    // E[black in draw] = n·k/N. Validate the model the overflow estimators
    // rest on, with our own RNG machinery.
    use rand::seq::index::sample as index_sample;
    use rand::{rngs::StdRng, SeedableRng};
    let (n_total, k, n_draw) = (40usize, 12usize, 15usize);
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 20_000;
    let mut sum = 0usize;
    for _ in 0..trials {
        let draw = index_sample(&mut rng, n_total, n_draw);
        sum += draw.iter().filter(|&i| i < k).count();
    }
    let mean = sum as f64 / trials as f64;
    let expect = n_draw as f64 * k as f64 / n_total as f64; // 4.5
    assert!((mean - expect).abs() < 0.08, "mean {mean} expect {expect}");
}

#[test]
fn estimated_benefit_tracks_true_benefit_direction() {
    // Weak-form sanity: across pool queries, the biased estimate should
    // correlate positively with the true benefit (Spearman-style sign
    // check on aggregate).
    let mut cfg = ScenarioConfig::tiny(9);
    cfg.k = 10;
    cfg.local_size = 80;
    cfg.delta_d = 0;
    let s = Scenario::build(cfg);
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);
    let sample = bernoulli_sample(&s.hidden, 0.2, 5);
    let sample_idx = smartcrawl_core::SampleIndex::build(&sample, &mut ctx);
    let est = smartcrawl_core::Estimator::new(
        smartcrawl_core::EstimatorKind::Biased,
        10,
        sample_idx.theta(),
        local.len(),
        sample_idx.len(),
    );
    let pool = smartcrawl_core::QueryPool::generate(
        &local,
        &PoolConfig { min_support: 2, max_len: 2, seed: 1 },
    );
    let matched = sample_idx.local_matches(&local, Matcher::Exact);
    let mut high_est_benefit = 0.0;
    let mut low_est_benefit = 0.0;
    let mut highs = 0.0;
    let mut lows = 0.0;
    for (i, q) in pool.queries().iter().enumerate() {
        let qid = smartcrawl_index::QueryId(i as u32);
        let freq_d = pool.matches(qid).len();
        let freq_hs = sample_idx.frequency(q.tokens());
        let inter =
            pool.matches(qid).iter().filter(|r| matched[r.index()]).count();
        let estimate = est.benefit(freq_d, freq_hs, inter);
        // True benefit by issuing the query for free.
        let page = s.hidden.search(&q.render(&ctx));
        let mut truth = 0usize;
        for r in &page {
            let rdoc = ctx.doc_of_fields(&r.fields[..]);
            truth += (0..local.len()).filter(|&d| local.doc(d) == &rdoc).count();
        }
        if estimate >= 2.0 {
            high_est_benefit += truth as f64;
            highs += 1.0;
        } else {
            low_est_benefit += truth as f64;
            lows += 1.0;
        }
    }
    assert!(highs >= 3.0 && lows >= 3.0, "degenerate split: {highs} vs {lows}");
    assert!(
        high_est_benefit / highs > low_est_benefit / lows,
        "estimates do not separate true benefits: high {high_est_benefit}/{highs}, low {low_est_benefit}/{lows}"
    );
}

#[test]
fn appendix_b_lazy_selection_does_sublinear_work() {
    // The naive implementation recomputes |Q| priorities per iteration;
    // the §6.3 machinery must recompute only a small fraction. Measure the
    // instrumented counters on a mid-size run.
    let mut cfg = ScenarioConfig::tiny(13);
    cfg.local_size = 400;
    cfg.hidden_size = 2_000;
    cfg.delta_d = 0;
    cfg.k = 20;
    let s = Scenario::build(cfg);
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);
    let pool_cfg = PoolConfig { min_support: 2, max_len: 2, seed: 3 };
    let pool_size = smartcrawl_core::QueryPool::generate(&local, &pool_cfg).len();
    let sample = bernoulli_sample(&s.hidden, 0.02, 3);
    let budget = 80;
    let mut iface = Metered::new(&s.hidden, Some(budget));
    let report = smart_crawl(
        &local,
        &sample,
        &mut iface,
        &SmartCrawlConfig {
            budget,
            strategy: Strategy::est_biased(),
            matcher: Matcher::Exact,
            pool: pool_cfg,
            omega: 1.0,
        },
        ctx,
    );
    let stats = report.selection;
    let naive_work = pool_size * report.queries_issued();
    assert!(stats.pops >= report.queries_issued());
    assert!(
        stats.stale_recomputes * 4 < naive_work,
        "lazy selection did {} recomputes vs naive {} (pool {} × {} queries)",
        stats.stale_recomputes,
        naive_work,
        pool_size,
        report.queries_issued()
    );
    assert!(stats.forward_touches > 0, "removals must flow through the forward index");
}

#[test]
fn lemma_6_unbiasedness_survives_fuzzy_matching() {
    // Lemma 6: with |q(D) ∩̃ q(Hs)| counting *fuzzy* matched pairs, the
    // solid estimator stays unbiased. World: every matchable local record
    // drifted on the hidden side (one word changed), matched at Jaccard
    // ≥ 0.75 over address-bearing business records.
    let mut cfg = ScenarioConfig::tiny(17);
    cfg.domain = smartcrawl_data::Domain::Businesses;
    cfg.local_size = 120;
    cfg.hidden_size = 500;
    cfg.delta_d = 0;
    cfg.drift_pct = 1.0; // every hidden twin drifted
    let s = Scenario::build(cfg);
    let matcher = Matcher::Jaccard { threshold: 0.75 };
    let mut ctx = TextContext::new();
    let local = LocalDb::build(s.local.clone(), &mut ctx);

    // Probe query: the most frequent local keyword.
    let (token, _) = (0..ctx.vocab.len())
        .map(|t| {
            let tid = smartcrawl_text::TokenId(t as u32);
            (tid, local.index().doc_frequency(tid))
        })
        .max_by_key(|&(_, df)| df)
        .unwrap();

    // Ground truth |q(D) ∩̃ q(H)|: matched pairs where the local record
    // contains the token (computed against the full hidden database with
    // the same fuzzy matcher).
    let full_sample = smartcrawl_sampler::HiddenSample {
        records: s
            .hidden
            .iter()
            .map(|r| {
                smartcrawl_hidden::Retrieved::new(
                    r.external_id,
                    r.searchable.fields().to_vec(),
                    vec![],
                )
            })
            .collect(),
        theta: 1.0,
    };
    let full_index = smartcrawl_core::SampleIndex::build(&full_sample, &mut ctx);
    let matched_full = full_index.local_matches(&local, matcher);
    let truth = (0..local.len())
        .filter(|&i| local.doc(i).contains(token) && matched_full[i])
        .count() as f64;
    assert!(truth >= 5.0, "probe keyword too rare ({truth})");

    let theta = 0.3;
    let trials = 400;
    let mut sum = 0.0;
    for seed in 0..trials {
        let sample = bernoulli_sample(&s.hidden, theta, 40_000 + seed);
        let idx = smartcrawl_core::SampleIndex::build(&sample, &mut ctx);
        let matched = idx.local_matches(&local, matcher);
        let inter = (0..local.len())
            .filter(|&i| local.doc(i).contains(token) && matched[i])
            .count() as f64;
        sum += inter / theta;
    }
    let mean = sum / trials as f64;
    let rel_err = (mean - truth).abs() / truth;
    assert!(rel_err < 0.10, "mean {mean} vs truth {truth} (rel err {rel_err})");
}
