//! The paper's running example (Figure 1, Examples 1–6, Table 2), as a
//! hand-checked fixture.
//!
//! The published figure is not fully recoverable from the text (the OCR
//! of Figure 1 is partial and Table 2's estimate for q6 does not satisfy
//! the paper's own Equation 12 — see DESIGN.md §7), so this module builds
//! a *consistent* instance with the same parameters (k = 2, θ = 1/3, a
//! 4-record local database, a 9-record hidden database, the sample
//! {"Thai House", "Steak House", "Ramen Bar"}) and asserts every estimator
//! value and true benefit computed by hand.

use crate::context::TextContext;
use crate::crawl::{ideal_crawl, smart_crawl, IdealCrawlConfig, SmartCrawlConfig};
use crate::estimate::{Estimator, EstimatorKind, QueryType};
use crate::local::LocalDb;
use crate::pool::PoolConfig;
use crate::select::Strategy;
use smartcrawl_hidden::{ExternalId, HiddenDb, HiddenDbBuilder, HiddenRecord, Metered, Retrieved};
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;
use smartcrawl_text::Record;

/// k = 2 throughout the running example.
const K: usize = 2;
/// θ = 1/3 (3 of 9 hidden records sampled).
const THETA: f64 = 1.0 / 3.0;

fn local_db(ctx: &mut TextContext) -> LocalDb {
    LocalDb::build(
        vec![
            Record::from(["Thai Noodle House"]),  // d1
            Record::from(["Jade Noodle House"]),  // d2
            Record::from(["Thai House"]),         // d3
            Record::from(["Thai Noodle Express"]), // d4
        ],
        ctx,
    )
}

fn hidden_db() -> HiddenDb {
    // Signals give the ranking h1 > h2 > … > h9.
    let names = [
        "Thai Noodle House",   // h1 (= d1)
        "Jade Noodle House",   // h2 (= d2)
        "Thai House",          // h3 (= d3)
        "Thai Noodle Express", // h4 (= d4)
        "Steak House",         // h5
        "Ramen Bar",           // h6
        "Noodle World",        // h7
        "Thai Palace",         // h8
        "House of Curry",      // h9
    ];
    HiddenDbBuilder::new()
        .k(K)
        .records(names.iter().enumerate().map(|(i, &n)| {
            HiddenRecord::new(i as u64, Record::from([n]), vec![format!("{}.0", 5 - i / 2)], (9 - i) as f64)
        }))
        .build()
}

/// The Figure 1(b) sample: h3, h5, h6.
fn sample() -> HiddenSample {
    let fields = ["Thai House", "Steak House", "Ramen Bar"];
    HiddenSample {
        records: fields
            .iter()
            .enumerate()
            .map(|(i, &f)| Retrieved::new(ExternalId([2u64, 4, 5][i]), vec![f.to_owned()], vec![]))
            .collect(),
        theta: THETA,
    }
}

#[test]
fn example_1_keyword_search_semantics() {
    let h = hidden_db();
    // q5 = "House": q5(H) = {h1, h2, h3, h5, h9}, |q5(H)| = 5 > k = 2,
    // so the top-2 by ranking come back: h1, h2.
    assert_eq!(h.true_frequency(&["house".into()]), 5);
    let page = h.search(&["house".into()]);
    let ids: Vec<u64> = page.iter().map(|r| r.external_id.0).collect();
    assert_eq!(ids, vec![0, 1]);
    // q7 = "Noodle House" is solid: q7(H) = {h1, h2}.
    assert_eq!(h.true_frequency(&["noodle".into(), "house".into()]), 2);
    assert_eq!(h.search(&["noodle".into(), "house".into()]).len(), 2);
}

#[test]
fn example_3_query_type_prediction() {
    // α = θ|D|/|Hs| = (1/3)·4/3 = 4/9.
    let est = Estimator::new(EstimatorKind::Biased, K, THETA, 4, 3);
    assert!((est.alpha() - 4.0 / 9.0).abs() < 1e-12);
    // q5 = "house": |q5(Hs)| = 2 (Thai House, Steak House) ⇒ 2/θ = 6 > 2
    // ⇒ overflowing (matches the paper's Example 3).
    assert_eq!(est.predict_type(3, 2), QueryType::Overflowing);
    // q6 = "thai": |q6(Hs)| = 1 ⇒ 3 > 2 ⇒ overflowing (paper agrees).
    assert_eq!(est.predict_type(3, 1), QueryType::Overflowing);
    // q7 = "noodle house": |q7(Hs)| = 0. The paper's Example 3 (sample
    // rule only) says solid; the §6.2 α-rule used by QSel-Est refines it
    // to overflowing because |q7(D)|/α = 2/(4/9) = 4.5 > 2.
    assert_eq!(est.predict_type(2, 0), QueryType::Overflowing);
}

#[test]
fn table_2_biased_estimates() {
    let est = Estimator::new(EstimatorKind::Biased, K, THETA, 4, 3);
    // q5 = "house": |q(D)| = 3, |q(Hs)| = 2 ⇒ 3·(2·θ)/2 = 1 (paper: 1 ✓).
    assert!((est.benefit(3, 2, 1) - 1.0).abs() < 1e-12);
    // q6 = "thai": |q(D)| = 3, |q(Hs)| = 1 ⇒ 3·(2·θ)/1 = 2 (paper: 2 ✓).
    assert!((est.benefit(3, 1, 1) - 2.0).abs() < 1e-12);
    // "thai house": |q(D)| = 2, |q(Hs)| = 1 ⇒ 2·(2·θ)/1 = 4/3 (the paper's
    // q3 with |q(D)| = 1 gives 2/3 — same formula, our instance has two
    // matching locals).
    assert!((est.benefit(2, 1, 1) - 4.0 / 3.0).abs() < 1e-12);
    // q7 = "noodle house": |q(Hs)| = 0 ⇒ α-fallback k·α = 8/9.
    assert!((est.benefit(2, 0, 0) - 8.0 / 9.0).abs() < 1e-12);
}

#[test]
fn example_4_unbiased_overflow_estimate() {
    let est = Estimator::new(EstimatorKind::Unbiased, K, THETA, 4, 3);
    // "thai house": one matched pair in the sample (d3 ↔ h3), |q(Hs)| = 1:
    // benefit = 1 · k/|q(Hs)| = 2. True benefit on our instance is 2
    // (top-2 of {h1, h3} covers d1 and d3) — paper's instance had 1.
    assert!((est.benefit(2, 1, 1) - 2.0).abs() < 1e-12);
}

#[test]
fn true_benefits_by_hand() {
    let h = hidden_db();
    let mut ctx = TextContext::new();
    let local = local_db(&mut ctx);
    // Cover sets under exact matching, k = 2, ranking h1 > … > h9:
    //   "house"         → page {h1, h2} → covers {d1, d2} (benefit 2)
    //   "thai"          → page {h1, h3} → covers {d1, d3} (benefit 2)
    //   "noodle house"  → page {h1, h2} → covers {d1, d2} (benefit 2)
    //   "thai house"    → page {h1, h3} → covers {d1, d3} (benefit 2)
    //   naive d4        → page {h4}     → covers {d4}     (benefit 1)
    let mut cover = |kw: &[&str]| -> Vec<usize> {
        let page = h.search(&kw.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let mut covered: Vec<usize> = page
            .iter()
            .filter_map(|r| {
                let rdoc = ctx.doc_of_fields(&r.fields[..]);
                (0..local.len()).find(|&i| local.doc(i) == &rdoc)
            })
            .collect();
        covered.sort_unstable();
        covered
    };
    assert_eq!(cover(&["house"]), vec![0, 1]);
    assert_eq!(cover(&["thai"]), vec![0, 2]);
    assert_eq!(cover(&["noodle", "house"]), vec![0, 1]);
    assert_eq!(cover(&["thai", "house"]), vec![0, 2]);
    assert_eq!(cover(&["thai", "noodle", "express"]), vec![3]);
}

#[test]
fn example_6_budget_two_crawl() {
    // With b = 2 and the biased estimator, the engine first issues "thai"
    // (estimate 2, the unique maximum), covering d1 and d3; the second
    // query (an 8/9-tie) covers one more record. Total claimed = 3.
    let mut ctx = TextContext::new();
    let local = local_db(&mut ctx);
    let h = hidden_db();
    let mut iface = Metered::new(&h, None);
    let cfg = SmartCrawlConfig {
        budget: 2,
        strategy: Strategy::est_biased(),
        matcher: Matcher::Exact,
        pool: PoolConfig { min_support: 2, max_len: 2, seed: 11 },
        omega: 1.0,
    };
    let report = smart_crawl(&local, &sample(), &mut iface, &cfg, ctx);
    let mut first = report.steps[0].keywords.clone();
    first.sort();
    assert_eq!(first, vec!["thai".to_owned()]);
    assert_eq!(report.covered_claimed(), 3);
}

#[test]
fn ideal_crawl_reaches_the_optimum() {
    // No two queries in the pool cover all four records (cover sets are
    // {d1,d2}, {d1,d3} and singletons), so the optimum for b = 2 is 3 —
    // and QSel-Ideal attains it.
    let mut ctx = TextContext::new();
    let local = local_db(&mut ctx);
    let h = hidden_db();
    let mut iface = Metered::new(&h, None);
    let cfg = IdealCrawlConfig {
        budget: 2,
        matcher: Matcher::Exact,
        pool: PoolConfig { min_support: 2, max_len: 2, seed: 11 },
    };
    let report = ideal_crawl(&local, &mut iface, &h, &cfg, ctx);
    assert_eq!(report.covered_claimed(), 3);
}
