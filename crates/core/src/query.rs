//! Keyword queries.
//!
//! A query is a *set* of keywords (paper §2); internally a sorted list of
//! token ids in the crawl's shared vocabulary. Rendering turns it back into
//! the keyword strings actually sent through a search interface.

use crate::context::TextContext;
use smartcrawl_text::{Document, TokenId};

/// A conjunctive keyword query: a sorted set of tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    tokens: Vec<TokenId>,
}

impl Query {
    /// Builds a query from tokens (sorted + deduplicated).
    ///
    /// # Panics
    /// Panics if `tokens` is empty: the empty query is meaningless
    /// (`|q(D)| = 0` queries never enter the pool).
    pub fn new(mut tokens: Vec<TokenId>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        assert!(!tokens.is_empty(), "query must have at least one keyword");
        Self { tokens }
    }

    /// A query containing every keyword of a document (the NaiveCrawl
    /// query for that record).
    pub fn from_document(doc: &Document) -> Self {
        Self::new(doc.tokens().to_vec())
    }

    /// The sorted tokens.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Queries are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders the keyword strings to send through a search interface.
    pub fn render(&self, ctx: &TextContext) -> Vec<String> {
        self.tokens.iter().map(|&t| ctx.vocab.word(t).to_owned()).collect()
    }

    /// Whether this query's keywords are a superset of `other`'s.
    pub fn contains_query(&self, other: &Query) -> bool {
        if other.tokens.len() > self.tokens.len() {
            return false;
        }
        let mut i = 0usize;
        for &t in &other.tokens {
            match self.tokens[i..].binary_search(&t) {
                Ok(p) => i += p + 1,
                Err(_) => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> Query {
        Query::new(ids.iter().map(|&i| TokenId(i)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let query = q(&[3, 1, 3, 2]);
        assert_eq!(query.tokens(), &[TokenId(1), TokenId(2), TokenId(3)]);
        assert_eq!(query.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn empty_query_rejected() {
        Query::new(vec![]);
    }

    #[test]
    fn render_round_trips_through_vocab() {
        let mut ctx = TextContext::new();
        let d = ctx.doc("noodle house");
        let query = Query::from_document(&d);
        let mut words = query.render(&ctx);
        words.sort();
        assert_eq!(words, vec!["house".to_owned(), "noodle".to_owned()]);
    }

    #[test]
    fn contains_query_subset_test() {
        assert!(q(&[1, 2, 3]).contains_query(&q(&[1, 3])));
        assert!(q(&[1, 2]).contains_query(&q(&[1, 2])));
        assert!(!q(&[1, 2]).contains_query(&q(&[1, 2, 3])));
        assert!(!q(&[1, 2]).contains_query(&q(&[3])));
    }
}
