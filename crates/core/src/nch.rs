//! Fisher's noncentral hypergeometric mean (paper §5.3).
//!
//! The paper models an overflowing query's benefit as the number of black
//! balls (top-k records) in a random draw of `n = |q(D) ∩ q(H)|` balls from
//! the `N = |q(H)|` matching records. When the draw is *biased* — top-k
//! records are ω times as likely to belong to the local table as the rest —
//! the count follows Fisher's noncentral hypergeometric distribution. The
//! paper sets ω = 1 (users cannot be asked to calibrate ω); this module
//! implements the general mean so the assumption can be tested (see the
//! `ablation_omega` binary).
//!
//! The mean is computed exactly by accumulating the unnormalized pmf
//! `w_i ∝ C(m1, i)·C(m2, n−i)·ω^i` over the support via the ratio
//! recurrence, with periodic rescaling to stay inside f64 range. The
//! support has at most `min(n, m1) + 1` points, so this is O(k).

/// Mean of Fisher's noncentral hypergeometric distribution with `m1` black
/// balls, `m2` white balls, `n` draws, and odds ratio `omega` (> 0).
///
/// `omega = 1` reduces to the central hypergeometric mean `n·m1/(m1+m2)`.
///
/// # Panics
/// Panics if `n > m1 + m2` or `omega` is not finite and positive.
pub fn fisher_nch_mean(m1: usize, m2: usize, n: usize, omega: f64) -> f64 {
    assert!(n <= m1 + m2, "cannot draw more balls than exist");
    assert!(omega.is_finite() && omega > 0.0, "omega must be positive and finite");
    if n == 0 || m1 == 0 {
        return 0.0;
    }
    let lo = n.saturating_sub(m2);
    let hi = n.min(m1);
    if lo == hi {
        return lo as f64;
    }
    // Walk i = lo..=hi with w_{i+1} = w_i · ((m1−i)(n−i))/((i+1)(m2−n+i+1)) · ω.
    let mut w = 1.0f64;
    let mut sum = 1.0f64;
    let mut weighted = lo as f64;
    for i in lo..hi {
        let ratio = ((m1 - i) as f64 * (n - i) as f64)
            / ((i + 1) as f64 * (m2 + i + 1 - n) as f64)
            * omega;
        w *= ratio;
        if w > 1e250 || sum > 1e250 {
            sum /= 1e250;
            weighted /= 1e250;
            w /= 1e250;
        } else if w < 1e-250 && w > 0.0 && sum < 1e-200 {
            sum *= 1e250;
            weighted *= 1e250;
            w *= 1e250;
        }
        sum += w;
        weighted += w * (i + 1) as f64;
    }
    weighted / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact reference via u128 binomials (small instances only).
    fn reference_mean(m1: usize, m2: usize, n: usize, omega: f64) -> f64 {
        fn binom(n: usize, k: usize) -> u128 {
            if k > n {
                return 0;
            }
            let k = k.min(n - k);
            let mut r: u128 = 1;
            for i in 0..k {
                r = r * (n - i) as u128 / (i + 1) as u128;
            }
            r
        }
        let lo = n.saturating_sub(m2);
        let hi = n.min(m1);
        let mut sum = 0.0;
        let mut weighted = 0.0;
        for i in lo..=hi {
            let w = binom(m1, i) as f64 * binom(m2, n - i) as f64 * omega.powi(i as i32);
            sum += w;
            weighted += w * i as f64;
        }
        weighted / sum
    }

    #[test]
    fn omega_one_is_central_hypergeometric() {
        for (m1, m2, n) in [(4usize, 6usize, 5usize), (12, 28, 15), (100, 900, 50)] {
            let mean = fisher_nch_mean(m1, m2, n, 1.0);
            let expect = n as f64 * m1 as f64 / (m1 + m2) as f64;
            assert!((mean - expect).abs() < 1e-9, "{mean} vs {expect}");
        }
    }

    #[test]
    fn agrees_with_exact_reference() {
        for omega in [0.25, 0.5, 1.0, 2.0, 5.0] {
            for (m1, m2, n) in [(5usize, 7usize, 6usize), (10, 10, 8), (3, 20, 10)] {
                let got = fisher_nch_mean(m1, m2, n, omega);
                let expect = reference_mean(m1, m2, n, omega);
                assert!(
                    (got - expect).abs() < 1e-9,
                    "m1={m1} m2={m2} n={n} ω={omega}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn mean_is_monotone_in_omega() {
        let mut last = 0.0;
        for omega in [0.1, 0.5, 1.0, 2.0, 10.0, 100.0] {
            let mean = fisher_nch_mean(10, 30, 12, omega);
            assert!(mean >= last, "mean must grow with ω");
            last = mean;
        }
    }

    #[test]
    fn extreme_omegas_approach_the_limits() {
        // ω → ∞: draws prefer black: mean → min(n, m1).
        let hi = fisher_nch_mean(10, 30, 12, 1e12);
        assert!((hi - 10.0).abs() < 1e-6, "got {hi}");
        // ω → 0: draws avoid black: mean → max(0, n − m2).
        let lo = fisher_nch_mean(10, 30, 12, 1e-12);
        assert!(lo < 1e-6, "got {lo}");
        let forced = fisher_nch_mean(10, 5, 12, 1e-12);
        assert!((forced - 7.0).abs() < 1e-6, "got {forced}"); // 12−5 forced black
    }

    #[test]
    fn degenerate_supports() {
        assert_eq!(fisher_nch_mean(5, 5, 0, 2.0), 0.0);
        assert_eq!(fisher_nch_mean(0, 5, 3, 2.0), 0.0);
        // All balls drawn: mean = m1 exactly.
        assert_eq!(fisher_nch_mean(4, 6, 10, 3.0), 4.0);
    }

    #[test]
    fn large_instances_stay_finite() {
        let m = fisher_nch_mean(1_000, 99_000, 5_000, 3.0);
        assert!(m.is_finite() && m > 0.0 && m <= 1_000.0, "got {m}");
    }

    #[test]
    #[should_panic(expected = "omega must be positive")]
    fn rejects_bad_omega() {
        fisher_nch_mean(1, 1, 1, 0.0);
    }
}
