//! The local database `D` and matching returned pages against it.

use crate::context::TextContext;
use smartcrawl_match::Matcher;
use smartcrawl_store::{AnyForward, AnyPostings, IndexBackendConfig, StoreReport, StoreRuntime};
use smartcrawl_text::similarity::jaccard;
use smartcrawl_text::{Document, Record, RecordId, TokenId};
use std::collections::HashMap;
use std::sync::Arc;

/// The indexed local database: records, their documents, and an inverted
/// index for query-frequency computation (`|q(D)|`, paper Fig. 3(a)).
/// The index is either RAM-resident (the default) or the paged on-disk
/// backend of `smartcrawl-store`, selected per run via
/// [`IndexBackendConfig`]; both produce identical match sets, so every
/// caller is backend-oblivious.
#[derive(Debug)]
pub struct LocalDb {
    records: Vec<Record>,
    docs: Vec<Document>,
    index: AnyPostings,
    /// Owns the on-disk files and cache budget when the disk backend is
    /// active; `None` on the RAM path.
    store: Option<Arc<StoreRuntime>>,
}

impl LocalDb {
    /// Tokenizes and indexes `records` into `ctx`'s shared vocabulary
    /// (RAM backend).
    pub fn build(records: Vec<Record>, ctx: &mut TextContext) -> Self {
        match Self::build_with(records, ctx, &IndexBackendConfig::Ram) {
            Ok(db) => db,
            // The RAM path cannot fail (no I/O); keep the historical
            // infallible signature for the dozens of existing call sites.
            // lint:allow(panic-freedom) unreachable: the Ram arm performs no I/O
            Err(e) => panic!("RAM index build failed: {e}"),
        }
    }

    /// Tokenizes and indexes `records` with an explicit index backend.
    pub fn build_with(
        records: Vec<Record>,
        ctx: &mut TextContext,
        backend: &IndexBackendConfig,
    ) -> Result<Self, smartcrawl_store::StoreError> {
        let docs: Vec<Document> = records
            .iter()
            .map(|r| ctx.doc_of_fields(r.fields()))
            .collect();
        let store = match backend {
            IndexBackendConfig::Ram => None,
            IndexBackendConfig::Disk(config) => Some(StoreRuntime::create(config.clone())?),
        };
        let index = AnyPostings::build(&docs, ctx.vocab.len(), store.as_deref())?;
        Ok(Self {
            records,
            docs,
            index,
            store,
        })
    }

    /// Number of local records `|D|`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at position `i`.
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }

    /// The document of record `i`.
    pub fn doc(&self, i: usize) -> &Document {
        &self.docs[i]
    }

    /// All documents, record order.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The inverted index over `D` (RAM or disk).
    pub fn index(&self) -> &AnyPostings {
        &self.index
    }

    /// Builds the forward index (record → queries) on the same backend as
    /// the inverted index, so a disk-backed run keeps `Σ|F(d)|` on disk
    /// too.
    pub fn build_forward(
        &self,
        query_matches: &[Vec<RecordId>],
    ) -> Result<AnyForward, smartcrawl_store::StoreError> {
        AnyForward::build(self.len(), query_matches, self.store.as_deref())
    }

    /// Page-cache activity of the disk backend (`None` on the RAM path).
    pub fn store_report(&self) -> Option<StoreReport> {
        self.store.as_ref().map(|rt| rt.report())
    }
}

/// Matches *returned hidden documents* against the whole local database —
/// the page-to-`D` direction used by every crawler's bookkeeping.
///
/// Exact matching is one hash lookup. Fuzzy (Jaccard ≥ τ) matching uses a
/// prefix filter: any local record with `J(d, h) ≥ τ` shares at least one
/// of the `⌊(1−τ)·|h|⌋ + 1` *rarest* tokens of `h` (if all shared tokens
/// were outside that prefix, the overlap would be at most `⌈τ|h|⌉ − 1 <
/// τ|h| ≤ |d ∩ h|`, a contradiction) — so only those posting lists are
/// scanned.
#[derive(Debug)]
pub struct LocalMatchIndex<'a> {
    db: &'a LocalDb,
    by_doc: HashMap<&'a Document, Vec<u32>>,
}

impl<'a> LocalMatchIndex<'a> {
    /// Builds the match index over a local database.
    pub fn build(db: &'a LocalDb) -> Self {
        let mut by_doc: HashMap<&Document, Vec<u32>> = HashMap::new();
        for (i, d) in db.docs.iter().enumerate() {
            by_doc.entry(d).or_default().push(i as u32);
        }
        Self { db, by_doc }
    }

    /// Local record positions matching hidden document `h` under `matcher`,
    /// restricted to records where `live[i]`. Pass `None` for no
    /// restriction — unlike an all-true slice, that costs nothing to
    /// construct, which matters for oracle evaluations that call this once
    /// per pool query. Sorted ascending.
    pub fn find_matches(
        &self,
        h: &Document,
        matcher: Matcher,
        live: Option<&[bool]>,
    ) -> Vec<usize> {
        match matcher {
            Matcher::Exact => self
                .by_doc
                .get(h)
                .map(|v| {
                    v.iter()
                        .map(|&i| i as usize)
                        .filter(|&i| live.is_none_or(|l| l[i]))
                        .collect()
                })
                .unwrap_or_default(),
            Matcher::Jaccard { threshold } => {
                if h.is_empty() {
                    return Vec::new();
                }
                // Prefix filter: probe the rarest (1-τ)|h|+1 tokens.
                let prefix_len = ((1.0 - threshold) * h.len() as f64).floor() as usize + 1;
                let mut by_rarity: Vec<TokenId> = h.iter().collect();
                by_rarity.sort_unstable_by_key(|&t| (self.db.index.doc_frequency(t), t));
                let mut candidates: Vec<RecordId> = Vec::new();
                for &t in by_rarity.iter().take(prefix_len.min(by_rarity.len())) {
                    self.db.index.postings_into(t, &mut candidates);
                }
                candidates.sort_unstable();
                candidates.dedup();
                candidates
                    .into_iter()
                    .map(|RecordId(i)| i as usize)
                    .filter(|&i| live.is_none_or(|l| l[i]))
                    .filter(|&i| jaccard(&self.db.docs[i], h) >= threshold)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LocalDb, TextContext) {
        let mut ctx = TextContext::new();
        let db = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["thai house"]),
                Record::from(["thai noodle express"]),
            ],
            &mut ctx,
        );
        (db, ctx)
    }

    #[test]
    fn build_indexes_all_records() {
        let (db, ctx) = setup();
        assert_eq!(db.len(), 4);
        let house = ctx.vocab.get("house").unwrap();
        assert_eq!(db.index().doc_frequency(house), 3);
    }

    #[test]
    fn exact_match_respects_liveness() {
        let (db, mut ctx) = setup();
        let m = LocalMatchIndex::build(&db);
        let h = ctx.doc("thai noodle house");
        assert_eq!(m.find_matches(&h, Matcher::Exact, None), vec![0]);
        assert_eq!(
            m.find_matches(&h, Matcher::Exact, Some(&[true; 4])),
            vec![0]
        );
        assert!(m
            .find_matches(&h, Matcher::Exact, Some(&[false, true, true, true]))
            .is_empty());
    }

    #[test]
    fn duplicate_local_docs_all_match() {
        let mut ctx = TextContext::new();
        let db = LocalDb::build(
            vec![Record::from(["thai house"]), Record::from(["thai house"])],
            &mut ctx,
        );
        let m = LocalMatchIndex::build(&db);
        let h = ctx.doc("thai house");
        assert_eq!(m.find_matches(&h, Matcher::Exact, None), vec![0, 1]);
    }

    #[test]
    fn fuzzy_match_finds_near_duplicates() {
        let mut ctx = TextContext::new();
        // 10-token local record; hidden copy differs by one substitution.
        let words: Vec<String> = (0..10).map(|i| format!("w{i}")).collect();
        let db = LocalDb::build(vec![Record::from([words.join(" ")])], &mut ctx);
        let m = LocalMatchIndex::build(&db);
        let mut h_words = words.clone();
        h_words[9] = "novel".into();
        let h = ctx.doc(&h_words.join(" "));
        // J = 9/11 ≈ 0.82.
        assert_eq!(
            m.find_matches(&h, Matcher::Jaccard { threshold: 0.8 }, None),
            vec![0]
        );
        assert!(m
            .find_matches(&h, Matcher::Jaccard { threshold: 0.9 }, None)
            .is_empty());
    }

    #[test]
    fn fuzzy_match_with_unknown_tokens_in_page_doc() {
        let (db, mut ctx) = setup();
        let m = LocalMatchIndex::build(&db);
        // Hidden doc has a token D has never seen; must still match when
        // similarity clears the bar. J({thai,noodle,house,extra},{thai,
        // noodle,house}) = 3/4.
        let h = ctx.doc("thai noodle house extraword");
        assert_eq!(
            m.find_matches(&h, Matcher::Jaccard { threshold: 0.7 }, Some(&[true; 4])),
            vec![0]
        );
    }

    #[test]
    fn fuzzy_match_agrees_with_brute_force() {
        let (db, mut ctx) = setup();
        let m = LocalMatchIndex::build(&db);
        let probes = [
            "thai noodle house",
            "jade house",
            "noodle express thai",
            "steak palace",
        ];
        for p in probes {
            let h = ctx.doc(p);
            for thr in [0.3, 0.5, 0.8, 1.0] {
                let got = m.find_matches(&h, Matcher::Jaccard { threshold: thr }, None);
                let expect: Vec<usize> = (0..db.len())
                    .filter(|&i| jaccard(db.doc(i), &h) >= thr)
                    .collect();
                assert_eq!(got, expect, "probe {p:?} thr {thr}");
            }
        }
    }
}
