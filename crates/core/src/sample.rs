//! The crawler-side view of a hidden-database sample (paper §5).
//!
//! QSel-Est's estimators need two statistics per query: the sample
//! frequency `|q(Hs)|` and the matched intersection `|q(D) ∩̃ q(Hs)|`.
//! [`SampleIndex`] tokenizes the sample into the crawl vocabulary, indexes
//! it, and precomputes, for every local record, whether it matches some
//! sample record — so both statistics reduce to counting.

use crate::context::TextContext;
use crate::local::LocalDb;
use smartcrawl_index::InvertedIndex;
use smartcrawl_match::{Matcher, PageIndex};
use smartcrawl_par::par_map;
use smartcrawl_sampler::HiddenSample;
use smartcrawl_text::{Document, TokenId};

/// Indexed hidden-database sample `Hs` with its sampling ratio θ.
#[derive(Debug)]
pub struct SampleIndex {
    docs: Vec<Document>,
    index: InvertedIndex,
    theta: f64,
}

impl SampleIndex {
    /// Tokenizes and indexes a sample into the crawl vocabulary.
    pub fn build(sample: &HiddenSample, ctx: &mut TextContext) -> Self {
        let docs: Vec<Document> =
            sample.records.iter().map(|r| ctx.doc_of_fields(&r.fields[..])).collect();
        let index = InvertedIndex::build(&docs, ctx.vocab.len());
        Self { docs, index, theta: sample.theta }
    }

    /// An empty sample (θ = 0) — QSel-Est degenerates gracefully to
    /// QSel-Simple behaviour without one.
    pub fn empty() -> Self {
        Self { docs: Vec::new(), index: InvertedIndex::build(&[], 0), theta: 0.0 }
    }

    /// Sample size `|Hs|`.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Sampling ratio θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// `|q(Hs)|`: how many sample records satisfy the query.
    pub fn frequency(&self, query: &[TokenId]) -> usize {
        self.index.frequency(query)
    }

    /// For every local record, whether it matches some sample record under
    /// `matcher` (the per-record ingredient of `|q(D) ∩̃ q(Hs)|`).
    pub fn local_matches(&self, local: &LocalDb, matcher: Matcher) -> Vec<bool> {
        if self.docs.is_empty() {
            return vec![false; local.len()];
        }
        // Each local record probes the page index independently.
        let page = PageIndex::build(self.docs.clone());
        par_map(local.docs(), |d| page.find_match(d, matcher).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{ExternalId, Retrieved};
    use smartcrawl_text::Record;

    fn sample(fields: &[&str], theta: f64) -> HiddenSample {
        HiddenSample {
            records: fields
                .iter()
                .enumerate()
                .map(|(i, &f)| Retrieved::new(ExternalId(i as u64), vec![f.to_owned()], vec![]))
                .collect(),
            theta,
        }
    }

    #[test]
    fn frequency_counts_satisfying_sample_records() {
        let mut ctx = TextContext::new();
        let s = SampleIndex::build(
            &sample(&["thai house", "steak house", "ramen bar"], 1.0 / 3.0),
            &mut ctx,
        );
        let house = ctx.vocab.get("house").unwrap();
        let thai = ctx.vocab.get("thai").unwrap();
        assert_eq!(s.frequency(&[house]), 2);
        assert_eq!(s.frequency(&[thai, house]), 1);
        assert_eq!(s.len(), 3);
        assert!((s.theta() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_matches_flags_matchable_records() {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![Record::from(["thai house"]), Record::from(["noodle palace"])],
            &mut ctx,
        );
        let s = SampleIndex::build(&sample(&["thai house", "ramen bar"], 0.5), &mut ctx);
        assert_eq!(s.local_matches(&local, Matcher::Exact), vec![true, false]);
    }

    #[test]
    fn empty_sample_is_safe() {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["thai house"])], &mut ctx);
        let s = SampleIndex::empty();
        assert!(s.is_empty());
        assert_eq!(s.theta(), 0.0);
        assert_eq!(s.local_matches(&local, Matcher::Exact), vec![false]);
        let thai = ctx.vocab.get("thai").unwrap();
        assert_eq!(s.frequency(&[thai]), 0);
    }
}
