//! # SmartCrawl — progressive deep-web crawling for data enrichment
//!
//! Reproduction of *Progressive Deep Web Crawling Through Keyword Queries
//! For Data Enrichment* (Wang, Shea, Wang, Wu — SIGMOD 2019).
//!
//! Given a local database `D`, a hidden database `H` reachable only through
//! a top-`k` keyword-search interface, and a query budget `b`, the
//! **DeepEnrich** problem asks for `b` queries whose combined results cover
//! as many local records as possible (Problem 1). The SmartCrawl framework
//! solves it in two stages:
//!
//! 1. **Query pool generation** ([`pool`]) — per-record "naive" queries plus
//!    frequent keyword sets mined from `D` (support ≥ t), dominance-pruned;
//! 2. **Query selection** ([`select`], [`crawl`]) — iteratively issue the
//!    query with the largest (estimated) benefit, maintaining benefits with
//!    an inverted index, a forward index, and a lazily-updated priority
//!    queue (§6.3).
//!
//! The selection strategies from the paper are all here:
//!
//! | Strategy | Benefit | Notes |
//! |---|---|---|
//! | [`Strategy::Ideal`] | true `|q(D)_cover|` via an oracle | upper bound (QSel-Ideal, Alg. 1) |
//! | [`Strategy::Simple`] | `|q(D)|` | QSel-Simple (Alg. 2) |
//! | [`Strategy::Bound`] | `|q(D)|` + re-insertion | QSel-Bound (Alg. 3), `(1 − |ΔD|/b)·N_ideal` guarantee |
//! | [`Strategy::Est`] | sample-based estimators of Table 1 | QSel-Est (Alg. 4), biased or unbiased |
//!
//! The baselines ([`crawl::naive_crawl`], [`crawl::full_crawl`]) and the
//! evaluation-only oracle crawler complete the experimental cast.
//!
//! ## Quick start
//!
//! ```
//! use smartcrawl_core::{
//!     crawl::{smart_crawl, SmartCrawlConfig},
//!     pool::PoolConfig,
//!     select::Strategy,
//!     LocalDb, TextContext,
//! };
//! use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
//! use smartcrawl_match::Matcher;
//! use smartcrawl_sampler::bernoulli_sample;
//! use smartcrawl_text::Record;
//!
//! // A toy hidden database and a two-record local database.
//! let hidden = HiddenDbBuilder::new()
//!     .k(10)
//!     .records([
//!         HiddenRecord::new(0, Record::from(["thai noodle house"]), vec!["4.5".into()], 1.0),
//!         HiddenRecord::new(1, Record::from(["steak house"]), vec!["4.0".into()], 2.0),
//!         HiddenRecord::new(2, Record::from(["ramen bar"]), vec!["3.8".into()], 3.0),
//!     ])
//!     .build();
//! let mut ctx = TextContext::default();
//! let local = LocalDb::build(
//!     vec![Record::from(["thai noodle house"]), Record::from(["ramen bar"])],
//!     &mut ctx,
//! );
//! let sample = bernoulli_sample(&hidden, 0.5, 7);
//!
//! let mut iface = Metered::new(&hidden, Some(2));
//! let cfg = SmartCrawlConfig {
//!     budget: 2,
//!     strategy: Strategy::est_biased(),
//!     matcher: Matcher::Exact,
//!     pool: PoolConfig::default(),
//!     omega: 1.0,
//! };
//! let report = smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
//! assert!(report.enriched.len() <= 2);
//! ```

pub mod arena;
pub mod context;
pub mod crawl;
pub mod estimate;
pub mod local;
pub mod nch;
pub mod pool;
pub mod query;
pub mod sample;
pub mod select;

#[cfg(test)]
mod fixture;

pub use arena::RecordArena;
pub use context::TextContext;
pub use crawl::{
    CountingObserver, CrawlEvent, CrawlObserver, CrawlReport, CrawlSession, CrawlStep, EventCounts,
    EventStamp, NullObserver, PhaseTimings, QuerySource, TraceLog,
};
pub use estimate::{Estimator, EstimatorKind};
pub use local::{LocalDb, LocalMatchIndex};
pub use nch::fisher_nch_mean;
pub use pool::{PoolConfig, PoolStats, QueryPool};
pub use query::Query;
pub use sample::SampleIndex;
pub use select::{probe_engine_setup, DeltaRemoval, SelectionStats, SetupProbe, Strategy};
pub use smartcrawl_store::{IndexBackendConfig, StoreConfig, StoreReport, StoreStats};
