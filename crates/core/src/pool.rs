//! Query pool generation (paper §3.1).
//!
//! The pool is `Q_naive ∪ { q : |q(D)| ≥ t }`, dominance-pruned:
//!
//! * **Naive queries** — one per local record, containing the record's full
//!   document (what NaiveCrawl would issue), so every record has at least
//!   one query able to reach it;
//! * **Frequent queries** — keyword sets occurring in at least `t` local
//!   records (default `t = 2`), mined with FP-Growth, capped at
//!   `max_len` keywords (see `smartcrawl-fpm` docs for why the cap exists);
//! * **Dominance pruning** — `q1` dominates `q2` iff `|q1(D)| = |q2(D)|`
//!   and `q1 ⊇ q2`; dominated queries are redundant (same local reach,
//!   fewer keywords ⇒ no more selective on the hidden side). We prune by
//!   the immediate-superset rule: a mined set is dropped when some mined
//!   one-keyword extension has the same support. By downward closure this
//!   catches all dominations within the mined lattice.
//!
//! The pool is shuffled once (seeded) so that equal-benefit ties during
//! selection break pseudo-randomly, as in the paper, while staying
//! reproducible.

use crate::context::TextContext;
use crate::local::LocalDb;
use crate::query::Query;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use smartcrawl_fpm::{fpgrowth, MinerConfig};
use smartcrawl_par::{par_chunks, par_map};
use smartcrawl_index::QueryId;
use smartcrawl_text::{RecordId, TokenId};
use std::collections::{HashMap, HashSet};

/// Pool-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Support threshold `t` for mined queries (paper default: 2).
    pub min_support: usize,
    /// Maximum keywords per mined query.
    pub max_len: usize,
    /// Shuffle seed for tie-breaking order.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { min_support: 2, max_len: 2, seed: 0x5A17 }
    }
}

/// Provenance counters from pool generation (§3.1's two principles plus
/// dominance pruning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frequent itemsets mined (before pruning).
    pub mined: usize,
    /// Mined itemsets removed by dominance pruning.
    pub dominated: usize,
    /// Naive (per-record) queries added.
    pub naive: usize,
    /// Naive queries that duplicated an existing pool entry.
    pub naive_deduped: usize,
}

/// The generated pool: queries plus their build-time match sets.
///
/// # Examples
///
/// ```
/// use smartcrawl_core::{LocalDb, PoolConfig, QueryPool, TextContext};
/// use smartcrawl_text::Record;
///
/// let mut ctx = TextContext::new();
/// let local = LocalDb::build(
///     vec![
///         Record::from(["thai noodle house"]),
///         Record::from(["jade noodle house"]),
///     ],
///     &mut ctx,
/// );
/// let pool = QueryPool::generate(&local, &PoolConfig::default());
/// // Shared keywords become general queries; each record also gets its
/// // specific (naive) query.
/// assert!(pool.len() >= 2);
/// assert!(pool.queries().iter().all(|q| q.len() >= 1));
/// ```
#[derive(Debug)]
pub struct QueryPool {
    queries: Vec<Query>,
    /// `q(D)` at build time, per query (sorted record ids).
    matches: Vec<Vec<RecordId>>,
    stats: PoolStats,
}

impl QueryPool {
    /// Generates the pool for a local database (see module docs).
    pub fn generate(local: &LocalDb, cfg: &PoolConfig) -> Self {
        assert!(cfg.min_support >= 1 && cfg.max_len >= 1, "invalid pool config");

        // -- Frequent queries (second principle). --------------------------
        let mined = fpgrowth(local.docs(), MinerConfig::new(cfg.min_support, cfg.max_len));
        // Dominance pruning via immediate supersets: support → set lookup.
        let support_of: HashMap<&[TokenId], usize> =
            mined.iter().map(|s| (s.items.as_slice(), s.support)).collect();
        // Probing is embarrassingly parallel: each mined set's immediate
        // subsets are checked independently, and the result is merged into
        // a set queried only via `contains`, so chunk order is immaterial.
        // One scratch buffer per chunk replaces the per-(set, drop) Vec the
        // sequential version allocated.
        let dominated: HashSet<&[TokenId]> = par_chunks(&mined, |_, chunk| {
            let mut sub: Vec<TokenId> = Vec::new();
            let mut found: Vec<&[TokenId]> = Vec::new();
            for set in chunk {
                if set.items.len() < 2 {
                    continue;
                }
                for drop in 0..set.items.len() {
                    sub.clear();
                    sub.extend(
                        set.items.iter().enumerate().filter(|&(i, _)| i != drop).map(|(_, &t)| t),
                    );
                    if support_of.get(sub.as_slice()) == Some(&set.support) {
                        // `set` dominates `sub`: same |q(D)|, superset keywords.
                        if let Some((key, _)) = support_of.get_key_value(sub.as_slice()) {
                            found.push(*key);
                        }
                    }
                }
            }
            found
        })
        .into_iter()
        .flatten()
        .collect();

        let mut stats = PoolStats { mined: mined.len(), dominated: dominated.len(), ..Default::default() };
        let mut seen: HashSet<Vec<TokenId>> = HashSet::new();
        let mut queries: Vec<Query> = Vec::new();
        for set in &mined {
            if dominated.contains(set.items.as_slice()) {
                continue;
            }
            if seen.insert(set.items.clone()) {
                queries.push(Query::new(set.items.clone()));
            }
        }

        // -- Naive queries (first principle). ------------------------------
        for i in 0..local.len() {
            let doc = local.doc(i);
            if doc.is_empty() {
                continue; // a record with no keywords cannot be queried
            }
            let tokens = doc.tokens().to_vec();
            if seen.insert(tokens.clone()) {
                stats.naive += 1;
                queries.push(Query::new(tokens));
            } else {
                stats.naive_deduped += 1;
            }
        }

        // -- Deterministic shuffle for pseudo-random tie-breaking. ----------
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        queries.shuffle(&mut rng);

        // -- Materialize q(D) per query (independent intersections). --------
        let matches: Vec<Vec<RecordId>> =
            par_map(&queries, |q| local.index().matching(q.tokens()));
        debug_assert!(matches.iter().all(|m| !m.is_empty()), "pool queries must have |q(D)| ≥ 1");

        Self { queries, matches, stats }
    }

    /// Provenance counters from generation.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of queries in the pool.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The query behind `id`.
    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.index()]
    }

    /// All queries in pool order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// `q(D)` at build time for query `id`.
    pub fn matches(&self, id: QueryId) -> &[RecordId] {
        &self.matches[id.index()]
    }

    /// All build-time match sets, pool order.
    pub fn all_matches(&self) -> &[Vec<RecordId>] {
        &self.matches
    }

    /// Build-time `|q(D)|` per query, pool order.
    pub fn frequencies(&self) -> Vec<u32> {
        self.matches.iter().map(|m| m.len() as u32).collect()
    }

    /// Renders a query's keywords (convenience).
    pub fn render(&self, id: QueryId, ctx: &TextContext) -> Vec<String> {
        self.query(id).render(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::Record;

    /// The running example's local database (Figure 1(a) stand-in).
    fn running_example() -> (LocalDb, TextContext) {
        let mut ctx = TextContext::new();
        let db = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["thai house"]),
                Record::from(["thai noodle express"]),
            ],
            &mut ctx,
        );
        (db, ctx)
    }

    fn pool_words(pool: &QueryPool, ctx: &TextContext) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = pool
            .queries()
            .iter()
            .map(|q| {
                let mut w = q.render(ctx);
                w.sort();
                w
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn running_example_pool_matches_the_paper() {
        // Example 2 (adapted to this instance): naive queries = the four
        // full names; frequent itemsets with t = 2 after dominance pruning.
        let (db, ctx) = running_example();
        let pool = QueryPool::generate(&db, &PoolConfig { min_support: 2, max_len: 3, seed: 1 });
        let words = pool_words(&pool, &ctx);
        // Frequent with t=2: house(3), thai(3), noodle(3), thai+house(2),
        // thai+noodle(2), noodle+house(2); no pair is dominated (all
        // supports drop from 3 to 2) and no single is dominated (3 ≠ 2).
        // Naive: the four record documents.
        let expect: Vec<Vec<String>> = vec![
            vec!["house"],
            vec!["house", "jade", "noodle"],
            vec!["house", "noodle"],
            vec!["house", "noodle", "thai"],
            vec!["house", "thai"],
            vec!["express", "noodle", "thai"],
            vec!["noodle"],
            vec!["noodle", "thai"],
            vec!["thai"],
        ]
        .into_iter()
        .map(|v| v.into_iter().map(str::to_owned).collect())
        .collect();
        let mut expect = expect;
        expect.sort();
        assert_eq!(words, expect);
    }

    #[test]
    fn dominated_queries_are_pruned() {
        // "noodle" always co-occurs with "house": same support ⇒ "noodle"
        // dominated by "noodle house" (paper Example 2's pruning).
        let mut ctx = TextContext::new();
        let db = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["thai house"]),
            ],
            &mut ctx,
        );
        let pool = QueryPool::generate(&db, &PoolConfig { min_support: 2, max_len: 2, seed: 1 });
        let words = pool_words(&pool, &ctx);
        assert!(!words.contains(&vec!["noodle".to_owned()]), "{words:?}");
        assert!(words.contains(&vec!["house".to_owned(), "noodle".to_owned()]));
    }

    #[test]
    fn every_local_record_is_reachable() {
        let (db, _ctx) = running_example();
        let pool = QueryPool::generate(&db, &PoolConfig::default());
        // Union of q(D) over the pool covers all records (first principle).
        let mut reached = vec![false; db.len()];
        for m in pool.all_matches() {
            for &RecordId(i) in m {
                reached[i as usize] = true;
            }
        }
        assert!(reached.iter().all(|&r| r));
    }

    #[test]
    fn matches_agree_with_frequencies() {
        let (db, _ctx) = running_example();
        let pool = QueryPool::generate(&db, &PoolConfig::default());
        let freqs = pool.frequencies();
        for (i, &f) in freqs.iter().enumerate() {
            let id = QueryId(i as u32);
            assert_eq!(pool.matches(id).len() as u32, f);
            assert!(f >= 1);
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let (db, _ctx) = running_example();
        let cfg = PoolConfig { min_support: 2, max_len: 2, seed: 99 };
        let a = QueryPool::generate(&db, &cfg);
        let b = QueryPool::generate(&db, &cfg);
        assert_eq!(a.queries(), b.queries());
        let c = QueryPool::generate(&db, &PoolConfig { seed: 100, ..cfg });
        // Same set, very likely different order.
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn stats_track_provenance() {
        let (db, _ctx) = running_example();
        let pool = QueryPool::generate(&db, &PoolConfig { min_support: 2, max_len: 2, seed: 1 });
        let st = pool.stats();
        // 6 frequent itemsets, none dominated; 4 naive records, one of
        // which ("thai house") duplicates the mined pair.
        assert_eq!(st.mined, 6);
        assert_eq!(st.dominated, 0);
        assert_eq!(st.naive, 3);
        assert_eq!(st.naive_deduped, 1);
        assert_eq!(pool.len(), st.mined - st.dominated + st.naive);
    }

    #[test]
    fn duplicate_records_collapse_to_one_naive_query() {
        let mut ctx = TextContext::new();
        let db = LocalDb::build(
            vec![Record::from(["unique alpha beta"]), Record::from(["unique alpha beta"])],
            &mut ctx,
        );
        let pool = QueryPool::generate(&db, &PoolConfig { min_support: 5, max_len: 2, seed: 1 });
        // No frequent sets (t=5); one naive query despite two records.
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.matches(QueryId(0)).len(), 2);
    }
}
