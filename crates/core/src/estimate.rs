//! Benefit estimators (paper §5, Table 1; §6.2).
//!
//! For a query `q` the *true benefit* is `|q(D) ∩ q(H)_k|` — unknown until
//! the query is issued. With a hidden-database sample `Hs` (ratio θ) the
//! paper derives four estimators:
//!
//! |          | Unbiased                                | Biased (small bias)              |
//! |----------|------------------------------------------|----------------------------------|
//! | Solid    | `|q(D) ∩̃ q(Hs)| / θ`                     | `|q(D)|`                         |
//! | Overflow | `|q(D) ∩̃ q(Hs)| · k / |q(Hs)|`           | `|q(D)| · kθ / |q(Hs)|`          |
//!
//! A query is *predicted overflowing* when its estimated hidden frequency
//! `|q(Hs)|/θ` exceeds `k`. When the sample is too small to see the query
//! (`|q(Hs)| = 0`), §6.2 treats `D` itself as another random sample of `H`
//! with ratio `α = θ·|D|/|Hs|`: the query is predicted overflowing when
//! `|q(D)|/α > k`, with benefit `k·α`.

/// Which estimator family QSel-Est uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// The biased estimators (bias `|q(ΔD)|`, resp. `|q(ΔD)|·k/|q(H)|`) —
    /// the paper's recommended choice (SmartCrawl-B).
    Biased,
    /// The (conditionally) unbiased estimators — coarse-grained at small
    /// sampling ratios (SmartCrawl-U).
    Unbiased,
}

/// Whether a query is predicted solid or overflowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryType {
    /// Predicted `|q(H)| ≤ k`: the interface would return all of `q(H)`.
    Solid,
    /// Predicted `|q(H)| > k`: results are truncated by the ranking.
    Overflowing,
}

/// Sample-based benefit estimation state (immutable during a crawl).
///
/// # Examples
///
/// ```
/// use smartcrawl_core::{Estimator, EstimatorKind};
/// use smartcrawl_core::estimate::QueryType;
///
/// // k = 100, θ = 0.5%, |D| = 10 000, |Hs| = 500.
/// let est = Estimator::new(EstimatorKind::Biased, 100, 0.005, 10_000, 500);
/// // A query seen once in the sample has estimated |q(H)| = 200 > k:
/// assert_eq!(est.predict_type(40, 1), QueryType::Overflowing);
/// // Its biased benefit discounts |q(D)| by the top-k truncation:
/// assert!((est.benefit(40, 1, 0) - 40.0 * 100.0 * 0.005).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Estimator {
    kind: EstimatorKind,
    k: usize,
    theta: f64,
    /// §6.2's "local database as a sample" ratio `α = θ|D|/|Hs|`, or 0 when
    /// no sample exists.
    alpha: f64,
    /// §5.3's odds ratio ω: how much likelier a top-k record is to belong
    /// to `D` than a non-top-k record. The paper assumes ω = 1 (uniform
    /// draw); other values switch the overflow benefit to the Fisher
    /// noncentral hypergeometric mean.
    omega: f64,
}

impl Estimator {
    /// Creates an estimator for interface limit `k`, sample ratio `theta`,
    /// local size `|D|` and sample size `|Hs|` (ω = 1, the paper's
    /// assumption).
    pub fn new(kind: EstimatorKind, k: usize, theta: f64, local_size: usize, sample_size: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!((0.0..=1.0).contains(&theta), "theta must be a ratio");
        let alpha = if sample_size > 0 && theta > 0.0 {
            theta * local_size as f64 / sample_size as f64
        } else {
            0.0
        };
        Self { kind, k, theta, alpha, omega: 1.0 }
    }

    /// Sets the §5.3 odds ratio ω (> 0) for the overflow model.
    pub fn with_omega(mut self, omega: f64) -> Self {
        assert!(omega.is_finite() && omega > 0.0, "omega must be positive and finite");
        self.omega = omega;
        self
    }

    /// The estimator family.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// The `α` ratio of §6.2.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The overflow-model odds ratio ω.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Expected covered records for an overflowing query with estimated
    /// `|q(H)| = big_n` and `|q(D) ∩ q(H)| = n_draw` (Equation 7 for ω = 1;
    /// Fisher's noncentral hypergeometric mean otherwise).
    /// The estimate is capped at `k`: "the true benefit of any query
    /// cannot be larger than k" (§1, Factor 2) — without the cap a freak
    /// sample draw (tiny `|q(Hs)|` against a huge `|q(D)|`) can produce
    /// arbitrarily inflated estimates.
    fn overflow_benefit(&self, n_draw: f64, big_n: f64) -> f64 {
        if n_draw <= 0.0 || big_n <= 0.0 {
            return 0.0;
        }
        if (self.omega - 1.0).abs() < 1e-12 {
            return (n_draw * self.k as f64 / big_n).min(self.k as f64);
        }
        // Round to an integer instance; an overflowing query has
        // |q(H)| > k and the draw cannot exceed the population.
        let big_n = (big_n.round() as usize).max(self.k + 1);
        let n_draw = (n_draw.round() as usize).clamp(1, big_n);
        crate::nch::fisher_nch_mean(self.k, big_n - self.k, n_draw, self.omega)
    }

    /// Predicts the query type from `|q(D)|` and `|q(Hs)|` (§5.1 + §6.2).
    ///
    /// The §6.2 α-rule (treat `D` as another sample of `H`) is applied
    /// only when `|q(D)| ≥ 2`: a single occurrence carries no statistical
    /// power, and the paper's own Example 3 predicts the frequency-1 naive
    /// query q1 as *solid* — which is also what makes SmartCrawl-B
    /// degenerate to NaiveCrawl at k = 1 (Figure 6(c)) instead of ranking
    /// every specific query below the k·α fallback.
    pub fn predict_type(&self, freq_d: usize, freq_hs: usize) -> QueryType {
        if freq_hs > 0 {
            if self.theta > 0.0 && (freq_hs as f64 / self.theta) > self.k as f64 {
                QueryType::Overflowing
            } else {
                QueryType::Solid
            }
        } else if freq_d >= 2 && self.alpha > 0.0 && (freq_d as f64 / self.alpha) > self.k as f64 {
            // Inadequate sample: treat D as a sample of H (§6.2).
            QueryType::Overflowing
        } else {
            QueryType::Solid
        }
    }

    /// Estimated benefit of a query given the current `|q(D)|`, the fixed
    /// `|q(Hs)|`, and the current matched intersection `|q(D) ∩̃ q(Hs)|`.
    pub fn benefit(&self, freq_d: usize, freq_hs: usize, inter_hs: usize) -> f64 {
        debug_assert!(inter_hs <= freq_d, "intersection cannot exceed |q(D)|");
        let qtype = self.predict_type(freq_d, freq_hs);
        match (self.kind, qtype) {
            (EstimatorKind::Biased, QueryType::Solid) => freq_d as f64,
            (EstimatorKind::Biased, QueryType::Overflowing) => {
                if freq_hs > 0 {
                    // n̂ = |q(D)|, N̂ = |q(Hs)|/θ (Equation 12 at ω = 1).
                    self.overflow_benefit(freq_d as f64, freq_hs as f64 / self.theta)
                } else if self.alpha > 0.0 {
                    // §6.2 fallback: n̂ = |q(D)|, N̂ = |q(D)|/α (⇒ k·α at ω = 1).
                    self.overflow_benefit(freq_d as f64, freq_d as f64 / self.alpha)
                } else {
                    0.0
                }
            }
            (EstimatorKind::Unbiased, QueryType::Solid) => {
                if self.theta > 0.0 {
                    inter_hs as f64 / self.theta
                } else {
                    0.0
                }
            }
            (EstimatorKind::Unbiased, QueryType::Overflowing) => {
                if freq_hs > 0 {
                    // n̂ = |q(D) ∩̃ q(Hs)|/θ, N̂ = |q(Hs)|/θ (Equation 11 at
                    // ω = 1). Under the no-duplicates model (paper fn. 3)
                    // matched pairs cannot exceed |q(Hs)|; clamp defends
                    // against degenerate duplicate-text corpora.
                    self.overflow_benefit(
                        inter_hs.min(freq_hs) as f64 / self.theta,
                        freq_hs as f64 / self.theta,
                    )
                } else if self.alpha > 0.0 {
                    // §6.2 fallback, capped at k like every overflow
                    // estimate (α > 1 arises when |D| exceeds |Ĥ|).
                    (self.k as f64 * self.alpha).min(self.k as f64)
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Running-example parameters: k = 2, θ = 1/3, |D| = 4, |Hs| = 3.
    fn ex(kind: EstimatorKind) -> Estimator {
        Estimator::new(kind, 2, 1.0 / 3.0, 4, 3)
    }

    #[test]
    fn type_prediction_follows_example_3() {
        let e = ex(EstimatorKind::Biased);
        // q1 = "thai noodle house": |q(Hs)| = 0, |q(D)| = 1 ⇒ solid (the
        // α-rule needs |q(D)| ≥ 2; the paper's Example 3 agrees: "q1 is
        // predicated as a solid query, which is a correct prediction").
        assert_eq!(e.predict_type(1, 0), QueryType::Solid);
        // q5 = "house": |q(Hs)| = 2 ⇒ 2/(1/3) = 6 > 2 ⇒ overflowing.
        assert_eq!(e.predict_type(3, 2), QueryType::Overflowing);
        // q7 = "noodle house": |q(Hs)| = 0 under the sample-only rule would
        // be solid; |q(D)| = 2, 2/α = 4.5 > 2 ⇒ α-rule says overflowing.
        assert_eq!(e.predict_type(2, 0), QueryType::Overflowing);
    }

    #[test]
    fn solid_prediction_when_sample_sees_a_rare_query() {
        let e = Estimator::new(EstimatorKind::Biased, 100, 0.01, 10_000, 1_000);
        // |q(Hs)| = 1 ⇒ 1/0.01 = 100 ≤ k ⇒ solid.
        assert_eq!(e.predict_type(5, 1), QueryType::Solid);
        // |q(Hs)| = 2 ⇒ 200 > 100 ⇒ overflowing.
        assert_eq!(e.predict_type(5, 2), QueryType::Overflowing);
    }

    #[test]
    fn biased_solid_benefit_is_freq_d() {
        let e = Estimator::new(EstimatorKind::Biased, 100, 0.01, 10_000, 1_000);
        assert_eq!(e.benefit(37, 1, 0), 37.0);
    }

    #[test]
    fn biased_overflow_benefit_example_5() {
        // q3 = "thai house": |q(D)| = 1, |q(Hs)| = 1, k = 2, θ = 1/3:
        // benefit = 1 · (2·(1/3))/1 = 2/3.
        let e = ex(EstimatorKind::Biased);
        // Force the overflow branch the way the paper does for q3 (its
        // estimated frequency is 1/(1/3) = 3 > 2).
        assert_eq!(e.predict_type(1, 1), QueryType::Overflowing);
        let b = e.benefit(1, 1, 1);
        assert!((b - 2.0 / 3.0).abs() < 1e-12, "got {b}");
    }

    #[test]
    fn unbiased_overflow_benefit_example_4() {
        // q3: |q(D) ∩̃ q(Hs)| = 1, k = 2, |q(Hs)| = 1 ⇒ benefit = 2.
        let e = ex(EstimatorKind::Unbiased);
        let b = e.benefit(1, 1, 1);
        assert!((b - 2.0).abs() < 1e-12, "got {b}");
    }

    #[test]
    fn unbiased_solid_benefit_scales_by_inverse_theta() {
        let e = Estimator::new(EstimatorKind::Unbiased, 1_000, 0.01, 10_000, 1_000);
        assert_eq!(e.predict_type(500, 3, ), QueryType::Solid); // 300 ≤ 1000
        assert_eq!(e.benefit(500, 3, 2), 200.0); // 2 / 0.01
    }

    #[test]
    fn alpha_fallback_benefit_is_k_alpha_capped_at_k() {
        let e = Estimator::new(EstimatorKind::Biased, 10, 0.1, 2_000, 100);
        // α = 0.1·2000/100 = 2; a query with |q(Hs)| = 0, |q(D)| = 100:
        // 100/2 = 50 > 10 ⇒ overflowing, benefit = k·α = 20 capped at
        // k = 10 (no query can cover more than k records).
        assert_eq!(e.predict_type(100, 0), QueryType::Overflowing);
        assert_eq!(e.benefit(100, 0, 0), 10.0);
        // With α < 1 (the realistic regime) the fallback is k·α uncapped.
        let e2 = Estimator::new(EstimatorKind::Biased, 10, 0.01, 2_000, 100);
        assert!((e2.alpha() - 0.2).abs() < 1e-12);
        assert_eq!(e2.benefit(100, 0, 0), 2.0);
    }

    #[test]
    fn no_sample_degenerates_to_simple() {
        let e = Estimator::new(EstimatorKind::Biased, 10, 0.0, 100, 0);
        assert_eq!(e.alpha(), 0.0);
        assert_eq!(e.predict_type(50, 0), QueryType::Solid);
        assert_eq!(e.benefit(50, 0, 0), 50.0); // |q(D)| — QSel-Simple's value
    }

    #[test]
    fn unbiased_zero_intersection_gives_zero_benefit() {
        let e = Estimator::new(EstimatorKind::Unbiased, 100, 0.01, 10_000, 1_000);
        assert_eq!(e.benefit(40, 1, 0), 0.0);
    }

    #[test]
    fn benefit_is_monotone_in_freq_d_for_biased() {
        let e = Estimator::new(EstimatorKind::Biased, 100, 0.01, 10_000, 1_000);
        for fhs in [0usize, 1, 2, 5, 50] {
            let mut last = f64::INFINITY;
            for fd in (1..=100).rev() {
                let b = e.benefit(fd, fhs, 0);
                assert!(b <= last + 1e-12, "non-monotone at fd={fd} fhs={fhs}");
                last = b;
            }
        }
    }
}
