//! Dense interning of hidden-record external ids.
//!
//! Every per-record memo in the crawl loop (tokenized page documents,
//! local-match candidate sets) used to be a `HashMap<ExternalId, _>`. Top-k
//! pages re-surface the same popular records constantly, so those lookups
//! run millions of times per crawl — and each one re-hashes a 64-bit key
//! through SipHash and chases map buckets. [`RecordArena`] interns each
//! external id into a dense `u32` the first time it is seen; every memo
//! then becomes a flat `Vec` indexed by that id, and repeat appearances
//! cost one open-addressed probe here plus direct indexing everywhere else.
//!
//! The table is deliberately not `std::collections::HashMap`:
//!
//! * Fibonacci multiplicative hashing on the raw id — external ids are
//!   already near-uniform integers, so one multiply beats SipHash by an
//!   order of magnitude and is trivially deterministic (no per-process
//!   `RandomState`).
//! * Linear probing over parallel `u64` key / `u32` id arrays keeps probes
//!   inside one or two cache lines.
//! * Dense ids are assigned in first-appearance order, which is itself
//!   deterministic for a deterministic crawl — so the arena's iteration
//!   order can safely feed digests and reports.

use smartcrawl_hidden::ExternalId;

/// Sentinel in the id table marking an empty slot.
const EMPTY: u32 = u32::MAX;

/// 2⁶⁴ / φ, the usual Fibonacci-hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Interns [`ExternalId`]s into dense `u32` ids, first-appearance order.
#[derive(Debug, Clone)]
pub struct RecordArena {
    /// Open-addressed slots: the raw external id in each occupied slot.
    table_keys: Vec<u64>,
    /// Parallel to `table_keys`: dense id, or [`EMPTY`].
    table_ids: Vec<u32>,
    /// Dense id → external id (insertion order).
    dense: Vec<ExternalId>,
    /// `64 - log2(capacity)`: maps a hash to a home slot.
    shift: u32,
}

impl Default for RecordArena {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordArena {
    /// An empty arena with a small pre-sized table.
    pub fn new() -> Self {
        const INITIAL: usize = 16;
        Self {
            table_keys: vec![0; INITIAL],
            table_ids: vec![EMPTY; INITIAL],
            dense: Vec::new(),
            shift: 64 - INITIAL.trailing_zeros(),
        }
    }

    /// Number of distinct ids interned.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Interns `id`, returning its dense id and whether it was new.
    pub fn intern(&mut self, id: ExternalId) -> (u32, bool) {
        // Grow at 7/8 load so probe chains stay short.
        if (self.dense.len() + 1) * 8 > self.table_keys.len() * 7 {
            self.grow();
        }
        let mask = self.table_keys.len() - 1;
        let mut slot = (id.0.wrapping_mul(FIB) >> self.shift) as usize;
        loop {
            let d = self.table_ids[slot];
            if d == EMPTY {
                let fresh = self.dense.len() as u32;
                self.table_keys[slot] = id.0;
                self.table_ids[slot] = fresh;
                self.dense.push(id);
                return (fresh, true);
            }
            if self.table_keys[slot] == id.0 {
                return (d, false);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The dense id of `id`, if it has been interned.
    pub fn get(&self, id: ExternalId) -> Option<u32> {
        let mask = self.table_keys.len() - 1;
        let mut slot = (id.0.wrapping_mul(FIB) >> self.shift) as usize;
        loop {
            let d = self.table_ids[slot];
            if d == EMPTY {
                return None;
            }
            if self.table_keys[slot] == id.0 {
                return Some(d);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The external id behind dense id `dense`.
    pub fn external(&self, dense: u32) -> ExternalId {
        self.dense[dense as usize]
    }

    /// Doubles the table and re-seats every interned id. Rehashing walks
    /// `dense` in insertion order, so the rebuilt table is a pure function
    /// of the interned set — no iteration-order nondeterminism.
    fn grow(&mut self) {
        let cap = self.table_keys.len() * 2;
        self.table_keys = vec![0; cap];
        self.table_ids = vec![EMPTY; cap];
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for (d, id) in self.dense.iter().enumerate() {
            let mut slot = (id.0.wrapping_mul(FIB) >> self.shift) as usize;
            while self.table_ids[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table_keys[slot] = id.0;
            self.table_ids[slot] = d as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_first_appearance_order() {
        let mut a = RecordArena::new();
        assert_eq!(a.intern(ExternalId(40)), (0, true));
        assert_eq!(a.intern(ExternalId(7)), (1, true));
        assert_eq!(a.intern(ExternalId(40)), (0, false));
        assert_eq!(a.intern(ExternalId(0)), (2, true)); // id 0 is a real key
        assert_eq!(a.len(), 3);
        assert_eq!(a.external(1), ExternalId(7));
        assert_eq!(a.get(ExternalId(0)), Some(2));
        assert_eq!(a.get(ExternalId(99)), None);
    }

    #[test]
    fn survives_growth_with_collisions() {
        let mut a = RecordArena::new();
        // Force several doublings; step by a multiple of the table size to
        // provoke clustered home slots.
        for i in 0..10_000u64 {
            let (d, fresh) = a.intern(ExternalId(i * 64));
            assert_eq!(d as u64, i);
            assert!(fresh);
        }
        assert_eq!(a.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(a.get(ExternalId(i * 64)), Some(i as u32), "id {i}");
            assert_eq!(a.intern(ExternalId(i * 64)), (i as u32, false));
        }
    }
}
