//! Shared tokenization state for one crawl.
//!
//! The local index, the sample index, the query pool, and the documents of
//! records returned at crawl time must all live in a single vocabulary, or
//! token-id comparisons between them would be meaningless. [`TextContext`]
//! bundles the tokenizer and that vocabulary; it stays mutable throughout a
//! crawl because returned hidden records can contain keywords never seen in
//! `D` (which must *not* be dropped — an extra unseen keyword changes both
//! exact equality and Jaccard similarity).

use smartcrawl_hidden::{ExternalId, Retrieved};
use smartcrawl_text::{Document, Tokenizer, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// Tokenizer + vocabulary shared by everything in one crawl.
#[derive(Debug, Default)]
pub struct TextContext {
    /// The normalization pipeline.
    pub tokenizer: Tokenizer,
    /// The crawl-wide vocabulary.
    pub vocab: Vocabulary,
    /// Memoized documents of retrieved hidden records, keyed by external
    /// id. A record's cells never change within a crawl and vocabulary
    /// interning is append-only, so tokenizing it once is enough; top-k
    /// pages re-surface the same popular records constantly, which makes
    /// this the hottest cache in the crawl loop. Never iterated, so the
    /// map's ordering cannot leak into results.
    page_docs: HashMap<ExternalId, Arc<Document>>,
}

impl TextContext {
    /// Creates a fresh context with default tokenization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes free text into the shared vocabulary.
    pub fn doc(&mut self, text: &str) -> Document {
        self.tokenizer.tokenize(text, &mut self.vocab)
    }

    /// Tokenizes a multi-field record into the shared vocabulary.
    pub fn doc_of_fields<S: AsRef<str>>(&mut self, fields: &[S]) -> Document {
        self.tokenizer.tokenize_fields(fields, &mut self.vocab)
    }

    /// The document of a retrieved hidden record, tokenized at most once
    /// per crawl (subsequent appearances of the same record are a map
    /// lookup plus a refcount bump).
    pub fn doc_of_retrieved(&mut self, r: &Retrieved) -> Arc<Document> {
        if let Some(d) = self.page_docs.get(&r.external_id) {
            return Arc::clone(d);
        }
        let d = Arc::new(self.tokenizer.tokenize_fields(&r.fields[..], &mut self.vocab));
        self.page_docs.insert(r.external_id, Arc::clone(&d));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_interns_into_shared_vocab() {
        let mut ctx = TextContext::new();
        let a = ctx.doc("thai noodle house");
        let b = ctx.doc("noodle bar");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.intersection_size(&b), 1); // "noodle" shared id
        assert_eq!(ctx.vocab.len(), 4);
    }

    #[test]
    fn doc_of_fields_concatenates() {
        let mut ctx = TextContext::new();
        let d = ctx.doc_of_fields(&["thai house", "phoenix"]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn doc_of_retrieved_memoizes_per_external_id() {
        let mut ctx = TextContext::new();
        let r = Retrieved::new(ExternalId(7), vec!["thai noodle house".into()], vec![]);
        let a = ctx.doc_of_retrieved(&r);
        let b = ctx.doc_of_retrieved(&r);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the memoized doc");
        assert_eq!(*a, ctx.doc_of_fields(&["thai noodle house"]));
        // A different record still tokenizes fresh.
        let other = Retrieved::new(ExternalId(8), vec!["noodle bar".into()], vec![]);
        assert_eq!(ctx.doc_of_retrieved(&other).len(), 2);
    }
}
