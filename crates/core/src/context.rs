//! Shared tokenization state for one crawl.
//!
//! The local index, the sample index, the query pool, and the documents of
//! records returned at crawl time must all live in a single vocabulary, or
//! token-id comparisons between them would be meaningless. [`TextContext`]
//! bundles the tokenizer and that vocabulary; it stays mutable throughout a
//! crawl because returned hidden records can contain keywords never seen in
//! `D` (which must *not* be dropped — an extra unseen keyword changes both
//! exact equality and Jaccard similarity).

use smartcrawl_text::{Document, Tokenizer, Vocabulary};

/// Tokenizer + vocabulary shared by everything in one crawl.
#[derive(Debug, Default)]
pub struct TextContext {
    /// The normalization pipeline.
    pub tokenizer: Tokenizer,
    /// The crawl-wide vocabulary.
    pub vocab: Vocabulary,
}

impl TextContext {
    /// Creates a fresh context with default tokenization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes free text into the shared vocabulary.
    pub fn doc(&mut self, text: &str) -> Document {
        self.tokenizer.tokenize(text, &mut self.vocab)
    }

    /// Tokenizes a multi-field record into the shared vocabulary.
    pub fn doc_of_fields<S: AsRef<str>>(&mut self, fields: &[S]) -> Document {
        self.tokenizer.tokenize_fields(fields, &mut self.vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_interns_into_shared_vocab() {
        let mut ctx = TextContext::new();
        let a = ctx.doc("thai noodle house");
        let b = ctx.doc("noodle bar");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.intersection_size(&b), 1); // "noodle" shared id
        assert_eq!(ctx.vocab.len(), 4);
    }

    #[test]
    fn doc_of_fields_concatenates() {
        let mut ctx = TextContext::new();
        let d = ctx.doc_of_fields(&["thai house", "phoenix"]);
        assert_eq!(d.len(), 3);
    }
}
