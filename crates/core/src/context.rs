//! Shared tokenization state for one crawl.
//!
//! The local index, the sample index, the query pool, and the documents of
//! records returned at crawl time must all live in a single vocabulary, or
//! token-id comparisons between them would be meaningless. [`TextContext`]
//! bundles the tokenizer and that vocabulary; it stays mutable throughout a
//! crawl because returned hidden records can contain keywords never seen in
//! `D` (which must *not* be dropped — an extra unseen keyword changes both
//! exact equality and Jaccard similarity).

use crate::arena::RecordArena;
use smartcrawl_hidden::Retrieved;
use smartcrawl_text::{Document, Tokenizer, Vocabulary};
use std::sync::Arc;

/// Tokenizer + vocabulary shared by everything in one crawl.
#[derive(Debug, Default)]
pub struct TextContext {
    /// The normalization pipeline.
    pub tokenizer: Tokenizer,
    /// The crawl-wide vocabulary.
    pub vocab: Vocabulary,
    /// Dense interning of retrieved hidden records' external ids:
    /// first-appearance order, so downstream memos are flat vectors.
    arena: RecordArena,
    /// Memoized documents of retrieved hidden records, indexed by the
    /// arena's dense id (invariant: a document is pushed the moment its id
    /// is interned, so `page_docs.len() == arena.len()` at all times). A
    /// record's cells never change within a crawl and vocabulary interning
    /// is append-only, so tokenizing once is enough; top-k pages re-surface
    /// the same popular records constantly, which makes this the hottest
    /// cache in the crawl loop.
    page_docs: Vec<Arc<Document>>,
}

impl TextContext {
    /// Creates a fresh context with default tokenization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes free text into the shared vocabulary.
    pub fn doc(&mut self, text: &str) -> Document {
        self.tokenizer.tokenize(text, &mut self.vocab)
    }

    /// Tokenizes a multi-field record into the shared vocabulary.
    pub fn doc_of_fields<S: AsRef<str>>(&mut self, fields: &[S]) -> Document {
        self.tokenizer.tokenize_fields(fields, &mut self.vocab)
    }

    /// Interns the retrieved record's external id, tokenizing its document
    /// on first sight. Repeat appearances cost one arena probe — no
    /// tokenization, no document clone. The returned dense id indexes
    /// [`TextContext::dense_doc`] and any caller-side per-record memo.
    pub fn intern_retrieved(&mut self, r: &Retrieved) -> u32 {
        let (dense, fresh) = self.arena.intern(r.external_id);
        if fresh {
            let d = Arc::new(self.tokenizer.tokenize_fields(&r.fields[..], &mut self.vocab));
            self.page_docs.push(d);
        }
        dense
    }

    /// The memoized document behind a dense id from
    /// [`TextContext::intern_retrieved`].
    pub fn dense_doc(&self, dense: u32) -> &Arc<Document> {
        // lint:allow(panic-freedom) dense ids are minted by intern_retrieved, which pushes the doc before returning
        &self.page_docs[dense as usize]
    }

    /// Number of distinct retrieved records interned so far.
    pub fn interned_records(&self) -> usize {
        self.arena.len()
    }

    /// The document of a retrieved hidden record, tokenized at most once
    /// per crawl (subsequent appearances of the same record are an arena
    /// probe plus a refcount bump).
    pub fn doc_of_retrieved(&mut self, r: &Retrieved) -> Arc<Document> {
        let dense = self.intern_retrieved(r);
        // lint:allow(panic-freedom) intern_retrieved just pushed or found the doc at this id
        Arc::clone(&self.page_docs[dense as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::ExternalId;

    #[test]
    fn doc_interns_into_shared_vocab() {
        let mut ctx = TextContext::new();
        let a = ctx.doc("thai noodle house");
        let b = ctx.doc("noodle bar");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.intersection_size(&b), 1); // "noodle" shared id
        assert_eq!(ctx.vocab.len(), 4);
    }

    #[test]
    fn doc_of_fields_concatenates() {
        let mut ctx = TextContext::new();
        let d = ctx.doc_of_fields(&["thai house", "phoenix"]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn doc_of_retrieved_memoizes_per_external_id() {
        let mut ctx = TextContext::new();
        let r = Retrieved::new(ExternalId(7), vec!["thai noodle house".into()], vec![]);
        let a = ctx.doc_of_retrieved(&r);
        let b = ctx.doc_of_retrieved(&r);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the memoized doc");
        assert_eq!(*a, ctx.doc_of_fields(&["thai noodle house"]));
        // A different record still tokenizes fresh.
        let other = Retrieved::new(ExternalId(8), vec!["noodle bar".into()], vec![]);
        assert_eq!(ctx.doc_of_retrieved(&other).len(), 2);
    }

    #[test]
    fn intern_retrieved_assigns_dense_ids_in_first_appearance_order() {
        let mut ctx = TextContext::new();
        let a = Retrieved::new(ExternalId(90), vec!["thai house".into()], vec![]);
        let b = Retrieved::new(ExternalId(3), vec!["noodle bar".into()], vec![]);
        assert_eq!(ctx.intern_retrieved(&a), 0);
        assert_eq!(ctx.intern_retrieved(&b), 1);
        assert_eq!(ctx.intern_retrieved(&a), 0, "repeat keeps its dense id");
        assert_eq!(ctx.interned_records(), 2);
        let expect = ctx.doc_of_fields(&["noodle bar"]);
        assert_eq!(**ctx.dense_doc(1), expect);
    }
}
