//! Query-selection strategies (paper §3.2–§6).
//!
//! All strategies share the same skeleton: iteratively pick the pool query
//! with the largest (estimated) benefit, issue it, account for what came
//! back, and update benefits. They differ in two policies:
//!
//! * **benefit** — what priority a query gets in the queue;
//! * **removal** — which local records leave `D` after a query is issued.
//!
//! | Strategy | Benefit | Removal |
//! |---|---|---|
//! | QSel-Ideal (Alg. 1) | true `|q(D)_cover|` via an oracle | covered records |
//! | QSel-Simple (Alg. 2) | `|q(D)|` | covered records |
//! | QSel-Bound (Alg. 3) | `|q(D)|` | covered if `q(ΔD) = ∅`, else only `q(ΔD)`; query re-enters the pool on mismatch |
//! | QSel-Est (Alg. 4) | Table 1 estimators (biased/unbiased) | covered ∪ (`q(D)` when the query is solid — the ΔD prediction of §4.2) |
//!
//! The engine implementing the shared skeleton lives in [`engine`]; the
//! public crawlers in [`crate::crawl`] wrap it.

pub mod engine;

pub use engine::{probe_engine_setup, SelectionStats, SetupProbe};

use crate::estimate::EstimatorKind;

/// How QSel-Est decides that a query was solid before applying the §4.2
/// ΔD-removal (remove all of `q(D)`, not just the covered records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaRemoval {
    /// A query is solid when the returned page is shorter than `k` — a
    /// *proof* of solidity under Definition 2, making the ΔD prediction
    /// sound. (Our default; see DESIGN.md §7.)
    Observed,
    /// A query is solid when the sample predicts it so (`|q(Hs)|/θ ≤ k`,
    /// with the §6.2 α-rule) — the literal reading of Algorithm 4.
    Predicted,
}

/// A query-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// QSel-Ideal: true benefits through an oracle (evaluation upper
    /// bound; only usable via [`crate::crawl::ideal_crawl`]).
    Ideal,
    /// QSel-Simple: benefit = `|q(D)|`.
    Simple,
    /// QSel-Bound: QSel-Simple with the bounded-regret removal policy of
    /// Algorithm 3 (sound only without a top-k constraint).
    Bound,
    /// QSel-Est: sample-based estimators.
    Est {
        /// Biased (SmartCrawl-B) or unbiased (SmartCrawl-U) estimators.
        kind: EstimatorKind,
        /// Solidity policy for ΔD removal.
        delta_removal: DeltaRemoval,
    },
}

impl Strategy {
    /// SmartCrawl-B: biased estimators, observed solidity.
    pub fn est_biased() -> Self {
        Strategy::Est { kind: EstimatorKind::Biased, delta_removal: DeltaRemoval::Observed }
    }

    /// SmartCrawl-U: unbiased estimators, observed solidity.
    pub fn est_unbiased() -> Self {
        Strategy::Est { kind: EstimatorKind::Unbiased, delta_removal: DeltaRemoval::Observed }
    }

    /// Whether zero-benefit pool entries should be issued anyway.
    ///
    /// Under Ideal/Simple/Bound a zero benefit proves (under the paper's
    /// assumptions) the query is useless, so the engine skips it without
    /// spending budget. QSel-Est issues them: estimated benefits can be
    /// zero for genuinely useful queries (the paper observes SmartCrawl-U
    /// "selecting queries randomly" among zero ties), and skipping would
    /// silently turn QSel-Est into a different algorithm.
    pub(crate) fn issues_zero_benefit(&self) -> bool {
        matches!(self, Strategy::Est { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_expected_kinds() {
        assert!(matches!(
            Strategy::est_biased(),
            Strategy::Est { kind: EstimatorKind::Biased, delta_removal: DeltaRemoval::Observed }
        ));
        assert!(matches!(
            Strategy::est_unbiased(),
            Strategy::Est { kind: EstimatorKind::Unbiased, .. }
        ));
    }

    #[test]
    fn zero_benefit_policy() {
        assert!(!Strategy::Ideal.issues_zero_benefit());
        assert!(!Strategy::Simple.issues_zero_benefit());
        assert!(!Strategy::Bound.issues_zero_benefit());
        assert!(Strategy::est_biased().issues_zero_benefit());
    }
}
