//! The shared selection engine: benefit maintenance + removal bookkeeping
//! (paper §6.3 / Algorithm 4, generalized over all QSel-* strategies).
//!
//! State layout follows Figure 3: an inverted index on `D` (inside
//! [`LocalDb`]), a forward index record → queries, and a lazily-updated
//! priority queue. Removing a covered record touches only the queries in
//! its forward list (their frequencies decrement and their queue entries
//! are marked stale); priorities are recomputed on demand when a stale
//! query surfaces at the top.

use crate::context::TextContext;
use crate::estimate::{Estimator, QueryType};
use crate::local::{LocalDb, LocalMatchIndex};
use crate::pool::QueryPool;
use crate::sample::SampleIndex;
use crate::select::{DeltaRemoval, Strategy};
use smartcrawl_hidden::{HiddenDb, Retrieved};
use smartcrawl_index::{LazyQueue, QueryId, RemovalScratch};
use smartcrawl_match::Matcher;
use smartcrawl_par::{par_map, par_map_indexed};
use smartcrawl_store::AnyForward;
use smartcrawl_text::RecordId;
use std::sync::Arc;
use std::time::Instant;

/// Work counters for one crawl's selection machinery (paper Appendix B:
/// the efficient implementation's cost is dominated by on-demand priority
/// recomputations and forward-index touches, both far below the naive
/// rescan's `|Q|` work per iteration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Queries popped as selected (≤ budget, plus zero-benefit skips).
    pub pops: usize,
    /// Priority recomputations triggered by stale queue entries — the
    /// paper's `t` in the `O(b·t·log|Q|)` selection bound.
    pub stale_recomputes: usize,
    /// Forward-index touches (query-frequency decrements) from record
    /// removals — `Σ|F(d)|` over removed records.
    pub forward_touches: usize,
    /// QSel-Ideal only: oracle cover-set evaluations.
    pub oracle_evals: usize,
    /// Queue invalidations absorbed by the generation stamps: the entry
    /// was already marked stale, so the extra mark cost nothing.
    pub stamp_skips: u64,
    /// Coalesced incremental state updates applied in place of full
    /// recomputation: per-query `|q(D)|` / matched-count deltas (one per
    /// touched query per removal batch) and QSel-Ideal live-cover
    /// decrements. The ratio of this to `stale_recomputes` is how much
    /// bookkeeping the delta path absorbed before any priority had to be
    /// recomputed.
    pub incremental_updates: usize,
    /// Wall time spent matching result pages against `D` (tokenization +
    /// match-index probes), in nanoseconds. Profile only — never read back
    /// into any selection decision.
    pub page_match_ns: u64,
    /// Wall time spent applying removals through the forward index, in
    /// nanoseconds. Profile only, like `page_match_ns`.
    pub removal_ns: u64,
}

/// What happened when a query's page was absorbed.
#[derive(Debug, Default)]
pub(crate) struct ProcessOutcome {
    /// `(local record, page position)` pairs newly matched by this page —
    /// the enrichment assignments.
    pub newly_covered: Vec<(usize, usize)>,
    /// Local records removed from `D` (covered and/or ΔD-predicted).
    pub removed: usize,
}

/// The selection engine driving one crawl.
pub(crate) struct Engine<'a> {
    local: &'a LocalDb,
    match_index: LocalMatchIndex<'a>,
    pool: QueryPool,
    forward: AnyForward,
    queue: LazyQueue,
    /// Records still in `D` (not covered, not ΔD-removed).
    live: Vec<bool>,
    live_count: usize,
    /// Records ever covered (for enrichment dedup; a record can be removed
    /// without being covered).
    covered: Vec<bool>,
    /// Scratch bitset for page absorption: which records the *current*
    /// page has already covered. Replaces an `O(|page|·matches)` linear
    /// scan of `covered_now`; bits are cleared sparsely after each page so
    /// the allocation is reused across the whole crawl.
    page_seen: Vec<bool>,
    /// Current `|q(D)|` per query.
    freq: Vec<u32>,
    /// Fixed `|q(Hs)|` per query.
    freq_hs: Vec<u32>,
    /// Current `|q(D) ∩̃ q(Hs)|` per query (live records with a sample
    /// match).
    matched_cnt: Vec<u32>,
    /// Per local record: matches something in the sample.
    sample_match: Vec<bool>,
    estimator: Option<Estimator>,
    strategy: Strategy,
    matcher: Matcher,
    k: usize,
    /// QSel-Ideal: covered local ids per query, computed once on demand.
    cover_cache: Vec<Option<Vec<u32>>>,
    /// QSel-Ideal: number of *live* members of each cached cover set,
    /// maintained incrementally under removals via `cover_queries`. Always
    /// equals recounting `cover_cache[q]` against `live`, so the O(1) read
    /// in `priority` is trace-identical to the recount it replaces.
    live_cover: Vec<u32>,
    /// QSel-Ideal inverse of the cover cache: local record → queries whose
    /// cached cover contains it. Only members live at cache-fill time are
    /// registered — dead records can never be removed again, so they never
    /// need a decrement.
    cover_queries: Vec<Vec<u32>>,
    /// Per retrieved record (dense arena id): the local records its
    /// document matches, liveness-unfiltered — [`LocalMatchIndex`] probes
    /// are pure in everything but liveness, so one probe per distinct
    /// record serves the whole crawl; callers filter by `live` at use.
    match_memo: Vec<Option<Box<[u32]>>>,
    /// Reusable buffers for batched forward-index removal.
    removal_scratch: RemovalScratch,
    /// Reusable newly-dead-record buffer for [`Engine::remove_records`]:
    /// one allocation for the whole crawl instead of one per absorbed
    /// page (the removal path runs once per issued query).
    removal_rids: Vec<RecordId>,
    /// QSel-Ideal's free evaluation access.
    oracle: Option<&'a HiddenDb>,
    /// Work counters (Appendix B instrumentation).
    pub(crate) stats: SelectionStats,
    /// Shared tokenization state (pages are tokenized into it).
    pub(crate) ctx: TextContext,
}

impl<'a> Engine<'a> {
    /// Assembles the engine. `sample` may be [`SampleIndex::empty`] for
    /// strategies that do not use one; `oracle` is required for
    /// [`Strategy::Ideal`] and ignored otherwise.
    #[allow(clippy::too_many_arguments)] // assembled once, by the two crawl entry points
    pub(crate) fn new(
        local: &'a LocalDb,
        sample: &SampleIndex,
        pool: QueryPool,
        strategy: Strategy,
        matcher: Matcher,
        k: usize,
        omega: f64,
        oracle: Option<&'a HiddenDb>,
        ctx: TextContext,
    ) -> Self {
        let n_queries = pool.len();
        let freq = pool.frequencies();
        // Per-query sample statistics are independent lookups — the setup
        // hot path on fig5-scale local databases.
        let freq_hs: Vec<u32> = par_map(pool.queries(), |q| sample.frequency(q.tokens()) as u32);
        let sample_match = sample.local_matches(local, matcher);
        let matched_cnt: Vec<u32> = par_map(pool.all_matches(), |m| {
            m.iter().filter(|rid| sample_match[rid.index()]).count() as u32
        });
        // Same backend as the inverted index: a disk-backed run keeps the
        // forward rows on disk too. A build failure at this point means
        // the store directory vanished between index and engine setup.
        let forward = match local.build_forward(pool.all_matches()) {
            Ok(f) => f,
            // lint:allow(panic-freedom) setup-time store failure is fatal by design
            Err(e) => panic!("forward index build failed: {e}"),
        };
        let estimator = match strategy {
            Strategy::Est { kind, .. } => Some(
                Estimator::new(kind, k, sample.theta(), local.len(), sample.len())
                    .with_omega(omega),
            ),
            _ => None,
        };

        // Initial priorities. For Ideal we seed with the upper bound
        // min(|q(D)|, k) and mark everything dirty: the lazy queue then
        // evaluates true benefits only for queries that ever look
        // promising (classic lazy-greedy).
        let initial: Vec<f64> = par_map_indexed(&freq, |i, &f| match strategy {
            Strategy::Ideal => (f as usize).min(k) as f64,
            Strategy::Simple | Strategy::Bound => f as f64,
            Strategy::Est { .. } => estimator.expect("estimator exists for Est").benefit(
                f as usize,
                freq_hs[i] as usize,
                matched_cnt[i] as usize,
            ),
        });
        let mut queue = LazyQueue::new(&initial);
        if matches!(strategy, Strategy::Ideal) {
            assert!(oracle.is_some(), "QSel-Ideal requires oracle access");
            for i in 0..n_queries {
                queue.mark_dirty(QueryId(i as u32));
            }
        }

        let n_local = local.len();
        Self {
            match_index: LocalMatchIndex::build(local),
            local,
            pool,
            forward,
            queue,
            live: vec![true; n_local],
            live_count: n_local,
            covered: vec![false; n_local],
            page_seen: vec![false; n_local],
            freq,
            freq_hs,
            matched_cnt,
            sample_match,
            estimator,
            strategy,
            matcher,
            k,
            cover_cache: vec![None; n_queries],
            live_cover: vec![0; n_queries],
            cover_queries: vec![Vec::new(); n_local],
            match_memo: Vec::new(),
            removal_scratch: RemovalScratch::default(),
            removal_rids: Vec::new(),
            oracle,
            stats: SelectionStats::default(),
            ctx,
        }
    }

    /// Records still live in `D`.
    pub(crate) fn live_count(&self) -> usize {
        self.live_count
    }

    /// Renders the keywords of a pool query.
    pub(crate) fn render(&self, qid: QueryId) -> Vec<String> {
        self.pool.render(qid, &self.ctx)
    }

    /// Pops the next query to issue (with its current priority), or `None`
    /// when the pool is exhausted. Zero-benefit entries are skipped
    /// (without consuming budget) for strategies whose zero means
    /// provably-useless.
    pub(crate) fn select_next(&mut self) -> Option<(QueryId, f64)> {
        loop {
            // Take the queue out of `self` so the recompute closure can
            // borrow the rest of the engine mutably (oracle evaluation
            // tokenizes pages into `ctx`).
            let mut queue = std::mem::take(&mut self.queue);
            let popped = queue.pop_max(|q| {
                self.stats.stale_recomputes += 1;
                self.priority(q)
            });
            self.queue = queue;
            let (qid, prio) = popped?;
            self.stats.pops += 1;
            if prio <= 0.0 && !self.strategy.issues_zero_benefit() {
                continue; // provably useless; do not spend budget
            }
            return Some((qid, prio));
        }
    }

    /// Peeks the next up-to-`m` queries [`Engine::select_next`] would
    /// issue, best first, without consuming them — the batch-selection
    /// hook behind [`QuerySource::next_queries`].
    ///
    /// Pops through a *clone* of the lazy queue, leaving the authoritative
    /// queue's stored priorities and staleness stamps byte-identical to a
    /// peek-free run. The obvious cheaper scheme — pop from the real queue
    /// and push everything back at its recomputed priority — is unsound
    /// for QSel-Est: a benefit can *rise* when a matched record is removed
    /// (`matched_cnt` drops while `freq` holds), and with rising
    /// priorities the pop order depends on *when* dirty entries are
    /// refreshed, because a dirty entry surfaces for recompute exactly
    /// when its stale stored priority is the heap maximum. Refreshing at
    /// peek time would store the lower current value, delay the entry's
    /// next surfacing, and reorder later pops relative to the sequential
    /// driver. The clone costs O(|Q|) per peek, on the driver thread only.
    pub(crate) fn peek_top(&mut self, m: usize) -> Vec<QueryId> {
        let mut hints = Vec::with_capacity(m);
        let mut queue = self.queue.clone();
        while hints.len() < m {
            let next = queue.pop_max(|q| {
                self.stats.stale_recomputes += 1;
                self.priority(q)
            });
            let Some((qid, prio)) = next else { break };
            if prio <= 0.0 && !self.strategy.issues_zero_benefit() {
                continue; // select_next would skip it; not a hint
            }
            hints.push(qid);
        }
        hints
    }

    /// Returns a popped query to the pool at its current priority — used
    /// when the query could not be served (e.g. dropped after exhausting
    /// its retries) so a later selection can still try it.
    pub(crate) fn requeue(&mut self, qid: QueryId) {
        let prio = self.priority(qid);
        self.queue.push(qid, prio);
    }

    /// Current priority of a query under the engine's strategy.
    fn priority(&mut self, qid: QueryId) -> f64 {
        let i = qid.index();
        match self.strategy {
            Strategy::Simple | Strategy::Bound => self.freq[i] as f64,
            Strategy::Est { .. } => self.estimator.expect("estimator").benefit(
                self.freq[i] as usize,
                self.freq_hs[i] as usize,
                self.matched_cnt[i] as usize,
            ),
            Strategy::Ideal => {
                if self.cover_cache[i].is_none() {
                    let cover = self.compute_cover(qid);
                    // Register live members in the inverse index and seed
                    // the incremental live count; from here on removals
                    // keep it current and this branch is an O(1) read.
                    let mut live_members = 0u32;
                    for &d in &cover {
                        if self.live[d as usize] {
                            live_members += 1;
                            self.cover_queries[d as usize].push(qid.0);
                        }
                    }
                    self.live_cover[i] = live_members;
                    self.cover_cache[i] = Some(cover);
                }
                f64::from(self.live_cover[i])
            }
        }
    }

    /// Oracle evaluation for QSel-Ideal: issue the query for free against
    /// the hidden database and record which local records its page covers.
    fn compute_cover(&mut self, qid: QueryId) -> Vec<u32> {
        self.stats.oracle_evals += 1;
        let oracle = self.oracle.expect("ideal strategy has an oracle");
        let keywords = self.pool.render(qid, &self.ctx);
        // lint:allow(budget-safety) QSel-Ideal's oracle evaluates queries for free by definition (§5.2); budgeted issuance happens later in the crawl session
        let page = oracle.search(&keywords);
        let mut covered: Vec<u32> = Vec::new();
        for r in &page {
            // The oracle cover is over all of `D` (no liveness filter), so
            // the memoized candidate set is usable as-is; repeat
            // appearances of a record skip matching *and* tokenization.
            let dense = self.ensure_candidates(r);
            covered.extend_from_slice(self.match_memo[dense as usize].as_deref().expect("ensured"));
        }
        covered.sort_unstable();
        covered.dedup();
        covered
    }

    /// Interns the retrieved record and fills its match-candidate memo
    /// (the local records its document matches, liveness-unfiltered).
    /// Returns the dense arena id indexing `match_memo`.
    fn ensure_candidates(&mut self, r: &Retrieved) -> u32 {
        let dense = self.ctx.intern_retrieved(r);
        let di = dense as usize;
        if self.match_memo.len() <= di {
            self.match_memo.resize(di + 1, None);
        }
        if self.match_memo[di].is_none() {
            let doc = Arc::clone(self.ctx.dense_doc(dense));
            let cands: Vec<u32> = self
                .match_index
                .find_matches(&doc, self.matcher, None)
                .into_iter()
                .map(|d| d as u32)
                .collect();
            self.match_memo[di] = Some(cands.into_boxed_slice());
        }
        dense
    }

    /// Matches a page against the live local records through the candidate
    /// memo: a record's first appearance in the crawl pays for
    /// tokenization and the match-index probe, every later appearance is
    /// an arena hit plus a memo read. `page_seen` dedups within the page
    /// in O(1) per match and is left set for the covered records — callers
    /// reset it sparsely via the returned `covered_now` once the removal
    /// policy no longer needs it.
    ///
    /// Returns `(newly_covered, covered_now, page_dense)` where
    /// `page_dense[i]` is the dense arena id of `page[i]`.
    #[allow(clippy::type_complexity)] // the three parallel outputs of one page absorption
    fn match_page(&mut self, page: &[Retrieved]) -> (Vec<(usize, usize)>, Vec<usize>, Vec<u32>) {
        let t_match = Instant::now();
        let mut newly_covered: Vec<(usize, usize)> = Vec::new();
        let mut covered_now: Vec<usize> = Vec::new();
        let mut page_dense: Vec<u32> = Vec::with_capacity(page.len());
        for (pi, r) in page.iter().enumerate() {
            let dense = self.ensure_candidates(r);
            page_dense.push(dense);
            let Self {
                match_memo,
                live,
                page_seen,
                covered,
                ..
            } = &mut *self;
            for &d in match_memo[dense as usize].as_deref().expect("ensured") {
                let d = d as usize;
                if live[d] && !page_seen[d] {
                    page_seen[d] = true;
                    covered_now.push(d);
                    if !covered[d] {
                        covered[d] = true;
                        newly_covered.push((d, pi));
                    }
                }
            }
        }
        self.stats.page_match_ns += t_match.elapsed().as_nanos() as u64;
        (newly_covered, covered_now, page_dense)
    }

    /// Absorbs the result page of issued query `qid`: computes the covered
    /// records, applies the strategy's removal policy, and refreshes the
    /// benefit bookkeeping.
    pub(crate) fn process(&mut self, qid: QueryId, page: &[Retrieved]) -> ProcessOutcome {
        // 1. Match the page against the live local records.
        let (newly_covered, covered_now, page_dense) = self.match_page(page);

        // 2. Removal policy.
        let mut to_remove: Vec<usize> = covered_now.clone();
        let mut requeue = false;
        match self.strategy {
            Strategy::Simple | Strategy::Ideal => {}
            Strategy::Est { delta_removal, .. } => {
                if self.is_solid(qid, page.len(), &page_dense, delta_removal) {
                    // §4.2: everything in q(D) that was not covered cannot
                    // be in H — predicted ΔD, remove it too.
                    to_remove.extend(
                        self.pool
                            .matches(qid)
                            .iter()
                            .map(|rid| rid.index())
                            .filter(|&d| self.live[d]),
                    );
                }
            }
            Strategy::Bound => {
                // Algorithm 3: q(ΔD) = live q(D) not covered by the page
                // (`page_seen` holds exactly the covered set right now).
                let q_delta: Vec<usize> = self
                    .pool
                    .matches(qid)
                    .iter()
                    .map(|rid| rid.index())
                    .filter(|&d| self.live[d] && !self.page_seen[d])
                    .collect();
                if q_delta.is_empty() {
                    // Situation (1): trustably beneficial — covered leave D.
                } else {
                    // Situation (2): remove only q(ΔD); the covered records
                    // stay in D and the query returns to the pool.
                    to_remove = q_delta;
                    requeue = true;
                }
            }
        }
        to_remove.sort_unstable();
        to_remove.dedup();
        // Sparse reset: only the bits this page set.
        for &d in &covered_now {
            self.page_seen[d] = false;
        }

        // 3. Apply removals through the forward index (Fig. 3(b)/(c)).
        let t_remove = Instant::now();
        let removed = self.remove_records(&to_remove);
        self.stats.removal_ns += t_remove.elapsed().as_nanos() as u64;

        if requeue {
            let prio = self.freq[qid.index()] as f64;
            self.queue.push(qid, prio);
        }

        ProcessOutcome {
            newly_covered,
            removed,
        }
    }

    /// Replaces the engine's hidden-database sample mid-crawl (runtime
    /// sampling, paper §9 future work): recomputes `|q(Hs)|`, the matched
    /// intersections, the estimator, and rebuilds every live priority
    /// (priorities can *rise* with a better sample, which the lazy dirty
    /// mechanism alone cannot express).
    ///
    /// Only meaningful for [`Strategy::Est`]; a no-op otherwise.
    pub(crate) fn refresh_sample(&mut self, sample: &SampleIndex) {
        let Some(old) = self.estimator else { return };
        self.freq_hs = par_map(self.pool.queries(), |q| sample.frequency(q.tokens()) as u32);
        self.sample_match = sample.local_matches(self.local, self.matcher);
        let (live, sample_match) = (&self.live, &self.sample_match);
        self.matched_cnt = par_map(self.pool.all_matches(), |m| {
            m.iter()
                .filter(|rid| live[rid.index()] && sample_match[rid.index()])
                .count() as u32
        });
        let estimator = Estimator::new(
            old.kind(),
            self.k,
            sample.theta(),
            self.local.len(),
            sample.len(),
        )
        .with_omega(old.omega());
        self.estimator = Some(estimator);
        let (freq, freq_hs, matched) = (&self.freq, &self.freq_hs, &self.matched_cnt);
        self.queue.reprioritize(|q| {
            let i = q.index();
            estimator.benefit(freq[i] as usize, freq_hs[i] as usize, matched[i] as usize)
        });
    }

    /// Absorbs a page obtained outside the selection loop (e.g. a sampling
    /// round's result): covered records are matched and removed, but no
    /// query-pool entry is consumed and no ΔD prediction is applied.
    pub(crate) fn process_external(&mut self, page: &[Retrieved]) -> ProcessOutcome {
        let (newly_covered, covered_now, _page_dense) = self.match_page(page);
        for &d in &covered_now {
            self.page_seen[d] = false;
        }
        let t_remove = Instant::now();
        let removed = self.remove_records(&covered_now);
        self.stats.removal_ns += t_remove.elapsed().as_nanos() as u64;
        ProcessOutcome {
            newly_covered,
            removed,
        }
    }

    /// Removes records from `D`, updating frequencies, matched counts, and
    /// queue staleness through the batched forward-index walk — the single
    /// removal path shared by every strategy's ΔD policy. A query matched
    /// by several records of the batch gets *one* coalesced frequency
    /// delta and one queue invalidation. Returns how many records were
    /// actually removed (already-dead records are skipped).
    fn remove_records(&mut self, records: &[usize]) -> usize {
        if records.is_empty() {
            return 0; // most pages remove nothing; skip the batch walk
        }
        let Self {
            live,
            live_count,
            cover_queries,
            live_cover,
            forward,
            queue,
            freq,
            matched_cnt,
            sample_match,
            stats,
            removal_scratch,
            removal_rids,
            ..
        } = &mut *self;
        let mut removed = 0usize;
        let rids = removal_rids;
        rids.clear();
        for &d in records {
            if !live[d] {
                continue;
            }
            live[d] = false;
            *live_count -= 1;
            removed += 1;
            rids.push(RecordId(d as u32));
            // QSel-Ideal: every cached cover containing `d` loses a live
            // member — an O(1) decrement instead of a recount at the next
            // priority read.
            for &q in &cover_queries[d] {
                live_cover[q as usize] -= 1;
                stats.incremental_updates += 1;
            }
        }
        stats.forward_touches += smartcrawl_index::remove_records_batch(
            forward,
            rids,
            |rid| sample_match[rid.index()],
            removal_scratch,
            |q, count, weighted| {
                let i = q.index();
                freq[i] = freq[i].saturating_sub(count);
                matched_cnt[i] = matched_cnt[i].saturating_sub(weighted);
                queue.mark_dirty(q);
                stats.incremental_updates += 1;
            },
        );
        removed
    }

    /// The engine's work counters, with the queue's internal stamp-skip
    /// counter merged in.
    pub(crate) fn stats(&self) -> SelectionStats {
        let mut s = self.stats;
        s.stamp_skips = self.queue.stamp_skips();
        s
    }

    /// Whether the issued query counts as solid for ΔD removal.
    ///
    /// Observed solidity has two sound witnesses:
    /// * the page is shorter than `k` — nothing was cut off;
    /// * the page is full but contains a record *not* satisfying the
    ///   query. Interfaces that return partial matches (Yelp-like
    ///   disjunctive search) rank full matches on top, so a partial match
    ///   on the page proves every full match was returned (§2: "they tend
    ///   to rank the records that contain all the query keywords to the
    ///   top").
    fn is_solid(
        &self,
        qid: QueryId,
        page_len: usize,
        page_dense: &[u32],
        policy: DeltaRemoval,
    ) -> bool {
        match policy {
            DeltaRemoval::Observed => {
                page_len < self.k || {
                    let qtokens = self.pool.query(qid).tokens();
                    page_dense
                        .iter()
                        .any(|&d| !self.ctx.dense_doc(d).contains_all(qtokens))
                }
            }
            DeltaRemoval::Predicted => {
                let i = qid.index();
                self.estimator
                    .expect("Est strategy has an estimator")
                    .predict_type(self.freq[i] as usize, self.freq_hs[i] as usize)
                    == QueryType::Solid
            }
        }
    }
}

/// A fingerprint of a fully-assembled selection engine's initial state.
///
/// Built by [`probe_engine_setup`] so out-of-crate callers (the perf
/// benchmark, the determinism property tests) can both *time* engine
/// assembly and *assert* that two assemblies — e.g. at different
/// `SMARTCRAWL_THREADS` — produced identical selection state, without the
/// engine itself becoming public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetupProbe {
    /// Pool size `|Q|`.
    pub pool_len: usize,
    /// Pool-generation provenance counters.
    pub pool_stats: crate::pool::PoolStats,
    /// FNV-1a digest over the engine's initial selection state: every pool
    /// query's tokens, its `q(D)` match set, and the `freq` / `freq_hs` /
    /// `matched_cnt` / `sample_match` vectors.
    pub digest: u64,
}

/// Assembles a selection engine exactly as the crawlers do and returns a
/// [`SetupProbe`] of its initial state (see there). Supports every
/// strategy except [`Strategy::Ideal`], which needs oracle access.
#[allow(clippy::too_many_arguments)] // mirrors Engine::new, assembled once per probe
pub fn probe_engine_setup(
    local: &LocalDb,
    sample: &SampleIndex,
    pool: QueryPool,
    strategy: Strategy,
    matcher: Matcher,
    k: usize,
    omega: f64,
    ctx: TextContext,
) -> SetupProbe {
    assert!(
        !matches!(strategy, Strategy::Ideal),
        "probe_engine_setup does not support QSel-Ideal (it requires an oracle)"
    );
    let pool_stats = pool.stats();
    let e = Engine::new(local, sample, pool, strategy, matcher, k, omega, None, ctx);

    // FNV-1a over little-endian words: not cryptographic, just a stable
    // order-sensitive fold so any divergence in the state vectors flips it.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            digest = (digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for q in e.pool.queries() {
        fold(q.tokens().len() as u64);
        for &t in q.tokens() {
            fold(u64::from(t.0));
        }
    }
    for m in e.pool.all_matches() {
        fold(m.len() as u64);
        for &rid in m {
            fold(u64::from(rid.0));
        }
    }
    for &f in &e.freq {
        fold(u64::from(f));
    }
    for &f in &e.freq_hs {
        fold(u64::from(f));
    }
    for &c in &e.matched_cnt {
        fold(u64::from(c));
    }
    for &b in &e.sample_match {
        fold(u64::from(b));
    }
    SetupProbe {
        pool_len: e.pool.len(),
        pool_stats,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord};
    use smartcrawl_text::Record;

    fn fixture() -> (TextContext, LocalDb, HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["thai house"]),
                Record::from(["missing only record"]), // ΔD
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec![], 5.0),
                HiddenRecord::new(1, Record::from(["jade noodle house"]), vec![], 4.0),
                HiddenRecord::new(2, Record::from(["thai house"]), vec![], 3.0),
                HiddenRecord::new(3, Record::from(["steak house"]), vec![], 2.0),
                HiddenRecord::new(4, Record::from(["noodle bar"]), vec![], 1.0),
            ])
            .build();
        (ctx, local, hidden)
    }

    fn engine<'a>(
        local: &'a LocalDb,
        hidden: Option<&'a HiddenDb>,
        strategy: Strategy,
        ctx: TextContext,
    ) -> Engine<'a> {
        let pool = QueryPool::generate(
            local,
            &PoolConfig {
                min_support: 2,
                max_len: 2,
                seed: 7,
            },
        );
        Engine::new(
            local,
            &SampleIndex::empty(),
            pool,
            strategy,
            Matcher::Exact,
            2,
            1.0,
            hidden,
            ctx,
        )
    }

    #[test]
    fn simple_selects_highest_frequency_first() {
        let (ctx, local, _) = fixture();
        let mut e = engine(&local, None, Strategy::Simple, ctx);
        let (qid, prio) = e.select_next().expect("pool non-empty");
        // "house" has |q(D)| = 3, the maximum.
        let mut kw = e.render(qid);
        kw.sort();
        assert_eq!(kw, vec!["house".to_owned()]);
        assert_eq!(prio, 3.0);
    }

    #[test]
    fn ideal_selects_by_true_benefit() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, Some(&hidden), Strategy::Ideal, ctx);
        let (qid, prio) = e.select_next().expect("pool non-empty");
        // k = 2: "house" returns top-2 by signal = {thai noodle house,
        // jade noodle house} → covers 2. "noodle house" covers the same 2.
        // "noodle" → {thai noodle house, jade noodle house} covers 2.
        // No query covers 3, so the ideal pick has benefit 2.
        assert_eq!(prio, 2.0, "keywords {:?}", e.render(qid));
    }

    #[test]
    fn processing_updates_frequencies_and_liveness() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, None, Strategy::Simple, ctx);
        let (qid, _) = e.select_next().unwrap(); // "house"
        let page = hidden.search(&e.render(qid));
        let out = e.process(qid, &page);
        // Page = top-2 of {h0, h1, h2, h3} by signal: h0, h1 → covers
        // locals 0 and 1.
        assert_eq!(out.newly_covered.len(), 2);
        assert_eq!(e.live_count(), 2);
        assert!(e.covered[0]);
        assert!(e.covered[1]);
        assert!(!e.covered[2]);
    }

    #[test]
    fn est_solid_query_triggers_delta_removal() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, None, Strategy::est_biased(), ctx);
        // Issue the ΔD record's naive query: solid (page shorter than k)
        // and covering nothing → the record must be removed as ΔD.
        let qid = (0..e.pool.len())
            .map(|i| QueryId(i as u32))
            .find(|&q| {
                let mut kw = e.render(q);
                kw.sort();
                kw == ["missing", "record"] // "only" is a stop word
            })
            .expect("naive query for the ΔD record exists");
        let page = hidden.search(&e.render(qid)); // empty page
        assert!(page.is_empty());
        let before = e.live_count();
        let out = e.process(qid, &page);
        assert_eq!(out.newly_covered.len(), 0);
        assert_eq!(out.removed, 1);
        assert_eq!(e.live_count(), before - 1);
    }

    #[test]
    fn bound_requeues_on_mismatch() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, None, Strategy::Bound, ctx);
        // "house": |q(D)| = 3 but k = 2 truncates the page, so local 2
        // ("thai house") looks like ΔD. Bound removes it and re-queues.
        let (qid, _) = e.select_next().unwrap();
        let page = hidden.search(&e.render(qid));
        let out = e.process(qid, &page);
        assert_eq!(out.newly_covered.len(), 2); // covered but NOT removed
        assert_eq!(out.removed, 1); // the apparent ΔD record
        assert!(e.queue.is_live(qid), "query must return to the pool");
        // Covered records stay live under Algorithm 3.
        assert_eq!(e.live_count(), 3);
    }

    #[test]
    fn process_external_covers_without_consuming_pool_queries() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, None, Strategy::est_biased(), ctx);
        let pool_len_before = e.queue.len();
        let page = hidden.search(&["thai".into(), "noodle".into(), "house".into()]);
        let out = e.process_external(&page);
        assert_eq!(out.newly_covered.len(), 1); // local 0 covered
        assert_eq!(out.removed, 1);
        assert!(e.covered[0]);
        assert_eq!(e.queue.len(), pool_len_before, "no pool query consumed");
        // Frequencies reflect the removal.
        let house_q = (0..e.pool.len())
            .map(|i| QueryId(i as u32))
            .find(|&q| e.render(q) == vec!["house".to_owned()])
            .expect("'house' is in the pool");
        assert_eq!(e.freq[house_q.index()], 2);
    }

    #[test]
    fn refresh_sample_updates_estimates_and_priorities() {
        let (mut ctx, local, _hidden) = fixture();
        // A sample containing local 0's exact text, θ = 0.5.
        let sample = smartcrawl_sampler::HiddenSample {
            records: vec![smartcrawl_hidden::Retrieved::new(
                smartcrawl_hidden::ExternalId(0),
                vec!["thai noodle house".into()],
                vec![],
            )],
            theta: 0.5,
        };
        let sample_index = crate::sample::SampleIndex::build(&sample, &mut ctx);
        let mut e = engine(&local, None, Strategy::est_biased(), ctx);
        // Initially (empty sample): every freq_hs is 0.
        assert!(e.freq_hs.iter().all(|&f| f == 0));
        e.refresh_sample(&sample_index);
        // "house" now appears once in the sample.
        let house_q = (0..e.pool.len())
            .map(|i| QueryId(i as u32))
            .find(|&q| e.render(q) == vec!["house".to_owned()])
            .expect("'house' is in the pool");
        assert_eq!(e.freq_hs[house_q.index()], 1);
        // matched_cnt: local 0 matches the sample record and satisfies
        // "house" → counted.
        assert!(e.matched_cnt[house_q.index()] >= 1);
        // Selection still works after the wholesale reprioritization.
        assert!(e.select_next().is_some());
    }

    #[test]
    fn refresh_sample_is_noop_for_non_est_strategies() {
        let (ctx, local, _hidden) = fixture();
        let mut e = engine(&local, None, Strategy::Simple, ctx);
        let before = e.freq_hs.clone();
        e.refresh_sample(&SampleIndex::empty());
        assert_eq!(e.freq_hs, before);
    }

    #[test]
    fn setup_probe_is_thread_count_invariant() {
        let probe_at = |threads: usize| {
            smartcrawl_par::with_threads(threads, || {
                let (ctx, local, _) = fixture();
                let pool = QueryPool::generate(
                    &local,
                    &PoolConfig {
                        min_support: 2,
                        max_len: 2,
                        seed: 7,
                    },
                );
                probe_engine_setup(
                    &local,
                    &SampleIndex::empty(),
                    pool,
                    Strategy::est_biased(),
                    Matcher::Exact,
                    2,
                    1.0,
                    ctx,
                )
            })
        };
        let one = probe_at(1);
        assert!(one.pool_len > 0);
        assert_eq!(one, probe_at(2));
        assert_eq!(one, probe_at(8));
    }

    #[test]
    #[should_panic(expected = "QSel-Ideal")]
    fn setup_probe_rejects_ideal() {
        let (ctx, local, _) = fixture();
        let pool = QueryPool::generate(&local, &PoolConfig::default());
        probe_engine_setup(
            &local,
            &SampleIndex::empty(),
            pool,
            Strategy::Ideal,
            Matcher::Exact,
            2,
            1.0,
            ctx,
        );
    }

    #[test]
    fn select_next_skips_zero_benefit_for_simple() {
        let (ctx, local, hidden) = fixture();
        let mut e = engine(&local, None, Strategy::Simple, ctx);
        // Cover everything coverable, then drain: once frequencies hit
        // zero the engine must return None rather than waste budget.
        let mut guard = 0;
        while let Some((qid, _)) = e.select_next() {
            guard += 1;
            assert!(guard < 50, "selection must terminate");
            let page = hidden.search(&e.render(qid));
            e.process(qid, &page);
        }
        // The ΔD record is never covered, so one record stays live, but
        // every remaining query has zero frequency only if its records
        // died; the pool is simply exhausted here.
        assert!(e.live_count() >= 1);
    }
}
