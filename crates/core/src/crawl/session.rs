//! The shared crawl driver: one budget loop for every approach.
//!
//! Every crawler in the paper's evaluation runs the same skeleton — pick a
//! query, issue it, match the page against `D`, record the step — and they
//! differ only in *how the next query is chosen* and *what feedback they
//! need from the page*. [`CrawlSession`] owns the skeleton: the budget
//! loop, retry handling under a [`RetryPolicy`], [`CrawlStep`] /
//! [`EnrichedPair`] bookkeeping, per-phase timing, and the
//! [`CrawlObserver`](super::CrawlObserver) event stream. The per-approach
//! logic lives behind the [`QuerySource`] trait, with one implementation
//! per approach:
//!
//! | source | approach |
//! |---|---|
//! | [`EngineSource`] | SmartCrawl / IdealCrawl (benefit-driven selection) |
//! | [`NaiveSource`](super::NaiveSource) | NaiveCrawl |
//! | [`FullSource`](super::FullSource) | FullCrawl |
//! | [`OnlineSource`](super::OnlineSource) | runtime-sampling SmartCrawl |
//! | [`PopulateSource`](super::PopulateSource) | row population |
//!
//! Robustness and observability improvements land here once and apply to
//! every approach; later batching/async/caching work has exactly one loop
//! to touch.

use crate::crawl::observe::{CrawlEvent, CrawlObserver, EventCounts, EventStamp};
use crate::crawl::{CrawlReport, CrawlStep, EnrichedPair};
use crate::local::{LocalDb, LocalMatchIndex};
use crate::select::engine::{Engine, ProcessOutcome, SelectionStats};
use smartcrawl_hidden::{
    HiddenDb, RetryPolicy, Retrieved, SearchError, SearchInterface, SearchPage,
};
use smartcrawl_index::QueryId;
use smartcrawl_match::Matcher;
use std::time::Instant;

/// Wall-clock nanoseconds spent in each phase of the crawl loop, plus the
/// simulated backoff spent waiting out transient failures. Surfaced in
/// [`CrawlReport::timing`](crate::crawl::CrawlReport::timing) and the bench
/// harness timing tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time inside [`QuerySource::next_query`] (benefit maintenance,
    /// priority-queue pops, pool ordering).
    pub selection_ns: u64,
    /// Time inside [`SearchInterface::search`] calls.
    pub search_ns: u64,
    /// Time inside [`QuerySource::observe`] (page matching + bookkeeping).
    pub matching_ns: u64,
    /// Simulated backoff ticks spent between retry attempts (virtual time,
    /// not wall clock).
    pub backoff_ticks: u64,
}

impl PhaseTimings {
    /// Total measured wall-clock nanoseconds across the three phases.
    pub fn total_ns(&self) -> u64 {
        self.selection_ns + self.search_ns + self.matching_ns
    }
}

/// Speculation accounting of one pipelined crawl (`--pipeline-depth > 1`
/// with an interface stack that exposes a
/// [`prefetch_handle`](SearchInterface::prefetch_handle)). Pure profile:
/// none of these numbers feed back into any crawl decision, and the crawl
/// trajectory is byte-identical to the sequential driver's at every depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// The pipeline depth the session ran at (≥ 2; depth 1 runs the
    /// sequential driver and reports no pipeline section).
    pub depth: usize,
    /// Speculative searches handed to the worker pipeline.
    pub prefetches: usize,
    /// Issued queries served from a speculative result (the overlap wins).
    pub prefetch_hits: usize,
    /// Speculations cancelled because the source's next hint batch no
    /// longer predicted them (selection state moved under the window).
    pub mispredicts: usize,
    /// Speculations still in flight when the session ended.
    pub discarded: usize,
    /// Wall time workers spent computing speculative pages, in
    /// nanoseconds. Overlapped work: compare against `wait_ns` for the
    /// realized overlap ratio.
    pub worker_search_ns: u64,
    /// Wall time the driver spent blocked waiting for a speculative page
    /// it wanted to commit, in nanoseconds.
    pub wait_ns: u64,
    /// Wall time spent computing hint batches
    /// ([`QuerySource::next_queries`]), in nanoseconds — the price of
    /// speculation, kept out of `selection_ns` so sequential and pipelined
    /// phase profiles stay comparable.
    pub speculation_ns: u64,
}

impl PipelineStats {
    /// Fraction of worker search time that did not stall the driver:
    /// `(worker_search_ns − wait_ns) / worker_search_ns`, clamped at 0.
    /// 1.0 means every committed page was ready before the driver asked.
    pub fn overlap_ratio(&self) -> f64 {
        if self.worker_search_ns == 0 {
            return 0.0;
        }
        self.worker_search_ns.saturating_sub(self.wait_ns) as f64
            / self.worker_search_ns as f64
    }
}

/// What a [`QuerySource`] learned from one served page.
#[derive(Debug, Default)]
pub struct Observation {
    /// Newly asserted enrichment pairs (deduplicated by the source).
    pub newly_covered: Vec<EnrichedPair>,
    /// Local records removed from consideration by this page.
    pub removed: usize,
}

impl Observation {
    /// Builds an observation from an engine outcome and the page it came
    /// from (`(local, page position)` pairs become [`EnrichedPair`]s).
    pub(crate) fn from_outcome(outcome: ProcessOutcome, page: &[Retrieved]) -> Self {
        let newly_covered = outcome
            .newly_covered
            .into_iter()
            .map(|(local_idx, page_idx)| EnrichedPair {
                local: local_idx,
                external: page[page_idx].external_id,
                payload: page[page_idx].payload.clone(),
                hidden_fields: page[page_idx].fields.clone(),
            })
            .collect();
        Self { newly_covered, removed: outcome.removed }
    }
}

/// The per-approach half of a crawl: supplies queries and absorbs pages.
/// Implementations hold whatever state their strategy needs (a selection
/// engine, a shuffled record order, a sampler state machine, …).
pub trait QuerySource {
    /// The next query to issue, or `None` when the source is exhausted
    /// (pool drained, nothing left to cover). `issued` is the number of
    /// queries served so far — sources with internal round structure (e.g.
    /// online sampling) use it to bound multi-query rounds.
    fn next_query(&mut self, issued: usize) -> Option<Vec<String>>;

    /// A non-binding forecast of the next up-to-`m` queries this source
    /// expects [`QuerySource::next_query`] to return, best first — the
    /// batch-selection hook the pipelined driver speculates on.
    ///
    /// Contract: *peek, don't consume*. The source's state must be
    /// unchanged afterwards, and every query is still issued through the
    /// authoritative `next_query`. Hints may be wrong (feedback from pages
    /// served in between can reorder any priority structure) — a wrong
    /// hint costs a wasted speculative search, never a wrong result.
    ///
    /// The default returns no hints, which simply disables speculation
    /// for the source. (A default that called `next_query` `m` times
    /// would *consume* queries and change the crawl for every
    /// feedback-driven source — exactly the bug class this trait split
    /// exists to rule out.)
    fn next_queries(&mut self, issued: usize, m: usize) -> Vec<Vec<String>> {
        let _ = (issued, m);
        Vec::new()
    }

    /// Absorbs the served page of the query last returned by
    /// [`QuerySource::next_query`].
    fn observe(&mut self, keywords: &[String], page: &SearchPage, k: usize) -> Observation;

    /// Called instead of [`QuerySource::observe`] when the query was
    /// dropped after exhausting its retries; sources may re-queue it.
    fn on_failure(&mut self, _keywords: &[String]) {}

    /// Final selection-machinery work counters (zeros for approaches
    /// without selection machinery).
    fn selection_stats(&self) -> SelectionStats {
        SelectionStats::default()
    }
}

/// Stamps and dispatches events, and keeps the session's own tallies.
struct Instrument<'a> {
    start: Instant,
    seq: u64,
    counts: EventCounts,
    observer: &'a mut dyn CrawlObserver,
}

impl Instrument<'_> {
    fn emit(&mut self, event: CrawlEvent) {
        let at = EventStamp {
            seq: self.seq,
            nanos: self.start.elapsed().as_nanos() as u64,
        };
        self.seq += 1;
        self.counts.absorb(&event);
        self.observer.on_event(at, &event);
    }
}

/// The shared budget-loop driver. Construct with a query budget, optionally
/// attach a [`RetryPolicy`], then [`run`](CrawlSession::run) a
/// [`QuerySource`] against a [`SearchInterface`].
///
/// Budget accounting: every *attempt* is charged against the budget —
/// served queries (which become [`CrawlStep`]s) and failed transient
/// attempts alike, mirroring real APIs where a 5xx still burns quota time.
/// The session stops when the budget is spent, the source is exhausted, or
/// the interface reports [`SearchError::BudgetExhausted`].
#[derive(Debug, Clone, Copy)]
pub struct CrawlSession {
    budget: usize,
    retry: RetryPolicy,
}

impl CrawlSession {
    /// A session with the given query budget and no retries.
    pub fn new(budget: usize) -> Self {
        Self { budget, retry: RetryPolicy::none() }
    }

    /// Attaches a retry policy for transient/rate-limited failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The session's query budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Drives `source` against `iface` until a stop condition, reporting
    /// every step, enrichment pair, phase timing, and event count.
    ///
    /// With a pipeline depth > 1 in scope
    /// ([`with_pipeline_depth`](smartcrawl_par::with_pipeline_depth)) and
    /// an interface stack exposing a
    /// [`prefetch_handle`](SearchInterface::prefetch_handle), the session
    /// runs the pipelined driver instead — byte-identical trajectory,
    /// overlapped search latency, and a
    /// [`pipeline`](CrawlReport::pipeline) section in the report.
    pub fn run<S: QuerySource + ?Sized, I: SearchInterface>(
        &self,
        source: &mut S,
        iface: &mut I,
        observer: &mut dyn CrawlObserver,
    ) -> CrawlReport {
        let depth = smartcrawl_par::current_pipeline_depth();
        if depth > 1 {
            if let Some(db) = iface.prefetch_handle() {
                return self.run_pipelined(source, iface, observer, depth, db);
            }
        }
        let mut ins = Instrument {
            // lint:allow(determinism) wall time feeds event timestamps only, never selection
            start: Instant::now(),
            seq: 0,
            counts: EventCounts::default(),
            observer,
        };
        let k = iface.k();
        let mut report = CrawlReport::default();
        let mut timing = PhaseTimings::default();
        // Transient attempts charged to the budget on top of served steps.
        let mut failed_attempts = 0usize;
        // Ordinal of the next issued query (counts every QueryIssued,
        // including queries later dropped after retry exhaustion). Keys
        // the interface stack's per-query state (fault-injection draws)
        // so sequential and pipelined runs burn identical randomness.
        let mut issued_ordinal = 0usize;
        // Counter snapshot of any query-result cache in the interface
        // stack: per-query hit/miss events diff against it, and the report
        // carries this run's delta even when the store is shared.
        let cache_at_start = iface.cache_stats();

        'session: while report.steps.len() + failed_attempts < self.budget {
            let t = Instant::now();
            let next = source.next_query(report.steps.len());
            timing.selection_ns += t.elapsed().as_nanos() as u64;
            let Some(keywords) = next else {
                break; // source exhausted: pool drained or nothing live
            };
            ins.emit(CrawlEvent::QueryIssued { terms: keywords.len() });
            iface.begin_query(issued_ordinal);
            issued_ordinal += 1;

            let mut attempt = 0usize;
            let page = loop {
                let hits_before =
                    cache_at_start.and_then(|_| iface.cache_stats()).map(|s| s.hits);
                let t = Instant::now();
                let result = iface.search(&keywords);
                timing.search_ns += t.elapsed().as_nanos() as u64;
                match result {
                    Ok(page) => {
                        if let Some(before) = hits_before {
                            let now = iface.cache_stats().map_or(before, |s| s.hits);
                            if now > before {
                                ins.emit(CrawlEvent::CacheHit { results: page.records.len() });
                            } else {
                                ins.emit(CrawlEvent::CacheMiss);
                            }
                        }
                        break page;
                    }
                    Err(SearchError::BudgetExhausted) => {
                        ins.emit(CrawlEvent::BudgetExhausted);
                        break 'session;
                    }
                    Err(err) => {
                        debug_assert!(err.is_retryable());
                        failed_attempts += 1;
                        let budget_left =
                            report.steps.len() + failed_attempts < self.budget;
                        if attempt >= self.retry.max_retries || !budget_left {
                            // Retries exhausted: drop this query, carry on.
                            source.on_failure(&keywords);
                            continue 'session;
                        }
                        attempt += 1;
                        timing.backoff_ticks += self.retry.backoff(attempt);
                        ins.emit(CrawlEvent::RetryAttempted { attempt });
                    }
                }
            };

            ins.emit(CrawlEvent::PageReceived {
                len: page.records.len(),
                full: page.is_full(k),
            });
            let t = Instant::now();
            let observation = source.observe(&keywords, &page, k);
            timing.matching_ns += t.elapsed().as_nanos() as u64;

            for pair in &observation.newly_covered {
                ins.emit(CrawlEvent::Matched { local: pair.local });
            }
            if observation.removed > 0 {
                ins.emit(CrawlEvent::Removed { count: observation.removed });
            }
            report.records_removed += observation.removed;
            report.enriched.extend(observation.newly_covered);
            report.steps.push(CrawlStep {
                keywords,
                returned: page.records.iter().map(|r| r.external_id).collect(),
                full_page: page.is_full(k),
            });
        }

        if report.steps.len() + failed_attempts >= self.budget
            && ins.counts.budget_exhausted == 0
        {
            ins.emit(CrawlEvent::BudgetExhausted);
        }
        report.selection = source.selection_stats();
        report.timing = timing;
        report.events = ins.counts;
        if let (Some(start), Some(end)) = (cache_at_start, iface.cache_stats()) {
            report.cache = Some(end.since(&start));
        }
        report
    }

    /// The pipelined driver: overlaps speculative `HiddenDb::search` calls
    /// (pure, side-effect free) on worker threads with selection, page
    /// matching, and removal on this thread.
    ///
    /// Determinism argument, in full (DESIGN.md §14 for the prose
    /// version): workers compute *pages only* — `db` is the bottom of the
    /// interface stack and has no interior mutability. Every stateful step
    /// happens here, in issue order: the authoritative
    /// [`QuerySource::next_query`] picks each query exactly as the
    /// sequential driver would; a speculative page is committed through
    /// [`SearchInterface::commit_prefetched`], which every wrapper
    /// (budget meter, cache, fault injector) implements to be observably
    /// identical to [`SearchInterface::search`]; and fault-injection draws
    /// are keyed on the issued-query ordinal propagated via
    /// [`SearchInterface::begin_query`], not on call order. Completion
    /// order of workers is unobservable — results are claimed by ticket —
    /// so the report is byte-identical to the sequential driver's at any
    /// depth and thread count.
    ///
    /// This loop must mirror [`CrawlSession::run`]'s event emission,
    /// budget accounting, and retry handling exactly; the cross-crate
    /// `pipeline_properties` tests hold the two drivers to byte-identical
    /// digests for every approach.
    fn run_pipelined<S: QuerySource + ?Sized, I: SearchInterface>(
        &self,
        source: &mut S,
        iface: &mut I,
        observer: &mut dyn CrawlObserver,
        depth: usize,
        db: &HiddenDb,
    ) -> CrawlReport {
        let mut ins = Instrument {
            // lint:allow(determinism) wall time feeds event timestamps only, never selection
            start: Instant::now(),
            seq: 0,
            counts: EventCounts::default(),
            observer,
        };
        let k = iface.k();
        let mut report = CrawlReport::default();
        let mut timing = PhaseTimings::default();
        let mut failed_attempts = 0usize;
        let mut issued_ordinal = 0usize;
        let cache_at_start = iface.cache_stats();
        let mut pstats = PipelineStats { depth, ..Default::default() };

        smartcrawl_par::run_pipeline(
            depth,
            |keywords: Vec<String>| {
                // Pure page computation; timed so the driver can report
                // how much search latency the overlap absorbed.
                let t = Instant::now();
                let page = SearchPage { records: db.search(&keywords) };
                (page, t.elapsed().as_nanos() as u64)
            },
            |pipe| {
                // Speculations in flight: `(keywords, ticket)`, oldest
                // first, at most `depth` entries.
                let mut in_flight: Vec<(Vec<String>, u64)> = Vec::new();
                'session: while report.steps.len() + failed_attempts < self.budget {
                    // Refill the speculation window from the source's
                    // current forecast: cancel in-flight entries it no
                    // longer predicts, submit the new ones.
                    let t = Instant::now();
                    let hints = source.next_queries(report.steps.len(), depth);
                    pstats.speculation_ns += t.elapsed().as_nanos() as u64;
                    let mut kept = Vec::with_capacity(in_flight.len());
                    for (kw, ticket) in in_flight.drain(..) {
                        if hints.contains(&kw) {
                            kept.push((kw, ticket));
                        } else {
                            pipe.forget(ticket);
                            pstats.mispredicts += 1;
                        }
                    }
                    in_flight = kept;
                    // Never speculate past the remaining budget: those
                    // queries could only be discarded.
                    let window = depth
                        .min(self.budget - (report.steps.len() + failed_attempts));
                    for kw in hints {
                        if in_flight.len() >= window {
                            break;
                        }
                        if in_flight.iter().any(|(q, _)| *q == kw) {
                            continue;
                        }
                        pstats.prefetches += 1;
                        let ticket = pipe.submit(kw.clone());
                        in_flight.push((kw, ticket));
                    }

                    let t = Instant::now();
                    let next = source.next_query(report.steps.len());
                    timing.selection_ns += t.elapsed().as_nanos() as u64;
                    let Some(keywords) = next else {
                        break; // source exhausted: pool drained or nothing live
                    };
                    ins.emit(CrawlEvent::QueryIssued { terms: keywords.len() });
                    iface.begin_query(issued_ordinal);
                    issued_ordinal += 1;

                    // Claim the speculative page if the forecast was right
                    // (matched by keyword equality — the engine's pages
                    // are a pure function of the keywords).
                    let prefetched = in_flight
                        .iter()
                        .position(|(q, _)| *q == keywords)
                        .map(|i| {
                            let (_, ticket) = in_flight.remove(i);
                            let t = Instant::now();
                            let (page, search_ns) = pipe.take(ticket);
                            pstats.wait_ns += t.elapsed().as_nanos() as u64;
                            pstats.worker_search_ns += search_ns;
                            pstats.prefetch_hits += 1;
                            page
                        });

                    let mut attempt = 0usize;
                    let page = loop {
                        let hits_before =
                            cache_at_start.and_then(|_| iface.cache_stats()).map(|s| s.hits);
                        let t = Instant::now();
                        // Retries re-commit the same speculative page:
                        // against the deterministic engine that is
                        // equivalent to re-searching, and the accounting
                        // stack charges/draws identically either way.
                        let result = match &prefetched {
                            Some(page) => iface.commit_prefetched(&keywords, page),
                            None => iface.search(&keywords),
                        };
                        timing.search_ns += t.elapsed().as_nanos() as u64;
                        match result {
                            Ok(page) => {
                                if let Some(before) = hits_before {
                                    let now =
                                        iface.cache_stats().map_or(before, |s| s.hits);
                                    if now > before {
                                        ins.emit(CrawlEvent::CacheHit {
                                            results: page.records.len(),
                                        });
                                    } else {
                                        ins.emit(CrawlEvent::CacheMiss);
                                    }
                                }
                                break page;
                            }
                            Err(SearchError::BudgetExhausted) => {
                                ins.emit(CrawlEvent::BudgetExhausted);
                                break 'session;
                            }
                            Err(err) => {
                                debug_assert!(err.is_retryable());
                                failed_attempts += 1;
                                let budget_left =
                                    report.steps.len() + failed_attempts < self.budget;
                                if attempt >= self.retry.max_retries || !budget_left {
                                    source.on_failure(&keywords);
                                    continue 'session;
                                }
                                attempt += 1;
                                timing.backoff_ticks += self.retry.backoff(attempt);
                                ins.emit(CrawlEvent::RetryAttempted { attempt });
                            }
                        }
                    };

                    ins.emit(CrawlEvent::PageReceived {
                        len: page.records.len(),
                        full: page.is_full(k),
                    });
                    let t = Instant::now();
                    let observation = source.observe(&keywords, &page, k);
                    timing.matching_ns += t.elapsed().as_nanos() as u64;

                    for pair in &observation.newly_covered {
                        ins.emit(CrawlEvent::Matched { local: pair.local });
                    }
                    if observation.removed > 0 {
                        ins.emit(CrawlEvent::Removed { count: observation.removed });
                    }
                    report.records_removed += observation.removed;
                    report.enriched.extend(observation.newly_covered);
                    report.steps.push(CrawlStep {
                        keywords,
                        returned: page.records.iter().map(|r| r.external_id).collect(),
                        full_page: page.is_full(k),
                    });
                }
                // Session over; whatever is still speculatively in flight
                // was never issued.
                for (_, ticket) in in_flight.drain(..) {
                    pipe.forget(ticket);
                    pstats.discarded += 1;
                }
            },
        );

        if report.steps.len() + failed_attempts >= self.budget
            && ins.counts.budget_exhausted == 0
        {
            ins.emit(CrawlEvent::BudgetExhausted);
        }
        report.selection = source.selection_stats();
        report.timing = timing;
        report.events = ins.counts;
        report.pipeline = Some(pstats);
        if let (Some(start), Some(end)) = (cache_at_start, iface.cache_stats()) {
            report.cache = Some(end.since(&start));
        }
        report
    }
}

/// Shared page-to-`D` matching with covered-record deduplication — the
/// bookkeeping NaiveCrawl and FullCrawl previously each reimplemented.
/// Page docs are memoized in the [`TextContext`](crate::context::TextContext)
/// and the matcher never restricts liveness (these crawlers keep all of `D`
/// in play), so no all-true mask is materialized.
pub(crate) struct PageMatcher<'a> {
    index: LocalMatchIndex<'a>,
    covered: Vec<bool>,
    matcher: Matcher,
    /// Page-match wall time, surfaced through the sources'
    /// [`QuerySource::selection_stats`] so every approach reports the same
    /// per-phase profile.
    stats: SelectionStats,
}

impl<'a> PageMatcher<'a> {
    pub(crate) fn new(local: &'a LocalDb, matcher: Matcher) -> Self {
        Self {
            index: LocalMatchIndex::build(local),
            covered: vec![false; local.len()],
            matcher,
            stats: SelectionStats::default(),
        }
    }

    /// Work counters accumulated so far (page-match time only).
    pub(crate) fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// Matches a page against `D`, asserting each local record's first
    /// match as its enrichment pair.
    pub(crate) fn absorb(
        &mut self,
        page: &[Retrieved],
        ctx: &mut crate::context::TextContext,
    ) -> Vec<EnrichedPair> {
        let t = Instant::now();
        let mut pairs = Vec::new();
        for r in page {
            let rdoc = ctx.doc_of_retrieved(r);
            for d in self.index.find_matches(&rdoc, self.matcher, None) {
                if !self.covered[d] {
                    self.covered[d] = true;
                    pairs.push(EnrichedPair {
                        local: d,
                        external: r.external_id,
                        payload: r.payload.clone(),
                        hidden_fields: r.fields.clone(),
                    });
                }
            }
        }
        self.stats.page_match_ns += t.elapsed().as_nanos() as u64;
        pairs
    }
}

/// [`QuerySource`] over the benefit-driven selection [`Engine`]: powers
/// SmartCrawl (QSel-Simple/Bound/Est) and IdealCrawl (QSel-Ideal).
pub struct EngineSource<'a> {
    engine: Engine<'a>,
    pending: Option<QueryId>,
}

impl<'a> EngineSource<'a> {
    pub(crate) fn new(engine: Engine<'a>) -> Self {
        Self { engine, pending: None }
    }
}

impl QuerySource for EngineSource<'_> {
    fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
        if self.engine.live_count() == 0 {
            return None;
        }
        let (qid, _prio) = self.engine.select_next()?;
        self.pending = Some(qid);
        Some(self.engine.render(qid))
    }

    fn next_queries(&mut self, _issued: usize, m: usize) -> Vec<Vec<String>> {
        if self.engine.live_count() == 0 {
            return Vec::new();
        }
        // A real top-m peek: the engine pops (recomputing stale
        // priorities), remembers, and restores — the next `next_query`
        // sees an untouched pool, so hints are forecasts, not claims.
        self.engine
            .peek_top(m)
            .into_iter()
            .map(|qid| self.engine.render(qid))
            .collect()
    }

    fn observe(&mut self, _keywords: &[String], page: &SearchPage, _k: usize) -> Observation {
        // lint:allow(panic-freedom) CrawlSession only calls observe after next_query set `pending`
        let qid = self.pending.take().expect("observe must follow next_query");
        let outcome = self.engine.process(qid, &page.records);
        Observation::from_outcome(outcome, &page.records)
    }

    fn on_failure(&mut self, _keywords: &[String]) {
        // The query never got a page; give it back to the pool so a later
        // (possibly luckier) attempt can still spend it.
        if let Some(qid) = self.pending.take() {
            self.engine.requeue(qid);
        }
    }

    fn selection_stats(&self) -> SelectionStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::observe::{CountingObserver, NullObserver, TraceLog};
    use smartcrawl_hidden::{
        FlakyInterface, HiddenDb, HiddenDbBuilder, HiddenRecord, Metered,
    };
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai house"]), vec!["p0".into()], 1.0),
                HiddenRecord::new(1, Record::from(["steak house"]), vec!["p1".into()], 2.0),
            ])
            .build()
    }

    /// A source that issues the same single-keyword query forever.
    struct RepeatSource {
        word: String,
        observed: usize,
        failed: usize,
    }

    impl RepeatSource {
        fn new(word: &str) -> Self {
            Self { word: word.into(), observed: 0, failed: 0 }
        }
    }

    impl QuerySource for RepeatSource {
        fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
            Some(vec![self.word.clone()])
        }

        fn next_queries(&mut self, _issued: usize, m: usize) -> Vec<Vec<String>> {
            vec![vec![self.word.clone()]; m.min(1)]
        }

        fn observe(&mut self, _k: &[String], _p: &SearchPage, _kk: usize) -> Observation {
            self.observed += 1;
            Observation::default()
        }

        fn on_failure(&mut self, _keywords: &[String]) {
            self.failed += 1;
        }
    }

    #[test]
    fn session_respects_its_own_budget() {
        let db = tiny_db();
        let mut iface = Metered::new(&db, None);
        let mut source = RepeatSource::new("house");
        let report =
            CrawlSession::new(4).run(&mut source, &mut iface, &mut NullObserver);
        assert_eq!(report.queries_issued(), 4);
        assert_eq!(iface.queries_issued(), 4);
        assert_eq!(source.observed, 4);
        assert_eq!(report.events.queries_issued, 4);
        assert_eq!(report.events.pages_received, 4);
        assert_eq!(report.events.budget_exhausted, 1);
    }

    #[test]
    fn session_stops_on_interface_budget() {
        let db = tiny_db();
        let mut iface = Metered::new(&db, Some(2));
        let mut source = RepeatSource::new("house");
        let mut counting = CountingObserver::default();
        let report = CrawlSession::new(10).run(&mut source, &mut iface, &mut counting);
        assert_eq!(report.queries_issued(), 2);
        assert_eq!(counting.counts.budget_exhausted, 1);
        assert_eq!(counting.counts, report.events);
    }

    #[test]
    fn retries_survive_transient_failures() {
        let db = tiny_db();
        // 50% failure rate, generous retries: every query eventually lands
        // until the attempt budget runs out.
        let mut iface = FlakyInterface::new(Metered::new(&db, None), 0.5, 42);
        let mut source = RepeatSource::new("house");
        let session = CrawlSession::new(30)
            .with_retry(smartcrawl_hidden::RetryPolicy::standard());
        let report = session.run(&mut source, &mut iface, &mut NullObserver);
        assert!(report.events.retries > 0, "seeded 50% flakiness must retry");
        // Attempts (served + failed) are capped by the session budget.
        assert!(report.queries_issued() + iface.failures_injected() <= 30 + 3);
        // Served queries agree between report and the wrapped meter.
        assert_eq!(report.queries_issued(), iface.queries_issued());
        assert!(report.timing.backoff_ticks > 0);
    }

    #[test]
    fn retry_exhaustion_drops_the_query_and_continues() {
        let db = tiny_db();
        // Always fails: with no retries every attempt is dropped and
        // charged to the budget; nothing is ever served.
        let mut iface = FlakyInterface::new(Metered::new(&db, None), 1.0, 7);
        let mut source = RepeatSource::new("house");
        let report =
            CrawlSession::new(5).run(&mut source, &mut iface, &mut NullObserver);
        assert_eq!(report.queries_issued(), 0);
        assert_eq!(source.failed, 5, "each dropped query notifies the source");
        assert_eq!(report.events.budget_exhausted, 1);
        assert_eq!(iface.queries_issued(), 0);
    }

    #[test]
    fn cache_in_the_stack_is_reported_and_stays_transparent() {
        use smartcrawl_cache::{CachedInterface, QueryCache};
        let db = tiny_db();
        let mut cache = QueryCache::default();

        let mut source = RepeatSource::new("house");
        let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, None));
        let report = CrawlSession::new(4).run(&mut source, &mut iface, &mut NullObserver);
        assert_eq!(report.queries_issued(), 4, "caching must not change the run");
        assert_eq!(iface.queries_issued(), 1, "only the first query reached the meter");
        let stats = report.cache.expect("a cache is in the stack");
        assert_eq!((stats.hits, stats.misses), (3, 1));
        assert_eq!(report.events.cache_hits, 3);
        assert_eq!(report.events.cache_misses, 1);
        drop(iface);

        // A second session over the same (now warm) store reports its own
        // delta: all hits, no misses, nothing served by the fresh meter.
        let mut source = RepeatSource::new("house");
        let mut iface = CachedInterface::new(&mut cache, Metered::new(&db, None));
        let report = CrawlSession::new(4).run(&mut source, &mut iface, &mut NullObserver);
        assert_eq!(report.queries_issued(), 4);
        assert_eq!(iface.queries_issued(), 0, "warm cache: zero inner queries");
        let stats = report.cache.expect("a cache is in the stack");
        assert_eq!((stats.hits, stats.misses), (4, 0));
    }

    #[test]
    fn no_cache_means_no_cache_section_or_events() {
        let db = tiny_db();
        let mut iface = Metered::new(&db, None);
        let mut source = RepeatSource::new("house");
        let report = CrawlSession::new(3).run(&mut source, &mut iface, &mut NullObserver);
        assert_eq!(report.cache, None);
        assert_eq!(report.events.cache_hits, 0);
        assert_eq!(report.events.cache_misses, 0);
    }

    #[test]
    fn pipelined_run_matches_sequential_and_reports_speculation() {
        let db = tiny_db();
        let run = |depth: usize| {
            smartcrawl_par::with_pipeline_depth(depth, || {
                let mut iface = Metered::new(&db, None);
                let mut source = RepeatSource::new("house");
                CrawlSession::new(6).run(&mut source, &mut iface, &mut NullObserver)
            })
        };
        let sequential = run(1);
        assert!(sequential.pipeline.is_none(), "depth 1 is the sequential driver");
        for depth in [2, 4, 8] {
            let piped = run(depth);
            let steps = |r: &CrawlReport| {
                r.steps
                    .iter()
                    .map(|s| (s.keywords.clone(), s.returned.clone(), s.full_page))
                    .collect::<Vec<_>>()
            };
            assert_eq!(steps(&sequential), steps(&piped), "depth {depth}");
            assert_eq!(sequential.events, piped.events, "depth {depth}");
            let p = piped.pipeline.expect("pipelined run reports speculation");
            assert_eq!(p.depth, depth);
            assert!(p.prefetch_hits > 0, "the repeating hint must land");
            assert_eq!(p.mispredicts, 0, "the forecast never changes");
        }
    }

    #[test]
    fn pipelined_run_without_a_prefetch_handle_stays_sequential() {
        // AlwaysTransient (no prefetch_handle override) severs the tunnel:
        // the session must fall back to the sequential driver.
        struct Opaque<I>(I);
        impl<I: SearchInterface> SearchInterface for Opaque<I> {
            fn k(&self) -> usize {
                self.0.k()
            }
            fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
                self.0.search(keywords)
            }
            fn queries_issued(&self) -> usize {
                self.0.queries_issued()
            }
        }
        let db = tiny_db();
        let report = smartcrawl_par::with_pipeline_depth(4, || {
            let mut iface = Opaque(Metered::new(&db, None));
            let mut source = RepeatSource::new("house");
            CrawlSession::new(4).run(&mut source, &mut iface, &mut NullObserver)
        });
        assert_eq!(report.queries_issued(), 4);
        assert!(report.pipeline.is_none(), "no handle, no pipelined driver");
    }

    #[test]
    fn event_stamps_are_monotonic() {
        let db = tiny_db();
        let mut iface = Metered::new(&db, None);
        let mut source = RepeatSource::new("house");
        let mut trace = TraceLog::new(64);
        CrawlSession::new(3).run(&mut source, &mut iface, &mut trace);
        let events = trace.events();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].0.seq < w[1].0.seq);
            assert!(w[0].0.nanos <= w[1].0.nanos);
        }
    }

    #[test]
    fn exhausted_source_ends_the_session_without_budget_event() {
        struct EmptySource;
        impl QuerySource for EmptySource {
            fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
                None
            }
            fn observe(&mut self, _k: &[String], _p: &SearchPage, _kk: usize) -> Observation {
                unreachable!("no query was ever issued")
            }
        }
        let db = tiny_db();
        let mut iface = Metered::new(&db, None);
        let report =
            CrawlSession::new(10).run(&mut EmptySource, &mut iface, &mut NullObserver);
        assert_eq!(report.queries_issued(), 0);
        assert_eq!(report.events.budget_exhausted, 0);
    }
}
