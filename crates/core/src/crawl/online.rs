//! SmartCrawl with *runtime sampling* (paper §9, future work #1: "it is
//! interesting to study how to create a sample in runtime such that the
//! upfront cost can be amortized over time").
//!
//! QSel-Est normally requires a hidden-database sample built *before* the
//! crawl — an upfront cost of thousands of queries (the paper's Yelp
//! sample took 6 483). This crawler starts with no sample and interleaves
//! two kinds of rounds under one budget:
//!
//! * **crawl rounds** — ordinary benefit-driven selection;
//! * **sampling rounds** — pool-sampler rounds (random single keyword,
//!   rejection, bounded degree probing) that grow a near-uniform sample
//!   and its `θ̂` estimate.
//!
//! Every `refresh_every` accepted sample records the engine's estimator is
//! rebuilt around the enlarged sample ([`reprioritize`] — benefits may
//! rise, so lazy dirty-marking is not enough). Pages from sampling rounds
//! still cover local records (the interface returned them either way), so
//! the sampling budget is never pure overhead.
//!
//! [`reprioritize`]: smartcrawl_index::LazyQueue::reprioritize

use crate::context::TextContext;
use crate::crawl::{CrawlReport, CrawlStep, EnrichedPair};
use crate::estimate::EstimatorKind;
use crate::local::LocalDb;
use crate::pool::{PoolConfig, QueryPool};
use crate::sample::SampleIndex;
use crate::select::engine::Engine;
use crate::select::{DeltaRemoval, Strategy};
use rand::{rngs::StdRng, Rng, SeedableRng};
use smartcrawl_hidden::{Retrieved, SearchInterface};
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;
use smartcrawl_text::TokenId;
use std::collections::HashMap;

/// Configuration of an online-sampling SmartCrawl run.
#[derive(Debug, Clone)]
pub struct OnlineCrawlConfig {
    /// Total interface budget, covering crawl *and* sampling rounds.
    pub budget: usize,
    /// Fraction of the budget devoted to sampling rounds (0.0–0.9).
    pub sampling_fraction: f64,
    /// Rebuild the estimator after this many newly accepted sample
    /// records.
    pub refresh_every: usize,
    /// Cap on degree-probe queries per sampling round (keeps a single
    /// round from draining the budget).
    pub max_probes_per_round: usize,
    /// Estimator family.
    pub kind: EstimatorKind,
    /// ΔD-removal policy.
    pub delta_removal: DeltaRemoval,
    /// Entity-resolution policy.
    pub matcher: Matcher,
    /// Query-pool generation parameters.
    pub pool: PoolConfig,
    /// §5.3 overflow-model odds ratio.
    pub omega: f64,
    /// RNG seed for the sampling rounds.
    pub seed: u64,
}

impl Default for OnlineCrawlConfig {
    fn default() -> Self {
        Self {
            budget: 1000,
            sampling_fraction: 0.2,
            refresh_every: 25,
            max_probes_per_round: 6,
            kind: EstimatorKind::Biased,
            delta_removal: DeltaRemoval::Observed,
            matcher: Matcher::Exact,
            pool: PoolConfig::default(),
            omega: 1.0,
            seed: 0,
        }
    }
}

/// Internal sampling state shared across rounds.
struct OnlineSampler {
    /// Single-keyword pool (rendered from the local vocabulary).
    pool: Vec<String>,
    /// keyword → observed solid frequency (None = observed overflowing).
    probe_cache: HashMap<String, Option<usize>>,
    rng: StdRng,
    rounds: usize,
    accepted: usize,
    by_id: HashMap<u64, Retrieved>,
    k: usize,
}

impl OnlineSampler {
    fn new(pool: Vec<String>, k: usize, seed: u64) -> Self {
        Self {
            pool,
            probe_cache: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
            accepted: 0,
            by_id: HashMap::new(),
            k,
        }
    }

    /// The current sample with its estimated ratio.
    fn sample(&self) -> HiddenSample {
        let size_estimate = if self.rounds > 0 {
            self.k as f64 * self.pool.len() as f64 * (self.accepted as f64 / self.rounds as f64)
        } else {
            0.0
        };
        let n = self.by_id.len();
        let theta =
            if size_estimate > 0.0 { (n as f64 / size_estimate).min(1.0) } else { 0.0 };
        let mut records: Vec<Retrieved> = self.by_id.values().cloned().collect();
        records.sort_unstable_by_key(|r| r.external_id.0);
        HiddenSample { records, theta }
    }
}

/// Runs SmartCrawl with runtime sampling. Returns the usual report; every
/// issued query — crawl or sampling — appears in `steps` and counts
/// against the budget.
pub fn online_smart_crawl<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    cfg: &OnlineCrawlConfig,
    ctx: TextContext,
) -> CrawlReport {
    assert!(
        (0.0..=0.9).contains(&cfg.sampling_fraction),
        "sampling fraction must be in [0, 0.9]"
    );
    let pool = QueryPool::generate(local, &cfg.pool);
    let strategy = Strategy::Est { kind: cfg.kind, delta_removal: cfg.delta_removal };
    let mut engine = Engine::new(
        local,
        &SampleIndex::empty(),
        pool,
        strategy,
        cfg.matcher,
        iface.k(),
        cfg.omega,
        None,
        ctx,
    );

    // Single keywords of the local database, rendered through its vocab.
    let keyword_pool: Vec<String> = {
        let mut toks: Vec<TokenId> =
            local.docs().iter().flat_map(|d| d.iter()).collect();
        toks.sort_unstable();
        toks.dedup();
        let mut words: Vec<String> =
            toks.iter().map(|&t| engine.ctx.vocab.word(t).to_owned()).collect();
        words.sort_unstable(); // binary_search during degree probing
        words
    };
    let mut sampler = OnlineSampler::new(keyword_pool, iface.k(), cfg.seed);

    let mut report = CrawlReport::default();
    let k = iface.k();
    let mut sampling_due = 0.0f64;
    let mut unrefreshed = 0usize;

    let record_step =
        |report: &mut CrawlReport, keywords: Vec<String>, page: &[Retrieved], k: usize| {
            report.steps.push(CrawlStep {
                keywords,
                returned: page.iter().map(|r| r.external_id).collect(),
                full_page: page.len() >= k,
            });
        };
    let record_covered = |report: &mut CrawlReport,
                          covered: Vec<(usize, usize)>,
                          page: &[Retrieved]| {
        for (local_idx, page_idx) in covered {
            report.enriched.push(EnrichedPair {
                local: local_idx,
                external: page[page_idx].external_id,
                payload: page[page_idx].payload.clone(),
                hidden_fields: page[page_idx].fields.clone(),
            });
        }
    };

    while report.steps.len() < cfg.budget && engine.live_count() > 0 {
        sampling_due += cfg.sampling_fraction;
        if sampling_due >= 1.0 && !sampler.pool.is_empty() {
            sampling_due -= 1.0;
            // --- One sampling round (costs 1 + #probes queries). --------
            sampler.rounds += 1;
            let w = sampler.pool[sampler.rng.gen_range(0..sampler.pool.len())].clone();
            let Ok(page) = iface.search(std::slice::from_ref(&w)) else { break };
            let page = page.records;
            // Sampling pages still cover local records.
            let outcome = engine.process_external(&page);
            record_covered(&mut report, outcome.newly_covered, &page);
            report.records_removed += outcome.removed;
            record_step(&mut report, vec![w.clone()], &page, k);

            let full_matches: Vec<&Retrieved> = page
                .iter()
                .filter(|r| {
                    engine
                        .ctx
                        .tokenizer
                        .raw_tokens(&r.full_text())
                        .any(|t| t == w)
                })
                .collect();
            let solid = page.len() < k || full_matches.len() < page.len();
            sampler
                .probe_cache
                .insert(w.clone(), if solid { Some(full_matches.len()) } else { None });
            if !solid || full_matches.is_empty() {
                continue;
            }
            let candidate =
                full_matches[sampler.rng.gen_range(0..full_matches.len())].clone();

            // Bounded degree probing (unprobed keywords are skipped; the
            // degree is then an underestimate, making acceptance slightly
            // too likely — a documented bias/cost trade-off).
            let mut kws: Vec<String> = engine
                .ctx
                .tokenizer
                .raw_tokens(&candidate.full_text())
                .filter(|t| sampler.pool.binary_search(t).is_ok())
                .collect();
            kws.sort_unstable();
            kws.dedup();
            let mut degree = 0.0f64;
            let mut probes = 0usize;
            for kw in &kws {
                let cached = sampler.probe_cache.get(kw).copied();
                let m = match cached {
                    Some(m) => m,
                    None => {
                        if probes >= cfg.max_probes_per_round
                            || report.steps.len() >= cfg.budget
                        {
                            continue;
                        }
                        probes += 1;
                        let Ok(p) = iface.search(std::slice::from_ref(kw)) else { break };
                        let p = p.records;
                        let outcome = engine.process_external(&p);
                        record_covered(&mut report, outcome.newly_covered, &p);
                        report.records_removed += outcome.removed;
                        record_step(&mut report, vec![kw.clone()], &p, k);
                        let fm = p
                            .iter()
                            .filter(|r| {
                                engine
                                    .ctx
                                    .tokenizer
                                    .raw_tokens(&r.full_text())
                                    .any(|t| &t == kw)
                            })
                            .count();
                        let m = if p.len() < k || fm < p.len() { Some(fm) } else { None };
                        sampler.probe_cache.insert(kw.clone(), m);
                        m
                    }
                };
                if let Some(m) = m {
                    if m > 0 {
                        degree += 1.0 / m as f64;
                    }
                }
            }
            if degree <= 0.0 {
                continue;
            }
            if sampler.rng.gen_bool(((1.0 / k as f64) / degree).min(1.0)) {
                sampler.accepted += 1;
                let is_new =
                    !sampler.by_id.contains_key(&candidate.external_id.0);
                sampler.by_id.insert(candidate.external_id.0, candidate);
                if is_new {
                    unrefreshed += 1;
                    if unrefreshed >= cfg.refresh_every {
                        unrefreshed = 0;
                        let sample = sampler.sample();
                        let index = SampleIndex::build(&sample, &mut engine.ctx);
                        engine.refresh_sample(&index);
                    }
                }
            }
        } else {
            // --- One crawl round. ----------------------------------------
            let Some((qid, _)) = engine.select_next() else { break };
            let keywords = engine.render(qid);
            let Ok(page) = iface.search(&keywords) else { break };
            let outcome = engine.process(qid, &page.records);
            report.records_removed += outcome.removed;
            record_covered(&mut report, outcome.newly_covered, &page.records);
            record_step(&mut report, keywords, &page.records, k);
        }
    }
    report.selection = engine.stats;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_text::Record;

    fn world(n: usize) -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"];
        let locals: Vec<Record> = (0..n)
            .map(|i| {
                Record::from([format!(
                    "{} {} item{}",
                    words[i % words.len()],
                    words[(i + 3) % words.len()],
                    i
                )])
            })
            .collect();
        let local = LocalDb::build(locals.clone(), &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records(locals.iter().enumerate().map(|(i, r)| {
                HiddenRecord::new(i as u64, r.clone(), vec![format!("p{i}")], i as f64)
            }))
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn online_crawl_respects_total_budget() {
        let (ctx, local, hidden) = world(30);
        let mut iface = Metered::new(&hidden, Some(25));
        let cfg = OnlineCrawlConfig {
            budget: 25,
            seed: 1,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        assert!(report.queries_issued() <= 25);
        assert_eq!(report.queries_issued(), iface.queries_issued());
    }

    #[test]
    fn zero_sampling_fraction_degenerates_to_plain_smartcrawl() {
        let (ctx, local, hidden) = world(20);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig {
            budget: 40,
            sampling_fraction: 0.0,
            seed: 2,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 2 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        // With no sampling rounds, every record is eventually covered.
        assert_eq!(report.covered_claimed(), 20);
    }

    #[test]
    fn sampling_rounds_also_cover_records() {
        let (ctx, local, hidden) = world(40);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig {
            budget: 80,
            sampling_fraction: 0.5,
            refresh_every: 3,
            seed: 3,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 3 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        assert!(
            report.covered_claimed() >= 30,
            "covered only {}",
            report.covered_claimed()
        );
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in")]
    fn rejects_absurd_sampling_fraction() {
        let (ctx, local, hidden) = world(5);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig { sampling_fraction: 1.5, ..Default::default() };
        online_smart_crawl(&local, &mut iface, &cfg, ctx);
    }
}
