//! SmartCrawl with *runtime sampling* (paper §9, future work #1: "it is
//! interesting to study how to create a sample in runtime such that the
//! upfront cost can be amortized over time").
//!
//! QSel-Est normally requires a hidden-database sample built *before* the
//! crawl — an upfront cost of thousands of queries (the paper's Yelp
//! sample took 6 483). This crawler starts with no sample and interleaves
//! two kinds of rounds under one budget:
//!
//! * **crawl rounds** — ordinary benefit-driven selection;
//! * **sampling rounds** — pool-sampler rounds (random single keyword,
//!   rejection, bounded degree probing) that grow a near-uniform sample
//!   and its `θ̂` estimate.
//!
//! Every `refresh_every` accepted sample records the engine's estimator is
//! rebuilt around the enlarged sample ([`reprioritize`] — benefits may
//! rise, so lazy dirty-marking is not enough). Pages from sampling rounds
//! still cover local records (the interface returned them either way), so
//! the sampling budget is never pure overhead.
//!
//! The multi-query sampling rounds are expressed as a [`QuerySource`]
//! state machine ([`OnlineSource`]) so the shared [`CrawlSession`] driver
//! still owns the budget loop: `next_query` resumes wherever the round
//! left off (round start, or mid degree-probing), and `observe` absorbs
//! the page according to which kind of query was in flight.
//!
//! [`reprioritize`]: smartcrawl_index::LazyQueue::reprioritize

use crate::context::TextContext;
use crate::crawl::observe::{CrawlObserver, NullObserver};
use crate::crawl::session::{CrawlSession, Observation, QuerySource};
use crate::crawl::CrawlReport;
use crate::estimate::EstimatorKind;
use crate::local::LocalDb;
use crate::pool::{PoolConfig, QueryPool};
use crate::sample::SampleIndex;
use crate::select::engine::Engine;
use crate::select::{DeltaRemoval, Strategy};
use rand::{rngs::StdRng, Rng, SeedableRng};
use smartcrawl_hidden::{RetryPolicy, Retrieved, SearchInterface, SearchPage};
use smartcrawl_index::QueryId;
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;
use smartcrawl_text::TokenId;
use std::collections::{BTreeMap, HashMap};

/// Configuration of an online-sampling SmartCrawl run.
#[derive(Debug, Clone)]
pub struct OnlineCrawlConfig {
    /// Total interface budget, covering crawl *and* sampling rounds.
    pub budget: usize,
    /// Fraction of the budget devoted to sampling rounds (0.0–0.9).
    pub sampling_fraction: f64,
    /// Rebuild the estimator after this many newly accepted sample
    /// records.
    pub refresh_every: usize,
    /// Cap on degree-probe queries per sampling round (keeps a single
    /// round from draining the budget).
    pub max_probes_per_round: usize,
    /// Estimator family.
    pub kind: EstimatorKind,
    /// ΔD-removal policy.
    pub delta_removal: DeltaRemoval,
    /// Entity-resolution policy.
    pub matcher: Matcher,
    /// Query-pool generation parameters.
    pub pool: PoolConfig,
    /// §5.3 overflow-model odds ratio.
    pub omega: f64,
    /// RNG seed for the sampling rounds.
    pub seed: u64,
}

impl Default for OnlineCrawlConfig {
    fn default() -> Self {
        Self {
            budget: 1000,
            sampling_fraction: 0.2,
            refresh_every: 25,
            max_probes_per_round: 6,
            kind: EstimatorKind::Biased,
            delta_removal: DeltaRemoval::Observed,
            matcher: Matcher::Exact,
            pool: PoolConfig::default(),
            omega: 1.0,
            seed: 0,
        }
    }
}

/// Internal sampling state shared across rounds.
struct OnlineSampler {
    /// Single-keyword pool (rendered from the local vocabulary).
    pool: Vec<String>,
    /// keyword → observed solid frequency (None = observed overflowing).
    probe_cache: HashMap<String, Option<usize>>,
    rng: StdRng,
    rounds: usize,
    accepted: usize,
    by_id: BTreeMap<u64, Retrieved>,
    k: usize,
}

impl OnlineSampler {
    fn new(pool: Vec<String>, k: usize, seed: u64) -> Self {
        Self {
            pool,
            probe_cache: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
            accepted: 0,
            by_id: BTreeMap::new(),
            k,
        }
    }

    /// The current sample with its estimated ratio.
    fn sample(&self) -> HiddenSample {
        let size_estimate = if self.rounds > 0 {
            self.k as f64 * self.pool.len() as f64 * (self.accepted as f64 / self.rounds as f64)
        } else {
            0.0
        };
        let n = self.by_id.len();
        let theta =
            if size_estimate > 0.0 { (n as f64 / size_estimate).min(1.0) } else { 0.0 };
        // BTreeMap is keyed by external id, so values() is already in
        // ascending external-id order — no post-sort needed.
        let records: Vec<Retrieved> = self.by_id.values().cloned().collect();
        HiddenSample { records, theta }
    }
}

/// What kind of query is currently in flight (how to absorb its page).
enum Phase {
    /// No query in flight; the next call starts or resumes a round.
    RoundStart,
    /// A sampling round's initial random keyword.
    AwaitSample,
    /// A degree-probe keyword of the current sampling round.
    AwaitProbe,
    /// An ordinary crawl query popped from the selection engine.
    AwaitCrawl(QueryId),
}

/// Degree-probing progress within one sampling round.
struct ProbeState {
    candidate: Retrieved,
    /// The candidate's pool keywords, sorted + deduped.
    kws: Vec<String>,
    kw_idx: usize,
    degree: f64,
    probes: usize,
}

/// [`QuerySource`] for online-sampling SmartCrawl: interleaves crawl
/// rounds (engine selection) with multi-query sampling rounds, resumable
/// at any point so the [`CrawlSession`] keeps owning the budget loop.
pub struct OnlineSource<'a> {
    cfg: OnlineCrawlConfig,
    engine: Engine<'a>,
    sampler: OnlineSampler,
    phase: Phase,
    probe: Option<ProbeState>,
    sampling_due: f64,
    unrefreshed: usize,
}

impl<'a> OnlineSource<'a> {
    /// Builds the source. `ctx` must be the context `local` was built with.
    pub fn new(local: &'a LocalDb, k: usize, cfg: &OnlineCrawlConfig, ctx: TextContext) -> Self {
        assert!(
            (0.0..=0.9).contains(&cfg.sampling_fraction),
            "sampling fraction must be in [0, 0.9]"
        );
        let pool = QueryPool::generate(local, &cfg.pool);
        let strategy = Strategy::Est { kind: cfg.kind, delta_removal: cfg.delta_removal };
        let engine = Engine::new(
            local,
            &SampleIndex::empty(),
            pool,
            strategy,
            cfg.matcher,
            k,
            cfg.omega,
            None,
            ctx,
        );

        // Single keywords of the local database, rendered through its vocab.
        let keyword_pool: Vec<String> = {
            let mut toks: Vec<TokenId> =
                local.docs().iter().flat_map(|d| d.iter()).collect();
            toks.sort_unstable();
            toks.dedup();
            let mut words: Vec<String> =
                toks.iter().map(|&t| engine.ctx.vocab.word(t).to_owned()).collect();
            words.sort_unstable(); // binary_search during degree probing
            words
        };
        Self {
            sampler: OnlineSampler::new(keyword_pool, k, cfg.seed),
            cfg: cfg.clone(),
            engine,
            phase: Phase::RoundStart,
            probe: None,
            sampling_due: 0.0,
            unrefreshed: 0,
        }
    }

    /// Ends a sampling round: rejection-samples the probed candidate and
    /// refreshes the engine's estimator when enough new records landed.
    fn finalize_round(&mut self, ps: ProbeState) {
        if ps.degree <= 0.0 {
            return;
        }
        let accept = (1.0 / self.sampler.k as f64) / ps.degree;
        if !self.sampler.rng.gen_bool(accept.min(1.0)) {
            return;
        }
        self.sampler.accepted += 1;
        let is_new = !self.sampler.by_id.contains_key(&ps.candidate.external_id.0);
        self.sampler.by_id.insert(ps.candidate.external_id.0, ps.candidate);
        if is_new {
            self.unrefreshed += 1;
            if self.unrefreshed >= self.cfg.refresh_every {
                self.unrefreshed = 0;
                let sample = self.sampler.sample();
                let index = SampleIndex::build(&sample, &mut self.engine.ctx);
                self.engine.refresh_sample(&index);
            }
        }
    }

    /// Whether a page observes `kw` as solid, and at what frequency
    /// (`None` = observed overflowing).
    fn solid_frequency(&mut self, kw: &str, page: &[Retrieved], k: usize) -> Option<usize> {
        let fm = page
            .iter()
            .filter(|r| self.engine.ctx.tokenizer.raw_tokens(&r.full_text()).any(|t| t == kw))
            .count();
        if page.len() < k || fm < page.len() {
            Some(fm)
        } else {
            None
        }
    }
}

impl QuerySource for OnlineSource<'_> {
    fn next_query(&mut self, issued: usize) -> Option<Vec<String>> {
        // Resume mid-round degree probing first. The state is taken
        // out of `self.probe` and either returned there (probe query in
        // flight) or consumed by `finalize_round` — no panic path.
        if let Some(mut ps) = self.probe.take() {
            while let Some(kw) = ps.kws.get(ps.kw_idx) {
                match self.sampler.probe_cache.get(kw).copied() {
                    Some(m) => {
                        ps.kw_idx += 1;
                        if let Some(m) = m {
                            if m > 0 {
                                ps.degree += 1.0 / m as f64;
                            }
                        }
                    }
                    None => {
                        // Unprobed keywords are skipped once the probe
                        // or budget cap is hit; the degree is then an
                        // underestimate, making acceptance slightly too
                        // likely — a documented bias/cost trade-off.
                        if ps.probes >= self.cfg.max_probes_per_round
                            || issued >= self.cfg.budget
                        {
                            ps.kw_idx += 1;
                            continue;
                        }
                        ps.probes += 1;
                        let kw = kw.clone();
                        ps.kw_idx += 1;
                        self.probe = Some(ps);
                        self.phase = Phase::AwaitProbe;
                        return Some(vec![kw]);
                    }
                }
            }
            self.finalize_round(ps);
        }

        // Round start.
        if self.engine.live_count() == 0 {
            return None;
        }
        self.sampling_due += self.cfg.sampling_fraction;
        if self.sampling_due >= 1.0 && !self.sampler.pool.is_empty() {
            self.sampling_due -= 1.0;
            // One sampling round (costs 1 + #probes queries).
            self.sampler.rounds += 1;
            let w = self.sampler.pool
                [self.sampler.rng.gen_range(0..self.sampler.pool.len())]
            .clone();
            self.phase = Phase::AwaitSample;
            return Some(vec![w]);
        }
        // One crawl round.
        let (qid, _prio) = self.engine.select_next()?;
        let keywords = self.engine.render(qid);
        self.phase = Phase::AwaitCrawl(qid);
        Some(keywords)
    }

    fn observe(&mut self, keywords: &[String], page: &SearchPage, k: usize) -> Observation {
        match std::mem::replace(&mut self.phase, Phase::RoundStart) {
            Phase::AwaitSample => {
                // Sampling pages still cover local records.
                let outcome = self.engine.process_external(&page.records);
                let obs = Observation::from_outcome(outcome, &page.records);
                let w = &keywords[0];
                let full_matches: Vec<usize> = page
                    .records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        self.engine
                            .ctx
                            .tokenizer
                            .raw_tokens(&r.full_text())
                            .any(|t| &t == w)
                    })
                    .map(|(i, _)| i)
                    .collect();
                let solid = page.records.len() < k || full_matches.len() < page.records.len();
                self.sampler
                    .probe_cache
                    .insert(w.clone(), if solid { Some(full_matches.len()) } else { None });
                if solid && !full_matches.is_empty() {
                    let pick = self.sampler.rng.gen_range(0..full_matches.len());
                    let candidate = page.records[full_matches[pick]].clone();
                    let mut kws: Vec<String> = self
                        .engine
                        .ctx
                        .tokenizer
                        .raw_tokens(&candidate.full_text())
                        .filter(|t| self.sampler.pool.binary_search(t).is_ok())
                        .collect();
                    kws.sort_unstable();
                    kws.dedup();
                    self.probe =
                        Some(ProbeState { candidate, kws, kw_idx: 0, degree: 0.0, probes: 0 });
                }
                obs
            }
            Phase::AwaitProbe => {
                let outcome = self.engine.process_external(&page.records);
                let obs = Observation::from_outcome(outcome, &page.records);
                let kw = &keywords[0];
                let m = self.solid_frequency(kw, &page.records, k);
                self.sampler.probe_cache.insert(kw.clone(), m);
                if let (Some(ps), Some(m)) = (self.probe.as_mut(), m) {
                    if m > 0 {
                        ps.degree += 1.0 / m as f64;
                    }
                }
                obs
            }
            Phase::AwaitCrawl(qid) => {
                let outcome = self.engine.process(qid, &page.records);
                Observation::from_outcome(outcome, &page.records)
            }
            // lint:allow(panic-freedom) CrawlSession pairs every observe with the next_query that set the phase
            Phase::RoundStart => unreachable!("observe without a query in flight"),
        }
    }

    fn on_failure(&mut self, _keywords: &[String]) {
        match std::mem::replace(&mut self.phase, Phase::RoundStart) {
            // The popped query never got a page; return it to the pool.
            Phase::AwaitCrawl(qid) => self.engine.requeue(qid),
            // AwaitSample: the round is wasted. AwaitProbe: the keyword
            // stays unprobed (skipped); probing resumes via `self.probe`.
            Phase::AwaitSample | Phase::AwaitProbe | Phase::RoundStart => {}
        }
    }

    fn selection_stats(&self) -> crate::select::engine::SelectionStats {
        self.engine.stats()
    }
}

/// Runs SmartCrawl with runtime sampling. Returns the usual report; every
/// issued query — crawl or sampling — appears in `steps` and counts
/// against the budget.
pub fn online_smart_crawl<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    cfg: &OnlineCrawlConfig,
    ctx: TextContext,
) -> CrawlReport {
    online_smart_crawl_with(local, iface, cfg, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`online_smart_crawl`] with a retry policy and an observer.
pub fn online_smart_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    cfg: &OnlineCrawlConfig,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    ctx: TextContext,
) -> CrawlReport {
    let mut source = OnlineSource::new(local, iface.k(), cfg, ctx);
    CrawlSession::new(cfg.budget).with_retry(retry).run(&mut source, iface, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_text::Record;

    fn world(n: usize) -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"];
        let locals: Vec<Record> = (0..n)
            .map(|i| {
                Record::from([format!(
                    "{} {} item{}",
                    words[i % words.len()],
                    words[(i + 3) % words.len()],
                    i
                )])
            })
            .collect();
        let local = LocalDb::build(locals.clone(), &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records(locals.iter().enumerate().map(|(i, r)| {
                HiddenRecord::new(i as u64, r.clone(), vec![format!("p{i}")], i as f64)
            }))
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn online_crawl_respects_total_budget() {
        let (ctx, local, hidden) = world(30);
        let mut iface = Metered::new(&hidden, Some(25));
        let cfg = OnlineCrawlConfig {
            budget: 25,
            seed: 1,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        assert!(report.queries_issued() <= 25);
        assert_eq!(report.queries_issued(), iface.queries_issued());
    }

    #[test]
    fn zero_sampling_fraction_degenerates_to_plain_smartcrawl() {
        let (ctx, local, hidden) = world(20);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig {
            budget: 40,
            sampling_fraction: 0.0,
            seed: 2,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 2 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        // With no sampling rounds, every record is eventually covered.
        assert_eq!(report.covered_claimed(), 20);
    }

    #[test]
    fn sampling_rounds_also_cover_records() {
        let (ctx, local, hidden) = world(40);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig {
            budget: 80,
            sampling_fraction: 0.5,
            refresh_every: 3,
            seed: 3,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 3 },
            ..Default::default()
        };
        let report = online_smart_crawl(&local, &mut iface, &cfg, ctx);
        assert!(
            report.covered_claimed() >= 30,
            "covered only {}",
            report.covered_claimed()
        );
    }

    #[test]
    #[should_panic(expected = "sampling fraction must be in")]
    fn rejects_absurd_sampling_fraction() {
        let (ctx, local, hidden) = world(5);
        let mut iface = Metered::new(&hidden, None);
        let cfg = OnlineCrawlConfig { sampling_fraction: 1.5, ..Default::default() };
        online_smart_crawl(&local, &mut iface, &cfg, ctx);
    }
}
