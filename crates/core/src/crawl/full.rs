//! FullCrawl (paper §1, Appendix C): classic deep-web crawling. Build a
//! keyword pool from a hidden-database sample and issue keywords in
//! decreasing order of their *sample* frequency — the textbook recipe for
//! maximizing coverage of `H` (frequent keywords retrieve many hidden
//! records). Entirely oblivious of the local database, which is exactly
//! why it wastes budget when `|D| ≪ |H|`.

use crate::context::TextContext;
use crate::crawl::observe::{CrawlObserver, NullObserver};
use crate::crawl::session::{CrawlSession, Observation, PageMatcher, QuerySource};
use crate::crawl::CrawlReport;
use crate::local::LocalDb;
use smartcrawl_hidden::{RetryPolicy, SearchInterface, SearchPage};
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;
use std::collections::BTreeMap;

/// [`QuerySource`] for FullCrawl: single sample keywords, most-frequent
/// first (ties broken lexicographically for determinism).
pub struct FullSource<'a> {
    keywords: Vec<String>,
    cursor: usize,
    matches: PageMatcher<'a>,
    ctx: TextContext,
}

impl<'a> FullSource<'a> {
    /// Builds the keyword pool from the sample. `ctx` must be the context
    /// `local` was built with.
    pub fn new(
        local: &'a LocalDb,
        sample: &HiddenSample,
        matcher: Matcher,
        ctx: TextContext,
    ) -> Self {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for r in &sample.records {
            let mut words: Vec<String> =
                ctx.tokenizer.raw_tokens(&r.fields.join(" ")).collect();
            words.sort_unstable();
            words.dedup();
            for w in words {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Self {
            keywords: ranked.into_iter().map(|(w, _)| w).collect(),
            cursor: 0,
            matches: PageMatcher::new(local, matcher),
            ctx,
        }
    }
}

impl QuerySource for FullSource<'_> {
    fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
        let word = self.keywords.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(vec![word])
    }

    fn next_queries(&mut self, _issued: usize, m: usize) -> Vec<Vec<String>> {
        // The ranked keyword list is fixed up front; a cursor-window peek
        // is an always-right forecast.
        self.keywords.iter().skip(self.cursor).take(m).map(|w| vec![w.clone()]).collect()
    }

    fn observe(&mut self, _keywords: &[String], page: &SearchPage, _k: usize) -> Observation {
        Observation {
            newly_covered: self.matches.absorb(&page.records, &mut self.ctx),
            removed: 0,
        }
    }

    fn selection_stats(&self) -> crate::select::engine::SelectionStats {
        self.matches.stats()
    }
}

/// Runs FullCrawl: issues the sample's keywords, most-frequent first,
/// matching every returned page against the local database.
pub fn full_crawl<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    ctx: TextContext,
) -> CrawlReport {
    full_crawl_with(local, sample, iface, budget, matcher, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`full_crawl`] with a retry policy and an observer.
#[allow(clippy::too_many_arguments)] // mirrors full_crawl plus the two session knobs
pub fn full_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    ctx: TextContext,
) -> CrawlReport {
    let mut source = FullSource::new(local, sample, matcher, ctx);
    CrawlSession::new(budget).with_retry(retry).run(&mut source, iface, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_sampler::bernoulli_sample;
    use smartcrawl_text::Record;

    fn world() -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["thai noodle house"])], &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(10)
            .records((0..20).map(|i| {
                let name = if i == 0 {
                    "thai noodle house".to_owned()
                } else {
                    format!("generic shop {i}")
                };
                HiddenRecord::new(i, Record::from([name]), vec![], i as f64)
            }))
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn issues_sample_keywords_most_frequent_first() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0); // full visibility
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 3, Matcher::Exact, ctx);
        // "generic" and "shop" tie at 19 > everything else.
        assert_eq!(report.steps[0].keywords, vec!["generic".to_owned()]);
        assert_eq!(report.steps[1].keywords, vec!["shop".to_owned()]);
        assert_eq!(report.queries_issued(), 3);
    }

    #[test]
    fn eventually_covers_local_records_reachable_by_frequent_keywords() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 50, Matcher::Exact, ctx);
        // The pool contains "thai"/"noodle"/"house" (frequency 1), so the
        // local record is covered once those are reached.
        assert_eq!(report.covered_claimed(), 1);
    }

    #[test]
    fn empty_sample_means_no_queries() {
        let (ctx, local, hidden) = world();
        let sample = HiddenSample { records: vec![], theta: 0.0 };
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 10, Matcher::Exact, ctx);
        assert_eq!(report.queries_issued(), 0);
    }

    #[test]
    fn respects_interface_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, Some(2));
        let report = full_crawl(&local, &sample, &mut iface, 10, Matcher::Exact, ctx);
        assert_eq!(report.queries_issued(), 2);
        assert_eq!(report.events.budget_exhausted, 1);
    }
}
