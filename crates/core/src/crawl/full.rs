//! FullCrawl (paper §1, Appendix C): classic deep-web crawling. Build a
//! keyword pool from a hidden-database sample and issue keywords in
//! decreasing order of their *sample* frequency — the textbook recipe for
//! maximizing coverage of `H` (frequent keywords retrieve many hidden
//! records). Entirely oblivious of the local database, which is exactly
//! why it wastes budget when `|D| ≪ |H|`.

use crate::context::TextContext;
use crate::crawl::{CrawlReport, CrawlStep, EnrichedPair};
use crate::local::{LocalDb, LocalMatchIndex};
use smartcrawl_hidden::SearchInterface;
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;
use std::collections::HashMap;

/// Runs FullCrawl: issues the sample's keywords, most-frequent first,
/// matching every returned page against the local database.
pub fn full_crawl<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    mut ctx: TextContext,
) -> CrawlReport {
    // Keyword pool from the sample, ordered by sample frequency
    // (descending), ties broken lexicographically for determinism.
    let mut counts: HashMap<String, usize> = HashMap::new();
    for r in &sample.records {
        let mut words: Vec<String> =
            ctx.tokenizer.raw_tokens(&r.fields.join(" ")).collect();
        words.sort_unstable();
        words.dedup();
        for w in words {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    let mut keywords: Vec<(String, usize)> = counts.into_iter().collect();
    keywords.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let match_index = LocalMatchIndex::build(local);
    let mut report = CrawlReport::default();
    let mut covered = vec![false; local.len()];
    let all = vec![true; local.len()];
    let k = iface.k();

    for (word, _) in keywords {
        if report.steps.len() >= budget {
            break;
        }
        let query = vec![word];
        let Ok(page) = iface.search(&query) else { break };
        for r in &page.records {
            let rdoc = ctx.doc_of_fields(&r.fields);
            for d in match_index.find_matches(&rdoc, matcher, &all) {
                if !covered[d] {
                    covered[d] = true;
                    report.enriched.push(EnrichedPair {
                        local: d,
                        external: r.external_id,
                        payload: r.payload.clone(),
                        hidden_fields: r.fields.clone(),
                    });
                }
            }
        }
        report.steps.push(CrawlStep {
            keywords: query,
            returned: page.records.iter().map(|r| r.external_id).collect(),
            full_page: page.is_full(k),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_sampler::bernoulli_sample;
    use smartcrawl_text::Record;

    fn world() -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["thai noodle house"])], &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(10)
            .records((0..20).map(|i| {
                let name = if i == 0 {
                    "thai noodle house".to_owned()
                } else {
                    format!("generic shop {i}")
                };
                HiddenRecord::new(i, Record::from([name]), vec![], i as f64)
            }))
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn issues_sample_keywords_most_frequent_first() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0); // full visibility
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 3, Matcher::Exact, ctx);
        // "generic" and "shop" tie at 19 > everything else.
        assert_eq!(report.steps[0].keywords, vec!["generic".to_owned()]);
        assert_eq!(report.steps[1].keywords, vec!["shop".to_owned()]);
        assert_eq!(report.queries_issued(), 3);
    }

    #[test]
    fn eventually_covers_local_records_reachable_by_frequent_keywords() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 50, Matcher::Exact, ctx);
        // The pool contains "thai"/"noodle"/"house" (frequency 1), so the
        // local record is covered once those are reached.
        assert_eq!(report.covered_claimed(), 1);
    }

    #[test]
    fn empty_sample_means_no_queries() {
        let (ctx, local, hidden) = world();
        let sample = HiddenSample { records: vec![], theta: 0.0 };
        let mut iface = Metered::new(&hidden, None);
        let report = full_crawl(&local, &sample, &mut iface, 10, Matcher::Exact, ctx);
        assert_eq!(report.queries_issued(), 0);
    }

    #[test]
    fn respects_interface_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, Some(2));
        let report = full_crawl(&local, &sample, &mut iface, 10, Matcher::Exact, ctx);
        assert_eq!(report.queries_issued(), 2);
    }
}
