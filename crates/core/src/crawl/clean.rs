//! Error detection from fuzzy matches (paper §1: enrichment "is also
//! beneficial to some other data preparation tasks such as error
//! detection [9]"; §9 future work #3 lists data cleaning as a crawl
//! purpose).
//!
//! When the entity resolver matched a local record to a hidden record
//! *fuzzily*, the token difference between the two is evidence of a local
//! data error (the hidden database "is typically of high quality and keeps
//! up to date", §1) — exactly the "Lotus of Siam 12345" example from the
//! introduction. [`suggest_corrections`] surfaces those differences as
//! reviewable suggestions.

use crate::context::TextContext;
use crate::crawl::CrawlReport;
use crate::local::LocalDb;

/// One suggested correction for a local record.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// The local record position.
    pub local: usize,
    /// Keywords present locally but absent from the matched hidden record
    /// — suspected junk/typos (e.g. the bogus `12345`).
    pub extraneous: Vec<String>,
    /// Keywords present in the hidden record but missing locally —
    /// suspected omissions or stale values.
    pub missing: Vec<String>,
    /// The matched hidden record's full text, as the suggested reference.
    pub reference: String,
}

/// Extracts correction suggestions from a crawl report: every enrichment
/// pair whose local and hidden documents differ yields one
/// [`Correction`]. Exact matches produce nothing.
pub fn suggest_corrections(
    report: &CrawlReport,
    local: &LocalDb,
    ctx: &mut TextContext,
) -> Vec<Correction> {
    let mut out = Vec::new();
    for pair in &report.enriched {
        let local_doc = local.doc(pair.local).clone();
        let hidden_doc = ctx.doc_of_fields(&pair.hidden_fields[..]);
        if local_doc == hidden_doc {
            continue;
        }
        let extraneous: Vec<String> = local_doc
            .iter()
            .filter(|&t| !hidden_doc.contains(t))
            .map(|t| ctx.vocab.word(t).to_owned())
            .collect();
        let missing: Vec<String> = hidden_doc
            .iter()
            .filter(|&t| !local_doc.contains(t))
            .map(|t| ctx.vocab.word(t).to_owned())
            .collect();
        out.push(Correction {
            local: pair.local,
            extraneous,
            missing,
            reference: pair.hidden_fields.join(" "),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{smart_crawl, SmartCrawlConfig};
    use crate::pool::PoolConfig;
    use crate::select::Strategy;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_match::Matcher;
    use smartcrawl_sampler::bernoulli_sample;
    use smartcrawl_text::Record;

    #[test]
    fn fuzzy_match_yields_a_correction() {
        // The introduction's example: a local record polluted with "12345".
        let mut ctx = TextContext::new();
        let shared: Vec<String> = (0..10).map(|i| format!("word{i}")).collect();
        let dirty = format!("{} 12345", shared.join(" "));
        let local = LocalDb::build(
            vec![Record::from([dirty]), Record::from([shared.join(" ")])],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records([HiddenRecord::new(0, Record::from([shared.join(" ")]), vec![], 1.0)])
            .build();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let report = smart_crawl(
            &local,
            &sample,
            &mut iface,
            &SmartCrawlConfig {
                budget: 5,
                strategy: Strategy::est_biased(),
                matcher: Matcher::Jaccard { threshold: 0.9 },
                pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
                omega: 1.0,
            },
            ctx,
        );
        let mut check_ctx = TextContext::new();
        let check_local = LocalDb::build(
            vec![
                Record::from([format!("{} 12345", shared.join(" "))]),
                Record::from([shared.join(" ")]),
            ],
            &mut check_ctx,
        );
        let corrections = suggest_corrections(&report, &check_local, &mut check_ctx);
        // The dirty record (J = 10/11 ≈ 0.91) matched fuzzily → flagged;
        // the clean one matched exactly → silent.
        assert_eq!(corrections.len(), 1, "report: {report:?}");
        let c = &corrections[0];
        assert_eq!(c.local, 0);
        assert_eq!(c.extraneous, vec!["12345".to_owned()]);
        assert!(c.missing.is_empty());
        assert_eq!(c.reference, shared.join(" "));
    }

    #[test]
    fn exact_matches_yield_nothing() {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["alpha beta gamma"])], &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records([HiddenRecord::new(0, Record::from(["alpha beta gamma"]), vec![], 1.0)])
            .build();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let report = smart_crawl(
            &local,
            &sample,
            &mut iface,
            &SmartCrawlConfig {
                budget: 3,
                strategy: Strategy::est_biased(),
                matcher: Matcher::Exact,
                pool: PoolConfig { min_support: 1, max_len: 1, seed: 1 },
                omega: 1.0,
            },
            ctx,
        );
        assert!(report.covered_claimed() > 0);
        let mut check_ctx = TextContext::new();
        let check_local =
            LocalDb::build(vec![Record::from(["alpha beta gamma"])], &mut check_ctx);
        assert!(suggest_corrections(&report, &check_local, &mut check_ctx).is_empty());
    }
}
