//! SmartCrawl and IdealCrawl entry points (paper §3, Algorithms 1–4).
//!
//! Both are thin wrappers: they assemble a selection [`Engine`], wrap it in
//! an [`EngineSource`], and hand it to the shared [`CrawlSession`] driver.

use crate::context::TextContext;
use crate::crawl::observe::{CrawlObserver, NullObserver};
use crate::crawl::session::{CrawlSession, EngineSource};
use crate::crawl::CrawlReport;
use crate::local::LocalDb;
use crate::pool::{PoolConfig, QueryPool};
use crate::sample::SampleIndex;
use crate::select::engine::Engine;
use crate::select::Strategy;
use smartcrawl_hidden::{HiddenDb, RetryPolicy, SearchInterface};
use smartcrawl_match::Matcher;
use smartcrawl_sampler::HiddenSample;

/// Configuration of a SmartCrawl run.
#[derive(Debug, Clone)]
pub struct SmartCrawlConfig {
    /// Query budget `b`.
    pub budget: usize,
    /// Selection strategy (Simple, Bound, or Est — for Ideal use
    /// [`ideal_crawl`]).
    pub strategy: Strategy,
    /// Entity-resolution policy.
    pub matcher: Matcher,
    /// Query-pool generation parameters.
    pub pool: PoolConfig,
    /// §5.3 odds ratio ω for the overflow model (1.0 = the paper's
    /// uniform-draw assumption).
    pub omega: f64,
}

impl Default for SmartCrawlConfig {
    fn default() -> Self {
        Self {
            budget: 1000,
            strategy: Strategy::est_biased(),
            matcher: Matcher::Exact,
            pool: PoolConfig::default(),
            omega: 1.0,
        }
    }
}

/// Configuration of an IdealCrawl run.
#[derive(Debug, Clone)]
pub struct IdealCrawlConfig {
    /// Query budget `b`.
    pub budget: usize,
    /// Entity-resolution policy.
    pub matcher: Matcher,
    /// Query-pool generation parameters (IdealCrawl shares SmartCrawl's
    /// pool, per Appendix C).
    pub pool: PoolConfig,
}

/// Runs the SmartCrawl framework: pool generation, then iterative
/// benefit-driven selection until the budget or the local database is
/// exhausted (§3).
///
/// `ctx` must be the context `local` was built with (the pool, the sample
/// index, and page matching all share its vocabulary).
pub fn smart_crawl<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    cfg: &SmartCrawlConfig,
    ctx: TextContext,
) -> CrawlReport {
    smart_crawl_with(local, sample, iface, cfg, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`smart_crawl`] with a retry policy for recoverable interface failures
/// and an observer receiving the session's event stream.
pub fn smart_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    cfg: &SmartCrawlConfig,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    mut ctx: TextContext,
) -> CrawlReport {
    assert!(
        !matches!(cfg.strategy, Strategy::Ideal),
        "QSel-Ideal needs oracle access; use ideal_crawl"
    );
    let pool = QueryPool::generate(local, &cfg.pool);
    let sample_index = SampleIndex::build(sample, &mut ctx);
    let engine = Engine::new(
        local,
        &sample_index,
        pool,
        cfg.strategy,
        cfg.matcher,
        iface.k(),
        cfg.omega,
        None,
        ctx,
    );
    let mut source = EngineSource::new(engine);
    CrawlSession::new(cfg.budget).with_retry(retry).run(&mut source, iface, observer)
}

/// Runs IdealCrawl: the same pool, but query selection uses *true*
/// benefits obtained by evaluating queries for free against the hidden
/// database (the "chicken-and-egg" oracle of Algorithm 1). Only possible
/// against a simulator; used as the upper bound in every experiment.
pub fn ideal_crawl<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    oracle: &HiddenDb,
    cfg: &IdealCrawlConfig,
    ctx: TextContext,
) -> CrawlReport {
    ideal_crawl_with(local, iface, oracle, cfg, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`ideal_crawl`] with a retry policy and an observer.
pub fn ideal_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    oracle: &HiddenDb,
    cfg: &IdealCrawlConfig,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    ctx: TextContext,
) -> CrawlReport {
    let pool = QueryPool::generate(local, &cfg.pool);
    let engine = Engine::new(
        local,
        &SampleIndex::empty(),
        pool,
        Strategy::Ideal,
        cfg.matcher,
        iface.k(),
        1.0,
        Some(oracle),
        ctx,
    );
    let mut source = EngineSource::new(engine);
    CrawlSession::new(cfg.budget).with_retry(retry).run(&mut source, iface, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_sampler::bernoulli_sample;
    use smartcrawl_text::Record;

    fn world() -> (TextContext, LocalDb, HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["thai house"]),
                Record::from(["golden steak grill"]),
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec!["4.5".into()], 5.0),
                HiddenRecord::new(1, Record::from(["jade noodle house"]), vec!["4.0".into()], 4.0),
                HiddenRecord::new(2, Record::from(["thai house"]), vec!["3.9".into()], 3.0),
                HiddenRecord::new(3, Record::from(["golden steak grill"]), vec!["4.8".into()], 2.0),
                HiddenRecord::new(4, Record::from(["noodle bar"]), vec!["3.0".into()], 1.0),
            ])
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn smart_crawl_covers_everything_with_enough_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.4, 9);
        let mut iface = Metered::new(&hidden, Some(10));
        let cfg = SmartCrawlConfig {
            budget: 10,
            strategy: Strategy::est_biased(),
            matcher: Matcher::Exact,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 3 },
            omega: 1.0,
        };
        let report = smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
        assert_eq!(report.covered_claimed(), 4, "steps: {:?}", report.steps);
        // Enrichment payloads came through.
        assert!(report.enriched.iter().all(|e| !e.payload.is_empty()));
    }

    #[test]
    fn smart_crawl_respects_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.4, 9);
        let mut iface = Metered::new(&hidden, None);
        let cfg = SmartCrawlConfig { budget: 1, ..Default::default() };
        let report = smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
        assert_eq!(report.queries_issued(), 1);
        assert_eq!(iface.queries_issued(), 1);
    }

    #[test]
    fn smart_crawl_stops_on_interface_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.4, 9);
        let mut iface = Metered::new(&hidden, Some(2));
        let cfg = SmartCrawlConfig { budget: 100, ..Default::default() };
        let report = smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
        assert_eq!(report.queries_issued(), 2);
    }

    #[test]
    fn ideal_crawl_is_at_least_as_good_with_same_budget() {
        let (ctx, local, hidden) = world();
        let b = 2;
        let mut iface = Metered::new(&hidden, None);
        let ideal = ideal_crawl(
            &local,
            &mut iface,
            &hidden,
            &IdealCrawlConfig {
                budget: b,
                matcher: Matcher::Exact,
                pool: PoolConfig { min_support: 2, max_len: 2, seed: 3 },
            },
            ctx,
        );
        // With k = 2, two ideal queries cover ≥ 3 records here ("noodle
        // house" covers two, "thai house"/naive covers one more).
        assert!(ideal.covered_claimed() >= 3, "ideal covered {}", ideal.covered_claimed());
        // The oracle evaluation must not consume metered budget.
        assert_eq!(iface.queries_issued(), ideal.queries_issued());
    }

    #[test]
    fn smart_crawl_survives_seeded_flakiness_with_retries() {
        use crate::crawl::observe::CountingObserver;
        use smartcrawl_hidden::FlakyInterface;

        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.4, 9);
        let cfg = SmartCrawlConfig {
            budget: 10,
            strategy: Strategy::est_biased(),
            matcher: Matcher::Exact,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 3 },
            omega: 1.0,
        };

        // Failure-free baseline (fresh context: TextContext is not Clone).
        let (ctx2, local2, _) = world();
        let mut clean_iface = Metered::new(&hidden, Some(cfg.budget));
        let clean = smart_crawl(&local2, &sample, &mut clean_iface, &cfg, ctx2);

        // Same run under 20% seeded transient failures, with retries.
        let mut flaky_iface =
            FlakyInterface::new(Metered::new(&hidden, Some(cfg.budget)), 0.2, 17);
        let mut counting = CountingObserver::default();
        let flaky = smart_crawl_with(
            &local,
            &sample,
            &mut flaky_iface,
            &cfg,
            RetryPolicy::standard(),
            &mut counting,
            ctx,
        );

        // The budget is generous enough that retried queries still cover
        // everything the clean run covers.
        assert_eq!(clean.covered_claimed(), 4);
        assert_eq!(flaky.covered_claimed(), clean.covered_claimed());
        assert!(counting.counts.retries > 0, "20% flakiness must trigger retries");
        assert_eq!(counting.counts.retries, flaky.events.retries);
        // Served queries agree with the meter even under fault injection.
        assert_eq!(flaky.queries_issued(), flaky_iface.queries_issued());
    }

    #[test]
    #[should_panic(expected = "use ideal_crawl")]
    fn smart_crawl_rejects_ideal_strategy() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.4, 9);
        let mut iface = Metered::new(&hidden, None);
        let cfg = SmartCrawlConfig { strategy: Strategy::Ideal, ..Default::default() };
        smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
    }

    #[test]
    fn fuzzy_matcher_covers_drifted_records() {
        // Two local records each carry one extra keyword relative to the
        // hidden text. Any keyword pair from the shared 12 words has
        // |q(D)| = 2 — strictly the largest benefit — so it is issued
        // first and fuzzily covers both records (J = 12/13 ≈ 0.92 ≥ 0.9).
        let mut ctx = TextContext::new();
        let shared: Vec<String> = (0..12).map(|i| format!("word{i}")).collect();
        let local = LocalDb::build(
            vec![
                Record::from([format!("{} extraone", shared.join(" "))]),
                Record::from([format!("{} extratwo", shared.join(" "))]),
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records([HiddenRecord::new(0, Record::from([shared.join(" ")]), vec![], 1.0)])
            .build();
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let cfg = SmartCrawlConfig {
            budget: 1,
            strategy: Strategy::est_biased(),
            matcher: Matcher::Jaccard { threshold: 0.9 },
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
            omega: 1.0,
        };
        let report = smart_crawl(&local, &sample, &mut iface, &cfg, ctx);
        assert_eq!(report.covered_claimed(), 2, "steps: {:?}", report.steps);
        // An exact matcher would have covered nothing.
        let mut ctx2 = TextContext::new();
        let local2 = LocalDb::build(
            vec![
                Record::from([format!("{} extraone", shared.join(" "))]),
                Record::from([format!("{} extratwo", shared.join(" "))]),
            ],
            &mut ctx2,
        );
        let mut iface2 = Metered::new(&hidden, None);
        let exact_cfg = SmartCrawlConfig { matcher: Matcher::Exact, ..cfg };
        let exact = smart_crawl(&local2, &sample, &mut iface2, &exact_cfg, ctx2);
        assert_eq!(exact.covered_claimed(), 0);
    }
}
