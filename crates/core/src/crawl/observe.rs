//! Structured crawl instrumentation: every [`CrawlSession`] emits a typed
//! event stream that observers can count, trace, or ship elsewhere.
//!
//! The driver fires one [`CrawlEvent`] per interesting transition of the
//! issue → observe → match → record loop, each stamped with a monotonic
//! sequence number and nanoseconds since session start. Three observers
//! ship with the crate:
//!
//! * [`NullObserver`] — zero-cost sink (the default for the plain crawl
//!   entry points);
//! * [`CountingObserver`] — per-kind event tallies ([`EventCounts`]);
//! * [`TraceLog`] — a bounded ring buffer of the most recent events, for
//!   post-mortems of long crawls without unbounded memory.
//!
//! [`CrawlSession`]: crate::crawl::session::CrawlSession

/// A monotonic stamp attached to every event: `seq` strictly increases by
/// one per event; `nanos` is elapsed wall-clock time since session start
/// (also non-decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStamp {
    /// 0-based event sequence number within the session.
    pub seq: u64,
    /// Nanoseconds since the session started.
    pub nanos: u64,
}

/// One structured event in a crawl session's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlEvent {
    /// A query was selected and is about to be issued (fired once per
    /// logical query; retries fire [`CrawlEvent::RetryAttempted`]).
    QueryIssued {
        /// Number of keywords in the query.
        terms: usize,
    },
    /// A result page came back from the interface.
    PageReceived {
        /// Number of records on the page.
        len: usize,
        /// Whether the page hit the top-`k` limit (possible overflow).
        full: bool,
    },
    /// A local record was newly matched (one event per enrichment pair).
    Matched {
        /// Position of the covered local record.
        local: usize,
    },
    /// Local records were removed from `D` (covered + ΔD-predicted).
    Removed {
        /// How many records this page's processing removed.
        count: usize,
    },
    /// A recoverable interface failure triggered a retry.
    RetryAttempted {
        /// 1-based retry attempt for the current query.
        attempt: usize,
    },
    /// The page was served by a query-result cache in the interface stack
    /// (only fired when a cache is present).
    CacheHit {
        /// Number of records on the cached page.
        results: usize,
    },
    /// The query missed the cache and was forwarded to the inner interface
    /// (only fired when a cache is present).
    CacheMiss,
    /// The session stopped because a budget ran out (the session's own
    /// query budget or the interface's).
    BudgetExhausted,
}

/// Receives the session's event stream. Implementations must be cheap:
/// the driver calls them on the hot path.
pub trait CrawlObserver {
    /// Called once per event, in order.
    fn on_event(&mut self, at: EventStamp, event: &CrawlEvent);
}

/// Ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CrawlObserver for NullObserver {
    fn on_event(&mut self, _at: EventStamp, _event: &CrawlEvent) {}
}

/// Per-kind event tallies. The session keeps its own copy of these in
/// [`CrawlReport::events`](crate::crawl::CrawlReport::events) regardless of
/// the observer installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// [`CrawlEvent::QueryIssued`] events (logical queries selected).
    pub queries_issued: usize,
    /// [`CrawlEvent::PageReceived`] events (served pages).
    pub pages_received: usize,
    /// [`CrawlEvent::Matched`] events (enrichment pairs asserted).
    pub matched: usize,
    /// Total records reported removed across [`CrawlEvent::Removed`]
    /// events.
    pub records_removed: usize,
    /// [`CrawlEvent::RetryAttempted`] events.
    pub retries: usize,
    /// [`CrawlEvent::CacheHit`] events (0 without a cache in the stack).
    pub cache_hits: usize,
    /// [`CrawlEvent::CacheMiss`] events (0 without a cache in the stack).
    pub cache_misses: usize,
    /// [`CrawlEvent::BudgetExhausted`] events (0 or 1).
    pub budget_exhausted: usize,
}

impl EventCounts {
    /// Folds one event into the tallies.
    pub fn absorb(&mut self, event: &CrawlEvent) {
        match event {
            CrawlEvent::QueryIssued { .. } => self.queries_issued += 1,
            CrawlEvent::PageReceived { .. } => self.pages_received += 1,
            CrawlEvent::Matched { .. } => self.matched += 1,
            CrawlEvent::Removed { count } => self.records_removed += count,
            CrawlEvent::RetryAttempted { .. } => self.retries += 1,
            CrawlEvent::CacheHit { .. } => self.cache_hits += 1,
            CrawlEvent::CacheMiss => self.cache_misses += 1,
            CrawlEvent::BudgetExhausted => self.budget_exhausted += 1,
        }
    }
}

/// Observer that only counts events by kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingObserver {
    /// The tallies so far.
    pub counts: EventCounts,
}

impl CrawlObserver for CountingObserver {
    fn on_event(&mut self, _at: EventStamp, event: &CrawlEvent) {
        self.counts.absorb(event);
    }
}

/// Bounded ring buffer of the most recent events (with stamps). Useful to
/// inspect the tail of a long crawl — e.g. what the driver was doing when
/// the budget ran out — at fixed memory cost.
#[derive(Debug, Clone)]
pub struct TraceLog {
    capacity: usize,
    buf: Vec<(EventStamp, CrawlEvent)>,
    /// Next write position when the buffer is full (ring head).
    head: usize,
    total: u64,
}

impl TraceLog {
    /// Creates a trace keeping at most `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "trace capacity must be at least 1");
        Self { capacity, buf: Vec::with_capacity(capacity.min(1024)), head: 0, total: 0 }
    }

    /// Total events ever observed (≥ `self.len()`).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events were observed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<&(EventStamp, CrawlEvent)> {
        // Ring layout: [head..] is the oldest run, [..head] the newest.
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter()).collect()
    }
}

impl CrawlObserver for TraceLog {
    fn on_event(&mut self, at: EventStamp, event: &CrawlEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push((at, event.clone()));
        } else {
            self.buf[self.head] = (at, event.clone());
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(seq: u64) -> EventStamp {
        EventStamp { seq, nanos: seq * 10 }
    }

    #[test]
    fn counting_observer_tallies_by_kind() {
        let mut c = CountingObserver::default();
        c.on_event(stamp(0), &CrawlEvent::QueryIssued { terms: 2 });
        c.on_event(stamp(1), &CrawlEvent::PageReceived { len: 5, full: true });
        c.on_event(stamp(2), &CrawlEvent::Matched { local: 3 });
        c.on_event(stamp(3), &CrawlEvent::Matched { local: 4 });
        c.on_event(stamp(4), &CrawlEvent::Removed { count: 3 });
        c.on_event(stamp(5), &CrawlEvent::RetryAttempted { attempt: 1 });
        c.on_event(stamp(6), &CrawlEvent::BudgetExhausted);
        c.on_event(stamp(7), &CrawlEvent::CacheHit { results: 4 });
        c.on_event(stamp(8), &CrawlEvent::CacheMiss);
        assert_eq!(c.counts.queries_issued, 1);
        assert_eq!(c.counts.pages_received, 1);
        assert_eq!(c.counts.matched, 2);
        assert_eq!(c.counts.records_removed, 3);
        assert_eq!(c.counts.retries, 1);
        assert_eq!(c.counts.budget_exhausted, 1);
        assert_eq!(c.counts.cache_hits, 1);
        assert_eq!(c.counts.cache_misses, 1);
    }

    #[test]
    fn trace_log_keeps_most_recent_in_order() {
        let mut t = TraceLog::new(3);
        for i in 0..5u64 {
            t.on_event(stamp(i), &CrawlEvent::QueryIssued { terms: i as usize });
        }
        assert_eq!(t.total_events(), 5);
        assert_eq!(t.len(), 3);
        let seqs: Vec<u64> = t.events().iter().map(|(s, _)| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest-first, most recent retained");
    }

    #[test]
    fn trace_log_below_capacity_keeps_everything() {
        let mut t = TraceLog::new(10);
        t.on_event(stamp(0), &CrawlEvent::BudgetExhausted);
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].1, CrawlEvent::BudgetExhausted);
    }
}
