//! NaiveCrawl (paper §1, Appendix C): one maximally-specific query per
//! local record, issued in random order — the strategy OpenRefine's
//! reconciliation API uses. No query sharing, fragile under data errors
//! (a single wrong keyword makes the conjunctive query return nothing).

use crate::context::TextContext;
use crate::crawl::observe::{CrawlObserver, NullObserver};
use crate::crawl::session::{CrawlSession, Observation, PageMatcher, QuerySource};
use crate::crawl::CrawlReport;
use crate::local::LocalDb;
use crate::query::Query;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use smartcrawl_hidden::{RetryPolicy, SearchInterface, SearchPage};
use smartcrawl_match::Matcher;

/// [`QuerySource`] for NaiveCrawl: each local record's full document as a
/// conjunctive query, in seeded random order, skipping empty documents.
pub struct NaiveSource<'a> {
    local: &'a LocalDb,
    order: Vec<usize>,
    cursor: usize,
    matches: PageMatcher<'a>,
    ctx: TextContext,
}

impl<'a> NaiveSource<'a> {
    /// Builds the source. `ctx` must be the context `local` was built with.
    pub fn new(local: &'a LocalDb, matcher: Matcher, seed: u64, ctx: TextContext) -> Self {
        let mut order: Vec<usize> = (0..local.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        Self { local, order, cursor: 0, matches: PageMatcher::new(local, matcher), ctx }
    }
}

impl QuerySource for NaiveSource<'_> {
    fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
        while self.cursor < self.order.len() {
            let i = self.order[self.cursor];
            self.cursor += 1;
            let doc = self.local.doc(i);
            if doc.is_empty() {
                continue; // nothing to ask about
            }
            return Some(Query::from_document(doc).render(&self.ctx));
        }
        None
    }

    fn next_queries(&mut self, _issued: usize, m: usize) -> Vec<Vec<String>> {
        // Cursor peek replicating next_query's empty-document skip, with
        // no cursor movement: the shuffled order is fixed up front, so
        // these forecasts are always right.
        let mut hints = Vec::with_capacity(m);
        for &i in self.order.iter().skip(self.cursor) {
            if hints.len() >= m {
                break;
            }
            let doc = self.local.doc(i);
            if !doc.is_empty() {
                hints.push(Query::from_document(doc).render(&self.ctx));
            }
        }
        hints
    }

    fn observe(&mut self, _keywords: &[String], page: &SearchPage, _k: usize) -> Observation {
        Observation {
            newly_covered: self.matches.absorb(&page.records, &mut self.ctx),
            removed: 0,
        }
    }

    fn selection_stats(&self) -> crate::select::engine::SelectionStats {
        self.matches.stats()
    }
}

/// Runs NaiveCrawl with the given budget: for each local record (random
/// order, seeded), issue its full document as a conjunctive query and match
/// the returned page against the local database.
pub fn naive_crawl<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    seed: u64,
    ctx: TextContext,
) -> CrawlReport {
    naive_crawl_with(local, iface, budget, matcher, seed, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`naive_crawl`] with a retry policy and an observer.
#[allow(clippy::too_many_arguments)] // mirrors naive_crawl plus the two session knobs
pub fn naive_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    seed: u64,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    ctx: TextContext,
) -> CrawlReport {
    let mut source = NaiveSource::new(local, matcher, seed, ctx);
    CrawlSession::new(budget).with_retry(retry).run(&mut source, iface, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_text::Record;

    fn world() -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["golden dragon palace"]),
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(3)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec![], 2.0),
                HiddenRecord::new(1, Record::from(["jade noodle house"]), vec![], 1.0),
            ])
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn covers_one_record_per_matching_query() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 3, Matcher::Exact, 1, ctx);
        assert_eq!(report.queries_issued(), 3);
        // Two of the three records exist in H; the third's query returns
        // nothing.
        assert_eq!(report.covered_claimed(), 2);
    }

    #[test]
    fn respects_budget() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 1, Matcher::Exact, 1, ctx);
        assert_eq!(report.queries_issued(), 1);
        assert!(report.covered_claimed() <= 1);
    }

    #[test]
    fn data_error_breaks_the_specific_query() {
        // "Lotus of Siam 12345": the bogus keyword poisons the conjunctive
        // query (paper §1's motivating example).
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["lotus siam 12345"])], &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records([HiddenRecord::new(0, Record::from(["lotus siam"]), vec![], 1.0)])
            .build();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 1, Matcher::Exact, 1, ctx);
        assert_eq!(report.covered_claimed(), 0);
        assert!(report.steps[0].returned.is_empty());
    }

    #[test]
    fn order_is_deterministic_per_seed() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let a = naive_crawl(&local, &mut iface, 3, Matcher::Exact, 5, ctx);
        let (ctx2, local2, _) = world();
        let mut iface2 = Metered::new(&hidden, None);
        let b = naive_crawl(&local2, &mut iface2, 3, Matcher::Exact, 5, ctx2);
        let ka: Vec<_> = a.steps.iter().map(|s| s.keywords.clone()).collect();
        let kb: Vec<_> = b.steps.iter().map(|s| s.keywords.clone()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn event_counts_match_report() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 3, Matcher::Exact, 1, ctx);
        assert_eq!(report.events.queries_issued, report.queries_issued());
        assert_eq!(report.events.pages_received, report.queries_issued());
        assert_eq!(report.events.matched, report.covered_claimed());
    }
}
