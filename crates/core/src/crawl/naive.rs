//! NaiveCrawl (paper §1, Appendix C): one maximally-specific query per
//! local record, issued in random order — the strategy OpenRefine's
//! reconciliation API uses. No query sharing, fragile under data errors
//! (a single wrong keyword makes the conjunctive query return nothing).

use crate::context::TextContext;
use crate::crawl::{CrawlReport, CrawlStep, EnrichedPair};
use crate::local::{LocalDb, LocalMatchIndex};
use crate::query::Query;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use smartcrawl_hidden::SearchInterface;
use smartcrawl_match::Matcher;

/// Runs NaiveCrawl with the given budget: for each local record (random
/// order, seeded), issue its full document as a conjunctive query and match
/// the returned page against the local database.
pub fn naive_crawl<I: SearchInterface>(
    local: &LocalDb,
    iface: &mut I,
    budget: usize,
    matcher: Matcher,
    seed: u64,
    mut ctx: TextContext,
) -> CrawlReport {
    let match_index = LocalMatchIndex::build(local);
    let mut order: Vec<usize> = (0..local.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    let mut report = CrawlReport::default();
    let mut covered = vec![false; local.len()];
    let uncovered_only: Vec<bool> = vec![true; local.len()];
    let k = iface.k();

    for &i in &order {
        if report.steps.len() >= budget {
            break;
        }
        let doc = local.doc(i);
        if doc.is_empty() {
            continue; // nothing to ask about
        }
        let keywords = Query::from_document(doc).render(&ctx);
        let Ok(page) = iface.search(&keywords) else { break };
        for r in &page.records {
            let rdoc = ctx.doc_of_fields(&r.fields);
            for d in match_index.find_matches(&rdoc, matcher, &uncovered_only) {
                if !covered[d] {
                    covered[d] = true;
                    report.enriched.push(EnrichedPair {
                        local: d,
                        external: r.external_id,
                        payload: r.payload.clone(),
                        hidden_fields: r.fields.clone(),
                    });
                }
            }
        }
        report.steps.push(CrawlStep {
            keywords,
            returned: page.records.iter().map(|r| r.external_id).collect(),
            full_page: page.is_full(k),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_text::Record;

    fn world() -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![
                Record::from(["thai noodle house"]),
                Record::from(["jade noodle house"]),
                Record::from(["golden dragon palace"]),
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(3)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec![], 2.0),
                HiddenRecord::new(1, Record::from(["jade noodle house"]), vec![], 1.0),
            ])
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn covers_one_record_per_matching_query() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 3, Matcher::Exact, 1, ctx);
        assert_eq!(report.queries_issued(), 3);
        // Two of the three records exist in H; the third's query returns
        // nothing.
        assert_eq!(report.covered_claimed(), 2);
    }

    #[test]
    fn respects_budget() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 1, Matcher::Exact, 1, ctx);
        assert_eq!(report.queries_issued(), 1);
        assert!(report.covered_claimed() <= 1);
    }

    #[test]
    fn data_error_breaks_the_specific_query() {
        // "Lotus of Siam 12345": the bogus keyword poisons the conjunctive
        // query (paper §1's motivating example).
        let mut ctx = TextContext::new();
        let local = LocalDb::build(vec![Record::from(["lotus siam 12345"])], &mut ctx);
        let hidden = HiddenDbBuilder::new()
            .k(5)
            .records([HiddenRecord::new(0, Record::from(["lotus siam"]), vec![], 1.0)])
            .build();
        let mut iface = Metered::new(&hidden, None);
        let report = naive_crawl(&local, &mut iface, 1, Matcher::Exact, 1, ctx);
        assert_eq!(report.covered_claimed(), 0);
        assert!(report.steps[0].returned.is_empty());
    }

    #[test]
    fn order_is_deterministic_per_seed() {
        let (ctx, local, hidden) = world();
        let mut iface = Metered::new(&hidden, None);
        let a = naive_crawl(&local, &mut iface, 3, Matcher::Exact, 5, ctx);
        let (ctx2, local2, _) = world();
        let mut iface2 = Metered::new(&hidden, None);
        let b = naive_crawl(&local2, &mut iface2, 3, Matcher::Exact, 5, ctx2);
        let ka: Vec<_> = a.steps.iter().map(|s| s.keywords.clone()).collect();
        let kb: Vec<_> = b.steps.iter().map(|s| s.keywords.clone()).collect();
        assert_eq!(ka, kb);
    }
}
