//! Row population (paper §9, future work #3 / the "entity set completion"
//! related work [40, 44, 41, 37, 50]): instead of enriching existing rows
//! with new *columns*, crawl the hidden database for new *rows* of the
//! same kind as the local table.
//!
//! The local database now acts as a *description of the target domain*:
//! its frequent keyword sets characterize what the user's entities look
//! like ("thai … house … phoenix"). PopulateCrawl issues those queries in
//! decreasing order of expected page yield — `min(k, |q(H)|̂)` estimated
//! from the hidden sample, with §6.2's α-rule as the fallback — and
//! collects every distinct returned record. Unlike FullCrawl (which also
//! collects rows, but from sample-frequent keywords of the *whole* hidden
//! database), the pool is mined from `D`, so the crawl stays inside the
//! user's domain.
//!
//! Yield accounting is honest about duplicates: a query's realized value
//! is the number of records not returned by any earlier query, which the
//! report exposes per step.

use crate::context::TextContext;
use crate::crawl::observe::{CrawlObserver, NullObserver};
use crate::crawl::session::{CrawlSession, Observation, QuerySource};
use crate::crawl::CrawlReport;
use crate::estimate::{Estimator, EstimatorKind};
use crate::local::LocalDb;
use crate::pool::{PoolConfig, QueryPool};
use crate::sample::SampleIndex;
use crate::arena::RecordArena;
use smartcrawl_hidden::{RetryPolicy, Retrieved, SearchInterface, SearchPage};
use smartcrawl_sampler::HiddenSample;

/// Configuration of a row-population crawl.
#[derive(Debug, Clone)]
pub struct PopulateConfig {
    /// Query budget.
    pub budget: usize,
    /// Pool-generation parameters (mined from the local table). Naive
    /// per-record queries are still included — they fetch each row's
    /// immediate neighborhood.
    pub pool: PoolConfig,
}

impl Default for PopulateConfig {
    fn default() -> Self {
        Self { budget: 1000, pool: PoolConfig::default() }
    }
}

/// The outcome of a row-population crawl: the usual report plus the
/// collected rows.
#[derive(Debug)]
pub struct PopulateOutcome {
    /// Per-query steps (`returned` lists every record, including ones seen
    /// before).
    pub report: CrawlReport,
    /// Distinct collected rows, first-seen order.
    pub rows: Vec<Retrieved>,
}

/// [`QuerySource`] for row population: pool queries in decreasing order of
/// expected page yield, collecting every distinct returned record. The
/// collected rows accumulate in [`PopulateSource::rows`] (this source
/// enriches nothing — its product is new rows, not pairs).
pub struct PopulateSource {
    pool: QueryPool,
    /// Query indexes, best expected yield first.
    order: Vec<usize>,
    cursor: usize,
    /// Dedup of collected rows: the arena's "fresh" bit is the membership
    /// test, so repeat records cost one open-addressed probe.
    seen: RecordArena,
    /// Distinct collected rows, first-seen order.
    pub rows: Vec<Retrieved>,
    ctx: TextContext,
}

impl PopulateSource {
    /// Mines the pool from the local table and ranks it by expected yield.
    /// `ctx` must be the context `local` was built with.
    pub fn new(
        local: &LocalDb,
        sample: &HiddenSample,
        k: usize,
        cfg: &PopulateConfig,
        mut ctx: TextContext,
    ) -> Self {
        let pool = QueryPool::generate(local, &cfg.pool);
        let sample_index = SampleIndex::build(sample, &mut ctx);
        let estimator = Estimator::new(
            EstimatorKind::Biased,
            k,
            sample_index.theta(),
            local.len(),
            sample_index.len(),
        );

        // Expected page yield per query: an overflowing query fills the
        // page (k records); a solid one returns ≈ |q(H)|̂ records. Ties at
        // the cap are broken by the *uncapped* estimate — among queries all
        // expected to fill a page, the one with more estimated hidden rows
        // behind it is the better domain probe — then by pool index.
        let mut order: Vec<(usize, f64, f64)> = pool
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let freq_d = pool.matches(smartcrawl_index::QueryId(i as u32)).len();
                let freq_hs = sample_index.frequency(q.tokens());
                let est_hidden = if freq_hs > 0 && sample_index.theta() > 0.0 {
                    freq_hs as f64 / sample_index.theta()
                } else if estimator.alpha() > 0.0 {
                    freq_d as f64 / estimator.alpha()
                } else {
                    freq_d as f64
                };
                (i, est_hidden.min(k as f64), est_hidden)
            })
            .collect();
        order.sort_by(|a, b| {
            b.1.total_cmp(&a.1).then(b.2.total_cmp(&a.2)).then(a.0.cmp(&b.0))
        });

        Self {
            pool,
            order: order.into_iter().map(|(i, _, _)| i).collect(),
            cursor: 0,
            seen: RecordArena::new(),
            rows: Vec::new(),
            ctx,
        }
    }
}

impl QuerySource for PopulateSource {
    fn next_query(&mut self, _issued: usize) -> Option<Vec<String>> {
        let qi = *self.order.get(self.cursor)?;
        self.cursor += 1;
        Some(self.pool.render(smartcrawl_index::QueryId(qi as u32), &self.ctx))
    }

    fn next_queries(&mut self, _issued: usize, m: usize) -> Vec<Vec<String>> {
        // The yield-ranked order is fixed up front; a cursor-window peek
        // is an always-right forecast.
        self.order
            .iter()
            .skip(self.cursor)
            .take(m)
            .map(|&qi| self.pool.render(smartcrawl_index::QueryId(qi as u32), &self.ctx))
            .collect()
    }

    fn observe(&mut self, _keywords: &[String], page: &SearchPage, _k: usize) -> Observation {
        for r in &page.records {
            if self.seen.intern(r.external_id).1 {
                self.rows.push(r.clone());
            }
        }
        Observation::default()
    }
}

/// Crawls the hidden database for new rows resembling the local table.
pub fn populate_crawl<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    cfg: &PopulateConfig,
    ctx: TextContext,
) -> PopulateOutcome {
    populate_crawl_with(local, sample, iface, cfg, RetryPolicy::none(), &mut NullObserver, ctx)
}

/// [`populate_crawl`] with a retry policy and an observer.
pub fn populate_crawl_with<I: SearchInterface>(
    local: &LocalDb,
    sample: &HiddenSample,
    iface: &mut I,
    cfg: &PopulateConfig,
    retry: RetryPolicy,
    observer: &mut dyn CrawlObserver,
    ctx: TextContext,
) -> PopulateOutcome {
    let mut source = PopulateSource::new(local, sample, iface.k(), cfg, ctx);
    let report =
        CrawlSession::new(cfg.budget).with_retry(retry).run(&mut source, iface, observer);
    PopulateOutcome { report, rows: source.rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_hidden::{HiddenDbBuilder, HiddenRecord, Metered};
    use smartcrawl_sampler::bernoulli_sample;
    use smartcrawl_text::Record;

    /// Hidden DB: 30 "thai …" records (the domain) + 30 "steak …" records.
    fn world() -> (TextContext, LocalDb, smartcrawl_hidden::HiddenDb) {
        let mut ctx = TextContext::new();
        let local = LocalDb::build(
            vec![
                Record::from(["thai noodle house one"]),
                Record::from(["thai curry house two"]),
                Record::from(["thai garden house three"]),
            ],
            &mut ctx,
        );
        let hidden = HiddenDbBuilder::new()
            .k(10)
            .records((0..60u64).map(|i| {
                let name = if i < 30 {
                    format!("thai house variant{i}")
                } else {
                    format!("steak grill variant{i}")
                };
                HiddenRecord::new(i, Record::from([name]), vec![], i as f64)
            }))
            .build();
        (ctx, local, hidden)
    }

    #[test]
    fn collects_domain_rows_beyond_the_local_table() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.2, 1);
        let mut iface = Metered::new(&hidden, Some(12));
        let out = populate_crawl(
            &local,
            &sample,
            &mut iface,
            &PopulateConfig {
                budget: 12,
                pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
            },
            ctx,
        );
        assert!(!out.rows.is_empty());
        // The pool is mined from the thai-flavoured local table, so the
        // haul should be dominated by thai records.
        let thai = out.rows.iter().filter(|r| r.fields[0].contains("thai")).count();
        assert!(
            thai * 2 > out.rows.len(),
            "{thai} of {} rows in-domain",
            out.rows.len()
        );
        // Rows are distinct.
        let mut ids: Vec<u64> = out.rows.iter().map(|r| r.external_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.rows.len());
    }

    #[test]
    fn respects_budget() {
        let (ctx, local, hidden) = world();
        let sample = bernoulli_sample(&hidden, 0.2, 1);
        let mut iface = Metered::new(&hidden, Some(3));
        let out = populate_crawl(&local, &sample, &mut iface, &PopulateConfig {
            budget: 3,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
        }, ctx);
        assert!(out.report.queries_issued() <= 3);
    }

    #[test]
    fn high_yield_queries_come_first() {
        let (ctx, local, hidden) = world();
        // With full visibility, the overflowing "thai" query (page of k)
        // should be issued before any specific naive query.
        let sample = bernoulli_sample(&hidden, 1.0, 0);
        let mut iface = Metered::new(&hidden, None);
        let out = populate_crawl(&local, &sample, &mut iface, &PopulateConfig {
            budget: 1,
            pool: PoolConfig { min_support: 2, max_len: 2, seed: 1 },
        }, ctx);
        assert_eq!(out.report.steps[0].returned.len(), 10, "first query must fill the page");
    }
}
