//! Crawlers: the public entry points that spend a query budget against a
//! hidden database and report what they covered.
//!
//! * [`smart_crawl`] — the SmartCrawl framework (QSel-Simple, QSel-Bound,
//!   or QSel-Est);
//! * [`ideal_crawl`] — IdealCrawl: SmartCrawl with QSel-Ideal and free
//!   oracle evaluation (an upper bound, usable only against a simulator);
//! * [`naive_crawl`] — NaiveCrawl: one maximally-specific query per local
//!   record, in random order (what OpenRefine's reconciliation does);
//! * [`full_crawl`] — FullCrawl: classic hidden-database crawling that
//!   issues sample-frequent keywords to maximize *hidden* coverage,
//!   oblivious of `D`;
//! * [`online_smart_crawl`] — SmartCrawl with *runtime sampling* (paper
//!   §9 future work #1): no offline sample; sampling rounds are
//!   interleaved with crawling under one budget;
//! * [`populate_crawl`] — row population (paper §9 future work #3):
//!   crawl for new *rows* of the local table's kind instead of new
//!   columns.
//!
//! All of them run on the same [`CrawlSession`] driver ([`session`]),
//! differing only in their [`QuerySource`]; each also has a `*_with`
//! variant taking a [`RetryPolicy`](smartcrawl_hidden::RetryPolicy) and a
//! [`CrawlObserver`] ([`observe`]) for fault-tolerant, instrumented runs.

mod clean;
mod full;
mod naive;
pub mod observe;
mod online;
mod populate;
pub mod session;
mod smart;

pub use clean::{suggest_corrections, Correction};

pub use full::{full_crawl, full_crawl_with, FullSource};
pub use naive::{naive_crawl, naive_crawl_with, NaiveSource};
pub use observe::{
    CountingObserver, CrawlEvent, CrawlObserver, EventCounts, EventStamp, NullObserver, TraceLog,
};
pub use online::{online_smart_crawl, online_smart_crawl_with, OnlineCrawlConfig, OnlineSource};
pub use populate::{
    populate_crawl, populate_crawl_with, PopulateConfig, PopulateOutcome, PopulateSource,
};
pub use session::{
    CrawlSession, EngineSource, Observation, PhaseTimings, PipelineStats, QuerySource,
};
pub use smart::{
    ideal_crawl, ideal_crawl_with, smart_crawl, smart_crawl_with, IdealCrawlConfig,
    SmartCrawlConfig,
};

use smartcrawl_hidden::ExternalId;
use std::sync::Arc;

/// One issued query and what came back.
#[derive(Debug, Clone)]
pub struct CrawlStep {
    /// The issued keywords.
    pub keywords: Vec<String>,
    /// External ids of the returned records, rank order.
    pub returned: Vec<ExternalId>,
    /// Whether the page hit the interface's `k` limit (possible overflow).
    pub full_page: bool,
}

/// A local record successfully matched to a crawled hidden record — the
/// enrichment output.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichedPair {
    /// Local record position.
    pub local: usize,
    /// Matching hidden record.
    pub external: ExternalId,
    /// The hidden record's enrichment attributes. Shared with the
    /// [`Retrieved`](smartcrawl_hidden::Retrieved) view it came from, so
    /// keeping an enrichment pair costs a refcount, not a cell copy.
    pub payload: Arc<[String]>,
    /// The hidden record's indexed fields, as returned (shared like
    /// `payload`) — kept so fuzzy matches can drive error detection (see
    /// [`suggest_corrections`]).
    pub hidden_fields: Arc<[String]>,
}

/// Everything a crawler did with its budget.
#[derive(Debug, Clone, Default)]
pub struct CrawlReport {
    /// Issued queries, in order.
    pub steps: Vec<CrawlStep>,
    /// Matcher-asserted local-to-hidden assignments (first match wins).
    pub enriched: Vec<EnrichedPair>,
    /// Local records the crawler removed from consideration (covered plus
    /// ΔD-predicted removals — SmartCrawl/IdealCrawl only).
    pub records_removed: usize,
    /// Selection-machinery work counters (SmartCrawl/IdealCrawl only;
    /// zeros for the baselines, which have no selection machinery).
    pub selection: crate::select::engine::SelectionStats,
    /// Wall-clock time spent per crawl phase (selection vs. search vs.
    /// matching), plus simulated retry backoff.
    pub timing: session::PhaseTimings,
    /// The session's own event tallies (kept regardless of which
    /// [`CrawlObserver`] was installed).
    pub events: observe::EventCounts,
    /// Query-result cache activity during this run — `None` unless a cache
    /// layer (e.g. `smartcrawl-cache`'s `CachedInterface`) sits in the
    /// interface stack. Always this run's *delta*, even when the cache
    /// store is shared across runs (warm sweeps).
    pub cache: Option<smartcrawl_hidden::CacheStats>,
    /// Speculation accounting of the pipelined driver — `None` for
    /// sequential runs (pipeline depth 1, or no
    /// [`prefetch_handle`](smartcrawl_hidden::SearchInterface::prefetch_handle)
    /// in the interface stack). Pure profile, like `cache`: never folded
    /// into result digests.
    pub pipeline: Option<session::PipelineStats>,
    /// Page-cache activity of the on-disk index backend — `None` on the
    /// (default) RAM backend. Attached by the bench harness after the
    /// crawl; cache statistics are schedule-dependent, so they are
    /// reported but never folded into result digests.
    pub store: Option<smartcrawl_store::StoreReport>,
}

impl CrawlReport {
    /// Number of queries actually issued.
    pub fn queries_issued(&self) -> usize {
        self.steps.len()
    }

    /// Number of local records the crawler *believes* it covered (by its
    /// own matcher — ground-truth coverage is computed by the evaluation
    /// harness).
    pub fn covered_claimed(&self) -> usize {
        self.enriched.len()
    }

    /// A one-line human-readable summary (used by the CLI and examples).
    pub fn summary(&self) -> String {
        format!(
            "{} queries issued, {} records covered, {} removed from D ({} priority recomputations, {} forward-index touches)",
            self.queries_issued(),
            self.covered_claimed(),
            self.records_removed,
            self.selection.stale_recomputes,
            self.selection.forward_touches,
        )
    }

    /// All distinct crawled external ids, in first-seen order.
    pub fn crawled_ids(&self) -> Vec<ExternalId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for step in &self.steps {
            for &id in &step.returned {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawled_ids_dedupe_across_steps() {
        let report = CrawlReport {
            steps: vec![
                CrawlStep {
                    keywords: vec!["a".into()],
                    returned: vec![ExternalId(1), ExternalId(2)],
                    full_page: false,
                },
                CrawlStep {
                    keywords: vec!["b".into()],
                    returned: vec![ExternalId(2), ExternalId(3)],
                    full_page: false,
                },
            ],
            ..Default::default()
        };
        assert_eq!(report.queries_issued(), 2);
        assert_eq!(
            report.crawled_ids(),
            vec![ExternalId(1), ExternalId(2), ExternalId(3)]
        );
        let summary = report.summary();
        assert!(summary.starts_with("2 queries issued, 0 records covered"));
        assert_eq!(
            summary,
            "2 queries issued, 0 records covered, 0 removed from D \
             (0 priority recomputations, 0 forward-index touches)"
        );
        assert!(!summary.contains("  "), "no run-on whitespace: {summary:?}");
    }
}
