//! Property tests for the workload generators: the scenario invariants the
//! rest of the system relies on must hold for arbitrary configurations.

use proptest::prelude::*;
use smartcrawl_data::{Domain, Scenario, ScenarioConfig};
use smartcrawl_hidden::SearchMode;
use std::collections::HashSet;

fn config_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        0u64..500,
        20usize..60,
        0usize..8,
        prop_oneof![Just(Domain::Publications), Just(Domain::Businesses)],
        prop_oneof![Just(0.0f64), Just(0.3f64)],
        prop_oneof![Just(0.0f64), Just(0.4f64)],
    )
        .prop_map(|(seed, local, delta, domain, error_pct, drift_pct)| {
            let mut cfg = ScenarioConfig::tiny(seed);
            cfg.domain = domain;
            cfg.local_size = local;
            cfg.delta_d = delta.min(local);
            cfg.hidden_size = 300;
            cfg.error_pct = error_pct;
            cfg.drift_pct = drift_pct;
            if domain == Domain::Businesses {
                cfg.mode = SearchMode::Disjunctive;
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scenario_invariants(cfg in config_strategy()) {
        let s = Scenario::build(cfg.clone());

        // Sizes.
        prop_assert_eq!(s.local.len(), cfg.local_size);
        prop_assert_eq!(s.hidden.len(), cfg.hidden_size);
        prop_assert_eq!(s.truth.num_local(), cfg.local_size);

        // ΔD accounting is exact.
        prop_assert_eq!(s.truth.matchable_count(), cfg.local_size - cfg.delta_d);

        // Local entities are distinct.
        let entities: HashSet<_> =
            (0..s.truth.num_local()).map(|i| s.truth.local_entity(i)).collect();
        prop_assert_eq!(entities.len(), cfg.local_size);

        // Every hidden record resolves to an entity, and hidden external
        // ids are dense 0..|H|.
        for r in s.hidden.iter() {
            prop_assert!(s.truth.entity_of_external(r.external_id).is_some());
            prop_assert!((r.external_id.0 as usize) < cfg.hidden_size);
        }

        // Matchable locals' entities exist in H; ΔD locals' do not.
        let hidden_entities: HashSet<_> = s
            .hidden
            .iter()
            .map(|r| s.truth.entity_of_external(r.external_id).unwrap())
            .collect();
        for i in 0..s.truth.num_local() {
            prop_assert_eq!(
                s.truth.local_has_match(i),
                hidden_entities.contains(&s.truth.local_entity(i))
            );
        }

        // No record has an empty document-able text.
        for r in &s.local {
            prop_assert!(!r.full_text().trim().is_empty());
        }
    }

    #[test]
    fn scenarios_are_reproducible(cfg in config_strategy()) {
        let a = Scenario::build(cfg.clone());
        let b = Scenario::build(cfg);
        prop_assert_eq!(&a.local, &b.local);
        let ida: Vec<u64> = a.hidden.iter().map(|r| r.external_id.0).collect();
        let idb: Vec<u64> = b.hidden.iter().map(|r| r.external_id.0).collect();
        prop_assert_eq!(ida, idb);
    }

    #[test]
    fn zipf_sampler_is_well_formed(n in 1usize..200, s in 0.0f64..2.5) {
        let z = smartcrawl_data::Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing pmf.
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }
}
