//! Error injection and textual drift (paper §7.1.1, `error%`).
//!
//! "Suppose error% = 10%. We will randomly select 10% records from D. For
//! each record, we removed a word, added a new word, and replaced an
//! existing word with a new word with the probability of 1/3." The same
//! perturbation, applied to the *hidden* copies, models the data drift of
//! the Yelp experiment (the snapshot grew stale while Yelp kept updating).

use rand::{rngs::StdRng, Rng, SeedableRng};
use smartcrawl_text::Record;

/// Which perturbation was applied to a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// A word was deleted.
    Removed,
    /// A novel word was inserted.
    Added,
    /// A word was replaced by a novel word.
    Replaced,
}

/// Tallies of applied perturbations, for auditing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Records that lost a word.
    pub removed: usize,
    /// Records that gained a novel word.
    pub added: usize,
    /// Records with a word swapped for a novel one.
    pub replaced: usize,
}

impl ErrorStats {
    /// Total perturbed records.
    pub fn total(&self) -> usize {
        self.removed + self.added + self.replaced
    }
}

/// A generator of words guaranteed not to collide with corpus vocabulary.
fn novel_word(rng: &mut StdRng) -> String {
    format!("{}q{}", crate::names::synth_word(rng.gen_range(0..1_000_000)), rng.gen_range(0..100))
}

/// Applies one random perturbation to `record`; returns what was done, or
/// `None` if the record had no usable words.
pub fn perturb_record(record: &mut Record, rng: &mut StdRng) -> Option<ErrorKind> {
    // Collect (field, word count) for fields with at least one word.
    let candidates: Vec<usize> = record
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.trim().is_empty())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let field = candidates[rng.gen_range(0..candidates.len())];
    let mut words: Vec<String> =
        record.fields()[field].split_whitespace().map(str::to_owned).collect();
    let kind = match rng.gen_range(0..3) {
        0 if words.len() >= 2 => {
            let i = rng.gen_range(0..words.len());
            words.remove(i);
            ErrorKind::Removed
        }
        1 => {
            let i = rng.gen_range(0..=words.len());
            words.insert(i, novel_word(rng));
            ErrorKind::Added
        }
        _ => {
            let i = rng.gen_range(0..words.len());
            words[i] = novel_word(rng);
            ErrorKind::Replaced
        }
    };
    record.fields_mut()[field] = words.join(" ");
    Some(kind)
}

/// Perturbs `error_pct` (0.0–1.0) of `records`, chosen uniformly at random,
/// one perturbation each. Deterministic under `seed`.
pub fn inject_errors(records: &mut [Record], error_pct: f64, seed: u64) -> ErrorStats {
    assert!((0.0..=1.0).contains(&error_pct), "error_pct must be a fraction");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = records.len();
    let count = ((n as f64) * error_pct).round() as usize;
    let chosen = rand::seq::index::sample(&mut rng, n, count.min(n));
    let mut stats = ErrorStats::default();
    for i in chosen.iter() {
        match perturb_record(&mut records[i], &mut rng) {
            Some(ErrorKind::Removed) => stats.removed += 1,
            Some(ErrorKind::Added) => stats.added += 1,
            Some(ErrorKind::Replaced) => stats.replaced += 1,
            None => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::from([format!("alpha beta gamma delta {i}"), "phoenix".to_owned()]))
            .collect()
    }

    #[test]
    fn injects_requested_fraction() {
        let mut rs = records(200);
        let stats = inject_errors(&mut rs, 0.25, 1);
        assert_eq!(stats.total(), 50);
    }

    #[test]
    fn zero_pct_changes_nothing() {
        let mut rs = records(50);
        let before = rs.clone();
        let stats = inject_errors(&mut rs, 0.0, 2);
        assert_eq!(stats.total(), 0);
        assert_eq!(rs, before);
    }

    #[test]
    fn full_pct_touches_every_record() {
        let mut rs = records(40);
        let before = rs.clone();
        let stats = inject_errors(&mut rs, 1.0, 3);
        assert_eq!(stats.total(), 40);
        let changed = rs.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 40);
    }

    #[test]
    fn perturbation_kinds_all_occur() {
        let mut rs = records(300);
        let stats = inject_errors(&mut rs, 1.0, 4);
        assert!(stats.removed > 0, "{stats:?}");
        assert!(stats.added > 0, "{stats:?}");
        assert!(stats.replaced > 0, "{stats:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = records(50);
        let mut b = records(50);
        inject_errors(&mut a, 0.5, 7);
        inject_errors(&mut b, 0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn single_word_records_are_never_emptied() {
        let mut rs: Vec<Record> = (0..100).map(|_| Record::from(["solo"])).collect();
        inject_errors(&mut rs, 1.0, 5);
        for r in &rs {
            assert!(!r.fields()[0].trim().is_empty());
        }
    }

    #[test]
    fn empty_record_is_skipped_gracefully() {
        let mut r = Record::from([""]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(perturb_record(&mut r, &mut rng), None);
    }
}
