//! Scenario assembly: turns generated entities into the `(D, H, ground
//! truth)` triple of one experiment, following the paper's construction
//! protocol (§7.1.1–§7.1.2).

use crate::businesses::BusinessGen;
use crate::errors::{inject_errors, perturb_record};
use crate::publications::PublicationGen;
use crate::EntityId;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use smartcrawl_hidden::{ExternalId, HiddenDb, HiddenDbBuilder, HiddenRecord, Ranking, SearchMode};
use smartcrawl_text::Record;
use std::collections::{HashMap, HashSet};

/// One generated real-world entity, before it is split into local and
/// hidden representations.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Ground-truth identity.
    pub id: EntityId,
    /// Indexed attributes.
    pub fields: Vec<String>,
    /// Enrichment attributes (only the hidden side carries them).
    pub payload: Vec<String>,
    /// Hidden-database ranking signal (year, review count, …).
    pub rank_signal: f64,
    /// Whether the entity belongs to the subpopulation `D` is drawn from.
    pub community: bool,
}

/// Which synthetic universe to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// DBLP-like publications (title, venue, authors; ranked by year).
    Publications,
    /// Yelp-like Arizona businesses (name, city; ranked by review count).
    Businesses,
}

/// Experiment parameters — mirrors the paper's Table 3.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Universe flavour.
    pub domain: Domain,
    /// `|H|` (Table 3 default: 100 000).
    pub hidden_size: usize,
    /// `|D|`, including the `ΔD` part (default: 10 000).
    pub local_size: usize,
    /// `|ΔD| = |D − H|`: local records withheld from `H` (default: 0).
    pub delta_d: usize,
    /// Top-`k` result limit (default: 100).
    pub k: usize,
    /// Fraction of local records perturbed (Table 3 `error%`, default 0).
    pub error_pct: f64,
    /// Fraction of matchable *hidden* copies textually drifted (models the
    /// stale-snapshot effect of the Yelp experiment; default 0).
    pub drift_pct: f64,
    /// Search semantics of the hidden interface.
    pub mode: SearchMode,
    /// Hidden ranking function (opaque to the crawler).
    pub ranking: Ranking,
    /// Master seed; every derived random choice flows from it.
    pub seed: u64,
    /// Restrict local-pool publications to recent years (2010–2018), so a
    /// year-descending ranking correlates with `D`-membership — the ω > 1
    /// regime of §5.3. Publications domain only.
    pub recent_local: bool,
}

impl ScenarioConfig {
    /// The paper's Table 3 defaults: |H| = 100 000, |D| = 10 000, k = 100,
    /// ΔD = 0, error% = 0, conjunctive DBLP-style engine ranked by year.
    pub fn paper_default() -> Self {
        Self {
            domain: Domain::Publications,
            hidden_size: 100_000,
            local_size: 10_000,
            delta_d: 0,
            k: 100,
            error_pct: 0.0,
            drift_pct: 0.0,
            mode: SearchMode::Conjunctive,
            ranking: Ranking::SignalDesc,
            seed: 42,
            recent_local: false,
        }
    }

    /// The Yelp-style setup of §7.1.2: a stale 3 000-record snapshot of
    /// Arizona businesses matched against Yelp's *live* hidden database —
    /// larger than the snapshot (listings added since the dump) — through
    /// a k = 50 non-conjunctive interface, with textual drift and closures
    /// standing in for the years between snapshot and crawl. |H| is sized
    /// so that the snapshot stays a meaningful fraction of the hidden
    /// database (the regime where the paper's query sharing pays off on
    /// Yelp).
    pub fn yelp_like() -> Self {
        Self {
            domain: Domain::Businesses,
            hidden_size: 60_000,
            local_size: 3_000,
            delta_d: 150,
            k: 50,
            error_pct: 0.0,
            drift_pct: 0.30,
            mode: SearchMode::Disjunctive,
            ranking: Ranking::SignalDesc,
            seed: 42,
            recent_local: false,
        }
    }

    /// A small configuration for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            domain: Domain::Publications,
            hidden_size: 500,
            local_size: 80,
            delta_d: 8,
            k: 10,
            error_pct: 0.0,
            drift_pct: 0.0,
            mode: SearchMode::Conjunctive,
            ranking: Ranking::SignalDesc,
            seed,
            recent_local: false,
        }
    }

    /// `|D ∩ H|` under this configuration.
    pub fn matchable(&self) -> usize {
        self.local_size - self.delta_d
    }
}

/// Evaluation-only knowledge: which entity each record refers to.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    local_entities: Vec<EntityId>,
    external_entity: HashMap<u64, EntityId>,
    hidden_entities: HashSet<EntityId>,
    community_entities: HashSet<EntityId>,
}

impl GroundTruth {
    /// The entity behind local record `i`.
    pub fn local_entity(&self, i: usize) -> EntityId {
        self.local_entities[i]
    }

    /// Number of local records.
    pub fn num_local(&self) -> usize {
        self.local_entities.len()
    }

    /// The entity behind a hidden record, by its external id.
    pub fn entity_of_external(&self, ext: ExternalId) -> Option<EntityId> {
        self.external_entity.get(&ext.0).copied()
    }

    /// Whether local record `i` has a matching hidden record
    /// (`d ∈ D ∩ H`).
    pub fn local_has_match(&self, i: usize) -> bool {
        self.hidden_entities.contains(&self.local_entities[i])
    }

    /// `|D ∩ H|`: how many local records can possibly be covered.
    pub fn matchable_count(&self) -> usize {
        (0..self.local_entities.len()).filter(|&i| self.local_has_match(i)).count()
    }

    /// Whether an entity belongs to the community subpopulation `D` was
    /// drawn from (used to score row-population crawls).
    pub fn is_community(&self, e: EntityId) -> bool {
        self.community_entities.contains(&e)
    }

    /// Number of community entities present in the hidden database.
    pub fn hidden_community_count(&self) -> usize {
        self.hidden_entities.iter().filter(|e| self.community_entities.contains(e)).count()
    }
}

/// A fully assembled experiment world.
#[derive(Debug)]
pub struct Scenario {
    /// The local database `D` (records only — the crawler indexes them).
    pub local: Vec<Record>,
    /// The hidden database `H`, reachable through its search interface.
    pub hidden: HiddenDb,
    /// Evaluation-only entity mapping.
    pub truth: GroundTruth,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Builds a scenario deterministically from its configuration.
    ///
    /// # Panics
    /// Panics if `delta_d > local_size` or `matchable > hidden_size`.
    pub fn build(config: ScenarioConfig) -> Self {
        assert!(config.delta_d <= config.local_size, "ΔD cannot exceed |D|");
        let matchable = config.matchable();
        assert!(matchable <= config.hidden_size, "|D ∩ H| cannot exceed |H|");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD5EE_B00C);

        // 1. Generate the local pool (community subpopulation) and the rest
        //    of the hidden universe from one generator, so entity ids stay
        //    unique.
        let mut community_entities: HashSet<EntityId> = HashSet::new();
        let rest_size = config.hidden_size - matchable;
        let (local_pool, rest): (Vec<Entity>, Vec<Entity>) = match config.domain {
            Domain::Publications => {
                let mut g = PublicationGen::new(config.seed.wrapping_add(1));
                let local = if config.recent_local {
                    g.community_recent(config.local_size)
                } else {
                    g.community(config.local_size)
                };
                (local, g.universe(rest_size))
            }
            Domain::Businesses => {
                let mut g = BusinessGen::new(config.seed.wrapping_add(1));
                (g.universe(config.local_size), g.universe(rest_size))
            }
        };

        // 2. Choose which local records are matchable (go into H): shuffle
        //    indices, first `matchable` make the cut; the rest are ΔD.
        let mut order: Vec<usize> = (0..config.local_size).collect();
        order.shuffle(&mut rng);
        let matchable_idx: HashSet<usize> = order[..matchable].iter().copied().collect();

        // 3. Assemble hidden entities: matchable local copies (possibly
        //    drifted) + the rest of the universe, shuffled.
        let mut hidden_entities: Vec<Entity> = order[..matchable]
            .iter()
            .map(|&i| local_pool[i].clone())
            .chain(rest)
            .collect();
        if config.drift_pct > 0.0 {
            let drift_n = ((matchable as f64) * config.drift_pct).round() as usize;
            let mut drift_rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
            let chosen = rand::seq::index::sample(&mut drift_rng, matchable, drift_n.min(matchable));
            for i in chosen.iter() {
                let mut rec = Record::new(hidden_entities[i].fields.clone());
                if perturb_record(&mut rec, &mut drift_rng).is_some() {
                    hidden_entities[i].fields = rec.fields().to_vec();
                }
            }
        }
        for e in local_pool.iter().chain(&hidden_entities) {
            if e.community {
                community_entities.insert(e.id);
            }
        }
        hidden_entities.shuffle(&mut rng);

        // 4. Build the hidden database; external ids are positions in the
        //    shuffled order — opaque with respect to entity identity.
        let mut external_entity = HashMap::with_capacity(hidden_entities.len());
        let mut hidden_entity_set = HashSet::with_capacity(hidden_entities.len());
        let hidden_records: Vec<HiddenRecord> = hidden_entities
            .iter()
            .enumerate()
            .map(|(ext, e)| {
                external_entity.insert(ext as u64, e.id);
                hidden_entity_set.insert(e.id);
                HiddenRecord::new(
                    ext as u64,
                    Record::new(e.fields.clone()),
                    e.payload.clone(),
                    e.rank_signal,
                )
            })
            .collect();
        let hidden = HiddenDbBuilder::new()
            .k(config.k)
            .ranking(config.ranking)
            .mode(config.mode)
            .records(hidden_records)
            .build();

        // 5. Local records: every local-pool entity, shuffled, with error
        //    injection applied after the split so hidden copies stay clean
        //    (errors live only in D, as in the paper).
        let mut local_order: Vec<usize> = (0..config.local_size).collect();
        local_order.shuffle(&mut rng);
        let mut local: Vec<Record> = Vec::with_capacity(config.local_size);
        let mut local_entities: Vec<EntityId> = Vec::with_capacity(config.local_size);
        for &i in &local_order {
            local.push(Record::new(local_pool[i].fields.clone()));
            local_entities.push(local_pool[i].id);
        }
        if config.error_pct > 0.0 {
            inject_errors(&mut local, config.error_pct, config.seed.wrapping_add(3));
        }

        // The ΔD accounting must match: matchable locals are exactly those
        // whose entity entered H.
        debug_assert_eq!(
            local_order.iter().filter(|&&i| matchable_idx.contains(&i)).count(),
            matchable
        );

        let truth = GroundTruth {
            local_entities,
            external_entity,
            hidden_entities: hidden_entity_set,
            community_entities,
        };
        Scenario { local, hidden, truth, config }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_config() {
        let s = Scenario::build(ScenarioConfig::tiny(1));
        assert_eq!(s.local.len(), 80);
        assert_eq!(s.hidden.len(), 500);
        assert_eq!(s.truth.num_local(), 80);
    }

    #[test]
    fn delta_d_accounting_is_exact() {
        let s = Scenario::build(ScenarioConfig::tiny(2));
        assert_eq!(s.truth.matchable_count(), 80 - 8);
    }

    #[test]
    fn zero_delta_d_means_full_coverage() {
        let mut cfg = ScenarioConfig::tiny(3);
        cfg.delta_d = 0;
        let s = Scenario::build(cfg);
        assert_eq!(s.truth.matchable_count(), 80);
    }

    #[test]
    fn matchable_locals_have_identical_hidden_text_without_drift() {
        let s = Scenario::build(ScenarioConfig::tiny(4));
        // Find each matchable local's hidden twin by entity and compare.
        let mut by_entity: HashMap<EntityId, Vec<String>> = HashMap::new();
        for r in s.hidden.iter() {
            let e = s.truth.entity_of_external(r.external_id).unwrap();
            by_entity.insert(e, r.searchable.fields().to_vec());
        }
        for i in 0..s.truth.num_local() {
            if s.truth.local_has_match(i) {
                let e = s.truth.local_entity(i);
                assert_eq!(by_entity[&e], s.local[i].fields().to_vec());
            }
        }
    }

    #[test]
    fn drift_changes_some_hidden_copies() {
        let mut cfg = ScenarioConfig::tiny(5);
        cfg.drift_pct = 0.5;
        let s = Scenario::build(cfg);
        let mut by_entity: HashMap<EntityId, Vec<String>> = HashMap::new();
        for r in s.hidden.iter() {
            let e = s.truth.entity_of_external(r.external_id).unwrap();
            by_entity.insert(e, r.searchable.fields().to_vec());
        }
        let mut drifted = 0;
        for i in 0..s.truth.num_local() {
            if s.truth.local_has_match(i) {
                let e = s.truth.local_entity(i);
                if by_entity[&e] != s.local[i].fields().to_vec() {
                    drifted += 1;
                }
            }
        }
        assert!(drifted >= 20, "expected ~36 drifted records, saw {drifted}");
    }

    #[test]
    fn error_injection_touches_local_side_only() {
        let mut cfg = ScenarioConfig::tiny(6);
        cfg.error_pct = 1.0;
        cfg.delta_d = 0;
        let s = Scenario::build(cfg.clone());
        let mut clean_cfg = cfg;
        clean_cfg.error_pct = 0.0;
        let clean = Scenario::build(clean_cfg);
        // Hidden sides identical; local sides differ.
        let dirty_hidden: Vec<_> = s.hidden.iter().map(|r| r.searchable.fields().to_vec()).collect();
        let clean_hidden: Vec<_> =
            clean.hidden.iter().map(|r| r.searchable.fields().to_vec()).collect();
        assert_eq!(dirty_hidden, clean_hidden);
        let differing =
            s.local.iter().zip(&clean.local).filter(|(a, b)| a != b).count();
        assert!(differing > 70, "only {differing} locals perturbed");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Scenario::build(ScenarioConfig::tiny(7));
        let b = Scenario::build(ScenarioConfig::tiny(7));
        assert_eq!(a.local, b.local);
        assert_eq!(a.hidden.len(), b.hidden.len());
    }

    #[test]
    fn yelp_like_config_is_well_formed() {
        let cfg = ScenarioConfig::yelp_like();
        assert_eq!(cfg.k, 50);
        assert_eq!(cfg.mode, SearchMode::Disjunctive);
        assert!(cfg.matchable() <= cfg.hidden_size);
    }

    #[test]
    #[should_panic(expected = "ΔD cannot exceed |D|")]
    fn oversized_delta_d_rejected() {
        let mut cfg = ScenarioConfig::tiny(8);
        cfg.delta_d = cfg.local_size + 1;
        Scenario::build(cfg);
    }

    #[test]
    fn community_flags_flow_into_ground_truth() {
        let s = Scenario::build(ScenarioConfig::tiny(12));
        // Every local entity is drawn from the community subpopulation.
        for i in 0..s.truth.num_local() {
            assert!(s.truth.is_community(s.truth.local_entity(i)));
        }
        // The hidden database mixes community and long-tail entities.
        let community = s.truth.hidden_community_count();
        assert!(community >= s.truth.matchable_count());
        assert!(community < s.hidden.len(), "long-tail entities must exist");
    }

    #[test]
    fn business_domain_builds() {
        let mut cfg = ScenarioConfig::tiny(9);
        cfg.domain = Domain::Businesses;
        cfg.mode = SearchMode::Disjunctive;
        let s = Scenario::build(cfg);
        assert_eq!(s.local.len(), 80);
        assert_eq!(s.hidden.mode(), SearchMode::Disjunctive);
    }
}
