//! Scenario assembly: turns generated entities into the `(D, H, ground
//! truth)` triple of one experiment, following the paper's construction
//! protocol (§7.1.1–§7.1.2).
//!
//! Two assembly paths share one deterministic skeleton:
//!
//! * [`Scenario::build`] — the original all-in-RAM path: every hidden
//!   entity is materialized, then loaded into an in-memory [`HiddenDb`].
//! * [`Scenario::build_with_store`] — the out-of-core path: the long-tail
//!   ("rest") entities are spilled to a store blob as they stream out of
//!   the generator, and hidden records are then yielded one at a time, in
//!   the same shuffled order, straight into the disk-backed [`HiddenDb`]
//!   builder. Peak memory holds the local pool, the shuffle permutations,
//!   and the ground-truth id maps — never the full hidden record set.
//!
//! Both paths draw from identical RNG streams (`Vec::shuffle` consumes
//! draws as a function of length only, so shuffling index vectors
//! reproduces the exact entity permutation), which makes their scenarios —
//! and every crawl digest downstream — byte-identical.

use crate::businesses::BusinessGen;
use crate::errors::{inject_errors, perturb_record};
use crate::publications::PublicationGen;
use crate::EntityId;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use smartcrawl_hidden::{ExternalId, HiddenDb, HiddenDbBuilder, HiddenRecord, Ranking, SearchMode};
use smartcrawl_store::format::{read_varint, write_varint};
use smartcrawl_store::{expect_store, BlobReader, BlobWriter, Locator, StoreRuntime};
use smartcrawl_text::Record;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One generated real-world entity, before it is split into local and
/// hidden representations.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Ground-truth identity.
    pub id: EntityId,
    /// Indexed attributes.
    pub fields: Vec<String>,
    /// Enrichment attributes (only the hidden side carries them).
    pub payload: Vec<String>,
    /// Hidden-database ranking signal (year, review count, …).
    pub rank_signal: f64,
    /// Whether the entity belongs to the subpopulation `D` is drawn from.
    pub community: bool,
}

/// Which synthetic universe to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// DBLP-like publications (title, venue, authors; ranked by year).
    Publications,
    /// Yelp-like Arizona businesses (name, city; ranked by review count).
    Businesses,
}

/// Experiment parameters — mirrors the paper's Table 3.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Universe flavour.
    pub domain: Domain,
    /// `|H|` (Table 3 default: 100 000).
    pub hidden_size: usize,
    /// `|D|`, including the `ΔD` part (default: 10 000).
    pub local_size: usize,
    /// `|ΔD| = |D − H|`: local records withheld from `H` (default: 0).
    pub delta_d: usize,
    /// Top-`k` result limit (default: 100).
    pub k: usize,
    /// Fraction of local records perturbed (Table 3 `error%`, default 0).
    pub error_pct: f64,
    /// Fraction of matchable *hidden* copies textually drifted (models the
    /// stale-snapshot effect of the Yelp experiment; default 0).
    pub drift_pct: f64,
    /// Search semantics of the hidden interface.
    pub mode: SearchMode,
    /// Hidden ranking function (opaque to the crawler).
    pub ranking: Ranking,
    /// Master seed; every derived random choice flows from it.
    pub seed: u64,
    /// Restrict local-pool publications to recent years (2010–2018), so a
    /// year-descending ranking correlates with `D`-membership — the ω > 1
    /// regime of §5.3. Publications domain only.
    pub recent_local: bool,
}

impl ScenarioConfig {
    /// The paper's Table 3 defaults: |H| = 100 000, |D| = 10 000, k = 100,
    /// ΔD = 0, error% = 0, conjunctive DBLP-style engine ranked by year.
    pub fn paper_default() -> Self {
        Self {
            domain: Domain::Publications,
            hidden_size: 100_000,
            local_size: 10_000,
            delta_d: 0,
            k: 100,
            error_pct: 0.0,
            drift_pct: 0.0,
            mode: SearchMode::Conjunctive,
            ranking: Ranking::SignalDesc,
            seed: 42,
            recent_local: false,
        }
    }

    /// The Yelp-style setup of §7.1.2: a stale 3 000-record snapshot of
    /// Arizona businesses matched against Yelp's *live* hidden database —
    /// larger than the snapshot (listings added since the dump) — through
    /// a k = 50 non-conjunctive interface, with textual drift and closures
    /// standing in for the years between snapshot and crawl. |H| is sized
    /// so that the snapshot stays a meaningful fraction of the hidden
    /// database (the regime where the paper's query sharing pays off on
    /// Yelp).
    pub fn yelp_like() -> Self {
        Self {
            domain: Domain::Businesses,
            hidden_size: 60_000,
            local_size: 3_000,
            delta_d: 150,
            k: 50,
            error_pct: 0.0,
            drift_pct: 0.30,
            mode: SearchMode::Disjunctive,
            ranking: Ranking::SignalDesc,
            seed: 42,
            recent_local: false,
        }
    }

    /// A small configuration for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            domain: Domain::Publications,
            hidden_size: 500,
            local_size: 80,
            delta_d: 8,
            k: 10,
            error_pct: 0.0,
            drift_pct: 0.0,
            mode: SearchMode::Conjunctive,
            ranking: Ranking::SignalDesc,
            seed,
            recent_local: false,
        }
    }

    /// `|D ∩ H|` under this configuration.
    pub fn matchable(&self) -> usize {
        self.local_size - self.delta_d
    }
}

/// Evaluation-only knowledge: which entity each record refers to.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    local_entities: Vec<EntityId>,
    external_entity: HashMap<u64, EntityId>,
    hidden_entities: HashSet<EntityId>,
    community_entities: HashSet<EntityId>,
}

impl GroundTruth {
    /// The entity behind local record `i`.
    pub fn local_entity(&self, i: usize) -> EntityId {
        self.local_entities[i]
    }

    /// Number of local records.
    pub fn num_local(&self) -> usize {
        self.local_entities.len()
    }

    /// The entity behind a hidden record, by its external id.
    pub fn entity_of_external(&self, ext: ExternalId) -> Option<EntityId> {
        self.external_entity.get(&ext.0).copied()
    }

    /// Whether local record `i` has a matching hidden record
    /// (`d ∈ D ∩ H`).
    pub fn local_has_match(&self, i: usize) -> bool {
        self.hidden_entities.contains(&self.local_entities[i])
    }

    /// `|D ∩ H|`: how many local records can possibly be covered.
    pub fn matchable_count(&self) -> usize {
        (0..self.local_entities.len()).filter(|&i| self.local_has_match(i)).count()
    }

    /// Whether an entity belongs to the community subpopulation `D` was
    /// drawn from (used to score row-population crawls).
    pub fn is_community(&self, e: EntityId) -> bool {
        self.community_entities.contains(&e)
    }

    /// Number of community entities present in the hidden database.
    pub fn hidden_community_count(&self) -> usize {
        self.hidden_entities.iter().filter(|e| self.community_entities.contains(e)).count()
    }
}

/// A fully assembled experiment world.
#[derive(Debug)]
pub struct Scenario {
    /// The local database `D` (records only — the crawler indexes them).
    pub local: Vec<Record>,
    /// The hidden database `H`, reachable through its search interface.
    pub hidden: HiddenDb,
    /// Evaluation-only entity mapping.
    pub truth: GroundTruth,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

/// The domain's entity generator, positioned after the local pool so the
/// long-tail entities come off it one at a time (`universe(n)` is exactly
/// `n` sequential `entity()` calls, so streaming draws the identical RNG
/// sequence).
#[derive(Debug)]
enum RestGen {
    Publications(PublicationGen),
    Businesses(BusinessGen),
}

impl RestGen {
    fn next(&mut self) -> Entity {
        match self {
            RestGen::Publications(g) => g.entity(None),
            RestGen::Businesses(g) => g.entity(),
        }
    }
}

/// Step 1 of the construction protocol: the local pool, eagerly (it is
/// `|D|`-sized, not `|H|`-sized), plus the generator ready to stream the
/// remaining `|H| − |D ∩ H|` universe entities.
struct WorldSeed {
    local_pool: Vec<Entity>,
    gen: RestGen,
    rng: StdRng,
    matchable: usize,
    rest_size: usize,
}

impl WorldSeed {
    fn generate(config: &ScenarioConfig) -> Self {
        assert!(config.delta_d <= config.local_size, "ΔD cannot exceed |D|");
        let matchable = config.matchable();
        assert!(matchable <= config.hidden_size, "|D ∩ H| cannot exceed |H|");
        let rng = StdRng::seed_from_u64(config.seed ^ 0xD5EE_B00C);
        let rest_size = config.hidden_size - matchable;
        let (local_pool, gen) = match config.domain {
            Domain::Publications => {
                let mut g = PublicationGen::new(config.seed.wrapping_add(1));
                let local = if config.recent_local {
                    g.community_recent(config.local_size)
                } else {
                    g.community(config.local_size)
                };
                (local, RestGen::Publications(g))
            }
            Domain::Businesses => {
                let mut g = BusinessGen::new(config.seed.wrapping_add(1));
                (g.universe(config.local_size), RestGen::Businesses(g))
            }
        };
        Self { local_pool, gen, rng, matchable, rest_size }
    }
}

/// Steps 2–3 of the construction protocol as index-space plans: which
/// local records enter `H`, which matchable copies drift, and the global
/// shuffle placing every hidden entity at its external id.
struct HiddenPlan {
    /// Local shuffle; the first `matchable` entries enter `H`.
    order: Vec<usize>,
    /// `perm[ext]` = pre-shuffle slot of the record with external id
    /// `ext`; slots `< matchable` are local copies, the rest are
    /// long-tail entities (slot − matchable indexes the generator
    /// stream).
    perm: Vec<u32>,
    /// Drifted field replacements, keyed by pre-shuffle slot.
    drifted: HashMap<u32, Vec<String>>,
}

impl HiddenPlan {
    fn draw(config: &ScenarioConfig, local_pool: &[Entity], rng: &mut StdRng) -> Self {
        let matchable = config.matchable();
        // 2. Choose which local records are matchable (go into H): shuffle
        //    indices, first `matchable` make the cut; the rest are ΔD.
        let mut order: Vec<usize> = (0..config.local_size).collect();
        order.shuffle(rng);

        // 3a. Textual drift on matchable hidden copies, from its own RNG
        //     stream so drift_pct does not perturb the shuffles.
        let mut drifted: HashMap<u32, Vec<String>> = HashMap::new();
        if config.drift_pct > 0.0 {
            let drift_n = ((matchable as f64) * config.drift_pct).round() as usize;
            let mut drift_rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
            let chosen = rand::seq::index::sample(&mut drift_rng, matchable, drift_n.min(matchable));
            for i in chosen.iter() {
                let mut rec = Record::new(local_pool[order[i]].fields.clone());
                if perturb_record(&mut rec, &mut drift_rng).is_some() {
                    drifted.insert(i as u32, rec.fields().to_vec());
                }
            }
        }

        // 3b. The hidden shuffle, over slots instead of materialized
        //     entities: shuffling draws from the RNG as a function of
        //     length only, so this consumes the exact draws the entity
        //     shuffle used to and lands every record at the same external
        //     id.
        let mut perm: Vec<u32> = (0..config.hidden_size as u32).collect();
        perm.shuffle(rng);

        Self { order, perm, drifted }
    }

    /// The hidden record with external id `ext`. `fetch_rest` resolves a
    /// long-tail index to its `(fields, payload, rank_signal)`.
    fn record_at(
        &self,
        ext: usize,
        matchable: usize,
        local_pool: &[Entity],
        fetch_rest: &mut impl FnMut(usize) -> (Vec<String>, Vec<String>, f64),
    ) -> HiddenRecord {
        let slot = self.perm[ext] as usize;
        if slot < matchable {
            let e = &local_pool[self.order[slot]];
            let fields = self
                .drifted
                .get(&(slot as u32))
                .cloned()
                .unwrap_or_else(|| e.fields.clone());
            HiddenRecord::new(ext as u64, Record::new(fields), e.payload.clone(), e.rank_signal)
        } else {
            let (fields, payload, rank_signal) = fetch_rest(slot - matchable);
            HiddenRecord::new(ext as u64, Record::new(fields), payload, rank_signal)
        }
    }

    /// The ground-truth entity behind external id `ext`.
    fn entity_at(
        &self,
        ext: usize,
        matchable: usize,
        local_pool: &[Entity],
        rest_ids: &[EntityId],
    ) -> EntityId {
        let slot = self.perm[ext] as usize;
        if slot < matchable {
            local_pool[self.order[slot]].id
        } else {
            rest_ids[slot - matchable]
        }
    }
}

/// Step 5: local records — every local-pool entity, shuffled, with error
/// injection applied after the split so hidden copies stay clean (errors
/// live only in D, as in the paper).
fn finish_local(
    config: &ScenarioConfig,
    local_pool: &[Entity],
    rng: &mut StdRng,
) -> (Vec<Record>, Vec<EntityId>) {
    let mut local_order: Vec<usize> = (0..config.local_size).collect();
    local_order.shuffle(rng);
    let mut local: Vec<Record> = Vec::with_capacity(config.local_size);
    let mut local_entities: Vec<EntityId> = Vec::with_capacity(config.local_size);
    for &i in &local_order {
        local.push(Record::new(local_pool[i].fields.clone()));
        local_entities.push(local_pool[i].id);
    }
    if config.error_pct > 0.0 {
        inject_errors(&mut local, config.error_pct, config.seed.wrapping_add(3));
    }
    (local, local_entities)
}

/// Assembles the evaluation-only ground truth from the id-level plan.
fn ground_truth(
    config: &ScenarioConfig,
    plan: &HiddenPlan,
    local_pool: &[Entity],
    rest_ids: &[EntityId],
    local_entities: Vec<EntityId>,
    community_entities: HashSet<EntityId>,
) -> GroundTruth {
    let matchable = config.matchable();
    let mut external_entity = HashMap::with_capacity(config.hidden_size);
    let mut hidden_entities = HashSet::with_capacity(config.hidden_size);
    for ext in 0..config.hidden_size {
        let id = plan.entity_at(ext, matchable, local_pool, rest_ids);
        external_entity.insert(ext as u64, id);
        hidden_entities.insert(id);
    }
    GroundTruth { local_entities, external_entity, hidden_entities, community_entities }
}

/// Serializes one long-tail entity's record payload for the spill blob
/// (the entity id travels in RAM — it is ground truth, not record data).
fn encode_rest_entity(e: &Entity, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&e.rank_signal.to_bits().to_le_bytes());
    write_varint(out, e.fields.len() as u64);
    for f in &e.fields {
        write_varint(out, f.len() as u64);
        out.extend_from_slice(f.as_bytes());
    }
    write_varint(out, e.payload.len() as u64);
    for p in &e.payload {
        write_varint(out, p.len() as u64);
        out.extend_from_slice(p.as_bytes());
    }
}

fn decode_cells(buf: &[u8], pos: &mut usize) -> Option<Vec<String>> {
    let n = usize::try_from(read_varint(buf, pos)?).ok()?;
    if n > buf.len() {
        return None;
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let len = usize::try_from(read_varint(buf, pos)?).ok()?;
        let bytes = buf.get(*pos..pos.checked_add(len)?)?;
        *pos += len;
        cells.push(String::from_utf8(bytes.to_vec()).ok()?);
    }
    Some(cells)
}

fn decode_rest_entity(buf: &[u8]) -> Option<(Vec<String>, Vec<String>, f64)> {
    let bits = buf.get(0..8)?.try_into().ok().map(u64::from_le_bytes)?;
    let mut pos = 8usize;
    let fields = decode_cells(buf, &mut pos)?;
    let payload = decode_cells(buf, &mut pos)?;
    (pos == buf.len()).then(|| (fields, payload, f64::from_bits(bits)))
}

impl Scenario {
    /// Builds a scenario deterministically from its configuration, with
    /// the hidden database entirely in RAM.
    ///
    /// # Panics
    /// Panics if `delta_d > local_size` or `matchable > hidden_size`.
    pub fn build(config: ScenarioConfig) -> Self {
        let mut world = WorldSeed::generate(&config);
        let plan = HiddenPlan::draw(&config, &world.local_pool, &mut world.rng);
        let matchable = world.matchable;

        // Materialize the long tail and collect community flags (the
        // community set is the local pool plus flagged universe entities).
        let rest: Vec<Entity> = (0..world.rest_size).map(|_| world.gen.next()).collect();
        let mut community_entities: HashSet<EntityId> = HashSet::new();
        for e in world.local_pool.iter().chain(&rest) {
            if e.community {
                community_entities.insert(e.id);
            }
        }
        let rest_ids: Vec<EntityId> = rest.iter().map(|e| e.id).collect();

        // 4. Build the hidden database; external ids are positions in the
        //    shuffled order — opaque with respect to entity identity.
        let mut fetch = |j: usize| {
            let e = &rest[j];
            (e.fields.clone(), e.payload.clone(), e.rank_signal)
        };
        let records: Vec<HiddenRecord> = (0..config.hidden_size)
            .map(|ext| plan.record_at(ext, matchable, &world.local_pool, &mut fetch))
            .collect();
        let hidden = HiddenDbBuilder::new()
            .k(config.k)
            .ranking(config.ranking)
            .mode(config.mode)
            .records(records)
            .build();

        let (local, local_entities) = finish_local(&config, &world.local_pool, &mut world.rng);
        let truth = ground_truth(
            &config,
            &plan,
            &world.local_pool,
            &rest_ids,
            local_entities,
            community_entities,
        );
        Scenario { local, hidden, truth, config }
    }

    /// Builds the same scenario as [`Scenario::build`] — byte-identical
    /// local database, ground truth, and query answers — but out-of-core:
    /// long-tail entities are spilled to a store blob as the generator
    /// emits them, and hidden records stream one at a time into the
    /// disk-backed [`HiddenDb`] living on `runtime`. The full hidden
    /// record set never exists in RAM.
    ///
    /// # Panics
    /// Panics if `delta_d > local_size` or `matchable > hidden_size`, and
    /// on spill-read failure after the spill file validated (the same
    /// fatal-by-design policy as every query-time store read).
    pub fn build_with_store(
        config: ScenarioConfig,
        runtime: Arc<StoreRuntime>,
    ) -> smartcrawl_store::Result<Self> {
        let mut world = WorldSeed::generate(&config);
        let plan = HiddenPlan::draw(&config, &world.local_pool, &mut world.rng);
        let matchable = world.matchable;

        // Stream the long tail straight to disk; only ids, community
        // flags, and blob locators stay in RAM.
        let rest_path = runtime.file_path("scenario-rest");
        let mut writer = BlobWriter::create(&rest_path, runtime.config().page_size)?;
        let mut rest_locs: Vec<Locator> = Vec::with_capacity(world.rest_size);
        let mut rest_ids: Vec<EntityId> = Vec::with_capacity(world.rest_size);
        let mut community_entities: HashSet<EntityId> = HashSet::new();
        for e in &world.local_pool {
            if e.community {
                community_entities.insert(e.id);
            }
        }
        let mut buf = Vec::new();
        for _ in 0..world.rest_size {
            let e = world.gen.next();
            if e.community {
                community_entities.insert(e.id);
            }
            rest_ids.push(e.id);
            encode_rest_entity(&e, &mut buf);
            rest_locs.push(writer.append(&buf)?);
        }
        writer.finish()?;

        let mut reader = BlobReader::open(
            &rest_path,
            (runtime.config().cache_pages / 16).max(2),
            runtime.shared_stats(),
        )?;
        let mut scratch = Vec::new();
        // The spill was just written and validated on open; a failed read
        // below is the store vanishing mid-build — fatal by design, like
        // every query-time read (the streaming iterator has no error
        // channel).
        let mut fetch = |j: usize| {
            expect_store(reader.read(rest_locs[j], &mut scratch), "scenario rest spill read");
            expect_store(
                decode_rest_entity(&scratch).ok_or_else(|| smartcrawl_store::StoreError::Corrupt {
                    path: rest_path.clone(),
                    detail: "undecodable spilled entity".to_string(),
                }),
                "scenario rest spill decode",
            )
        };
        let records = (0..config.hidden_size)
            .map(|ext| plan.record_at(ext, matchable, &world.local_pool, &mut fetch));
        let hidden = HiddenDbBuilder::new()
            .k(config.k)
            .ranking(config.ranking)
            .mode(config.mode)
            .build_streaming(records, Arc::clone(&runtime))?;
        drop(rest_locs);
        std::fs::remove_file(&rest_path)?;

        let (local, local_entities) = finish_local(&config, &world.local_pool, &mut world.rng);
        let truth = ground_truth(
            &config,
            &plan,
            &world.local_pool,
            &rest_ids,
            local_entities,
            community_entities,
        );
        Ok(Scenario { local, hidden, truth, config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_store::StoreConfig;

    #[test]
    fn sizes_match_config() {
        let s = Scenario::build(ScenarioConfig::tiny(1));
        assert_eq!(s.local.len(), 80);
        assert_eq!(s.hidden.len(), 500);
        assert_eq!(s.truth.num_local(), 80);
    }

    #[test]
    fn delta_d_accounting_is_exact() {
        let s = Scenario::build(ScenarioConfig::tiny(2));
        assert_eq!(s.truth.matchable_count(), 80 - 8);
    }

    #[test]
    fn zero_delta_d_means_full_coverage() {
        let mut cfg = ScenarioConfig::tiny(3);
        cfg.delta_d = 0;
        let s = Scenario::build(cfg);
        assert_eq!(s.truth.matchable_count(), 80);
    }

    #[test]
    fn matchable_locals_have_identical_hidden_text_without_drift() {
        let s = Scenario::build(ScenarioConfig::tiny(4));
        // Find each matchable local's hidden twin by entity and compare.
        let mut by_entity: HashMap<EntityId, Vec<String>> = HashMap::new();
        for r in s.hidden.iter() {
            let e = s.truth.entity_of_external(r.external_id).unwrap();
            by_entity.insert(e, r.searchable.fields().to_vec());
        }
        for i in 0..s.truth.num_local() {
            if s.truth.local_has_match(i) {
                let e = s.truth.local_entity(i);
                assert_eq!(by_entity[&e], s.local[i].fields().to_vec());
            }
        }
    }

    #[test]
    fn drift_changes_some_hidden_copies() {
        let mut cfg = ScenarioConfig::tiny(5);
        cfg.drift_pct = 0.5;
        let s = Scenario::build(cfg);
        let mut by_entity: HashMap<EntityId, Vec<String>> = HashMap::new();
        for r in s.hidden.iter() {
            let e = s.truth.entity_of_external(r.external_id).unwrap();
            by_entity.insert(e, r.searchable.fields().to_vec());
        }
        let mut drifted = 0;
        for i in 0..s.truth.num_local() {
            if s.truth.local_has_match(i) {
                let e = s.truth.local_entity(i);
                if by_entity[&e] != s.local[i].fields().to_vec() {
                    drifted += 1;
                }
            }
        }
        assert!(drifted >= 20, "expected ~36 drifted records, saw {drifted}");
    }

    #[test]
    fn error_injection_touches_local_side_only() {
        let mut cfg = ScenarioConfig::tiny(6);
        cfg.error_pct = 1.0;
        cfg.delta_d = 0;
        let s = Scenario::build(cfg.clone());
        let mut clean_cfg = cfg;
        clean_cfg.error_pct = 0.0;
        let clean = Scenario::build(clean_cfg);
        // Hidden sides identical; local sides differ.
        let dirty_hidden: Vec<_> = s.hidden.iter().map(|r| r.searchable.fields().to_vec()).collect();
        let clean_hidden: Vec<_> =
            clean.hidden.iter().map(|r| r.searchable.fields().to_vec()).collect();
        assert_eq!(dirty_hidden, clean_hidden);
        let differing =
            s.local.iter().zip(&clean.local).filter(|(a, b)| a != b).count();
        assert!(differing > 70, "only {differing} locals perturbed");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Scenario::build(ScenarioConfig::tiny(7));
        let b = Scenario::build(ScenarioConfig::tiny(7));
        assert_eq!(a.local, b.local);
        assert_eq!(a.hidden.len(), b.hidden.len());
    }

    #[test]
    fn yelp_like_config_is_well_formed() {
        let cfg = ScenarioConfig::yelp_like();
        assert_eq!(cfg.k, 50);
        assert_eq!(cfg.mode, SearchMode::Disjunctive);
        assert!(cfg.matchable() <= cfg.hidden_size);
    }

    #[test]
    #[should_panic(expected = "ΔD cannot exceed |D|")]
    fn oversized_delta_d_rejected() {
        let mut cfg = ScenarioConfig::tiny(8);
        cfg.delta_d = cfg.local_size + 1;
        Scenario::build(cfg);
    }

    #[test]
    fn community_flags_flow_into_ground_truth() {
        let s = Scenario::build(ScenarioConfig::tiny(12));
        // Every local entity is drawn from the community subpopulation.
        for i in 0..s.truth.num_local() {
            assert!(s.truth.is_community(s.truth.local_entity(i)));
        }
        // The hidden database mixes community and long-tail entities.
        let community = s.truth.hidden_community_count();
        assert!(community >= s.truth.matchable_count());
        assert!(community < s.hidden.len(), "long-tail entities must exist");
    }

    #[test]
    fn business_domain_builds() {
        let mut cfg = ScenarioConfig::tiny(9);
        cfg.domain = Domain::Businesses;
        cfg.mode = SearchMode::Disjunctive;
        let s = Scenario::build(cfg);
        assert_eq!(s.local.len(), 80);
        assert_eq!(s.hidden.mode(), SearchMode::Disjunctive);
    }

    fn tiny_runtime() -> Arc<StoreRuntime> {
        StoreRuntime::create(StoreConfig {
            page_size: 512,
            cache_pages: 32,
            shards: 1,
            dir: None,
        })
        .expect("store runtime")
    }

    fn assert_worlds_identical(ram: &Scenario, disk: &Scenario) {
        assert_eq!(ram.local, disk.local, "local database differs");
        assert_eq!(ram.hidden.len(), disk.hidden.len());
        let ram_records: Vec<_> = ram
            .hidden
            .iter()
            .map(|r| (r.external_id, r.searchable.fields().to_vec(), r.payload.clone()))
            .collect();
        let disk_records: Vec<_> = disk
            .hidden
            .iter()
            .map(|r| (r.external_id, r.searchable.fields().to_vec(), r.payload.clone()))
            .collect();
        assert_eq!(ram_records, disk_records, "hidden record stream differs");
        for ext in 0..ram.hidden.len() as u64 {
            assert_eq!(
                ram.truth.entity_of_external(ExternalId(ext)),
                disk.truth.entity_of_external(ExternalId(ext)),
                "ground truth differs at {ext}"
            );
        }
        assert_eq!(ram.truth.matchable_count(), disk.truth.matchable_count());
        assert_eq!(ram.truth.hidden_community_count(), disk.truth.hidden_community_count());
    }

    #[test]
    fn streamed_store_scenario_is_byte_identical() {
        let ram = Scenario::build(ScenarioConfig::tiny(21));
        let disk =
            Scenario::build_with_store(ScenarioConfig::tiny(21), tiny_runtime()).expect("stream");
        assert_worlds_identical(&ram, &disk);
        assert!(disk.hidden.store_report().is_some());
    }

    #[test]
    fn streamed_store_scenario_matches_with_drift_and_errors() {
        let mut cfg = ScenarioConfig::tiny(22);
        cfg.drift_pct = 0.4;
        cfg.error_pct = 0.5;
        cfg.domain = Domain::Businesses;
        cfg.mode = SearchMode::Disjunctive;
        let ram = Scenario::build(cfg.clone());
        let disk = Scenario::build_with_store(cfg, tiny_runtime()).expect("stream");
        assert_worlds_identical(&ram, &disk);
        // Spot-check the interface answers line up too.
        for q in [vec!["grill".to_string()], vec!["phoenix".to_string(), "cafe".to_string()]] {
            assert_eq!(ram.hidden.search(&q), disk.hidden.search(&q), "query {q:?}");
        }
    }
}
