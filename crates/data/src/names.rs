//! Deterministic word, name, and place pools for the generators.
//!
//! Research-topic vocabulary, author names, venues, cuisines, and cities
//! are produced from fixed seed lists plus a syllable-based synthesizer, so
//! vocabularies of arbitrary size are available without shipping corpora.

/// The ten "database community" venues the paper filters DBLP by (§7.1.1).
pub const COMMUNITY_VENUES: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "CIKM", "CIDR", "KDD", "WWW", "AAAI", "NIPS", "IJCAI",
];

/// Additional venues forming the long tail of the universe.
pub const OTHER_VENUES: &[&str] = &[
    "SIGIR", "SOSP", "OSDI", "PODC", "PODS", "EDBT", "ICML", "ECML", "COLT", "STOC", "FOCS",
    "SODA", "CHI", "UIST", "INFOCOM", "SIGCOMM", "NSDI", "EUROSYS", "MIDDLEWARE", "ICSE", "FSE",
    "PLDI", "POPL", "CAV", "ISCA", "MICRO", "ASPLOS", "HPCA", "DAC", "USENIX",
];

/// Research-topic root words used in publication titles.
pub const TOPIC_ROOTS: &[&str] = &[
    "query", "database", "index", "learning", "distributed", "graph", "stream", "parallel",
    "optimization", "transaction", "storage", "memory", "network", "search", "ranking",
    "clustering", "classification", "sampling", "estimation", "crawling", "integration",
    "cleaning", "entity", "resolution", "knowledge", "semantic", "probabilistic", "scalable",
    "efficient", "adaptive", "incremental", "approximate", "secure", "privacy", "cloud", "spatial",
    "temporal", "relational", "keyword", "schema", "workload", "cache", "compression", "join",
    "aggregation", "partition", "replication", "consistency", "concurrency", "recovery", "mining",
    "pattern", "sequence", "text", "web", "social", "recommendation", "prediction", "inference",
    "embedding", "neural", "deep", "reinforcement", "transfer", "federated", "benchmark",
    "evaluation", "analysis", "processing", "system", "framework", "engine", "model", "algorithm",
    "structure", "selection", "pruning", "filtering", "matching", "similarity", "nearest",
    "neighbor", "dimension", "feature", "kernel", "tensor", "matrix", "vector", "sparse", "dense",
    "online", "offline", "dynamic", "static", "hybrid", "robust", "fair", "explainable",
];

/// First names for synthetic authors and business owners.
pub const FIRST_NAMES: &[&str] = &[
    "wei", "jun", "ming", "anna", "boris", "carla", "david", "elena", "felix", "grace", "hiro",
    "irene", "jamal", "karen", "leon", "maria", "nadia", "omar", "priya", "quentin", "rosa",
    "samir", "tanya", "umar", "vera", "walter", "xiang", "yuki", "zara", "alan", "bella", "carlos",
    "diana", "erik", "fatima", "george", "hana", "ivan", "julia", "kevin", "lena", "marco",
    "nina", "oscar", "paula", "raj", "sofia", "tom", "ursula", "victor",
];

/// Surname roots for synthetic authors.
pub const LAST_NAMES: &[&str] = &[
    "wang", "li", "zhang", "chen", "liu", "smith", "johnson", "brown", "garcia", "miller",
    "davis", "martinez", "lopez", "gonzalez", "wilson", "anderson", "taylor", "thomas", "moore",
    "jackson", "martin", "lee", "thompson", "white", "harris", "clark", "lewis", "walker", "hall",
    "young", "king", "wright", "scott", "green", "adams", "baker", "nelson", "hill", "campbell",
    "mitchell", "roberts", "carter", "phillips", "evans", "turner", "torres", "parker", "collins",
    "edwards", "stewart", "sanchez", "morris", "rogers", "reed", "cook", "morgan", "bell",
    "murphy", "bailey", "rivera", "cooper", "richardson", "cox", "howard", "ward",
];

/// Cuisine words for business names.
pub const CUISINES: &[&str] = &[
    "thai", "sushi", "ramen", "noodle", "taco", "burrito", "pizza", "pasta", "burger", "steak",
    "seafood", "curry", "dim", "pho", "bbq", "kebab", "falafel", "bagel", "donut", "waffle",
    "pancake", "salad", "soup", "sandwich", "grill", "tapas", "gelato", "espresso", "boba",
    "smoothie",
];

/// Venue-type words for business names.
pub const BUSINESS_TYPES: &[&str] = &[
    "house", "kitchen", "bar", "cafe", "bistro", "diner", "grill", "palace", "garden", "express",
    "corner", "shack", "lounge", "tavern", "cantina", "eatery", "room", "spot", "joint", "works",
];

/// Adjectives for business names.
pub const BUSINESS_ADJECTIVES: &[&str] = &[
    "golden", "lucky", "royal", "sunny", "happy", "little", "grand", "silver", "red", "blue",
    "green", "old", "new", "famous", "original", "crazy", "cozy", "rustic", "urban", "desert",
];

/// Street-name words for synthetic addresses.
pub const STREET_NAMES: &[&str] = &[
    "cactus", "mesquite", "saguaro", "palo", "verde", "ocotillo", "camelback", "indian", "school",
    "thomas", "mcdowell", "bell", "union", "hills", "baseline", "southern", "broadway", "apache",
    "pecos", "chandler", "elliot", "warner", "ray", "germann", "queen", "ironwood", "signal",
    "butte", "dynamite", "carefree", "cave", "creek", "greenway", "thunderbird", "cholla",
    "shea", "doubletree", "lincoln", "osborn", "oak", "pima", "hayden", "rural", "dobson",
    "alma", "gilbert", "higley", "recker", "power", "sossaman",
];

/// Street-type suffixes for synthetic addresses.
pub const STREET_TYPES: &[&str] = &["st", "ave", "rd", "blvd", "dr", "ln", "way", "pkwy"];

/// Arizona cities (the paper's Yelp dataset covers Arizona).
pub const AZ_CITIES: &[&str] = &[
    "phoenix", "tucson", "mesa", "chandler", "scottsdale", "glendale", "gilbert", "tempe",
    "peoria", "surprise", "yuma", "avondale", "flagstaff", "goodyear", "buckeye", "casa grande",
    "maricopa", "prescott", "sedona", "kingman", "bullhead", "apache junction", "queen creek",
    "florence", "payson",
];

/// Synthesizes a pronounceable pseudo-word for index `i`, used to extend
/// vocabularies beyond the seed lists. Deterministic and collision-free:
/// the digit-free syllable encoding is injective in `i`.
pub fn synth_word(i: usize) -> String {
    const CONS: &[u8] = b"bcdfgklmnprstvz";
    const VOWS: &[u8] = b"aeiou";
    let mut n = i;
    let mut w = String::new();
    loop {
        let c = CONS[n % CONS.len()];
        n /= CONS.len();
        let v = VOWS[n % VOWS.len()];
        n /= VOWS.len();
        w.push(c as char);
        w.push(v as char);
        if n == 0 {
            break;
        }
        n -= 1;
    }
    w
}

/// The `rank`-th word of an extended topic vocabulary: seed roots first,
/// then synthesized words (prefixed to avoid colliding with real roots).
pub fn topic_word(rank: usize) -> String {
    if rank < TOPIC_ROOTS.len() {
        TOPIC_ROOTS[rank].to_owned()
    } else {
        format!("{}x", synth_word(rank - TOPIC_ROOTS.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn community_venues_match_the_paper() {
        assert_eq!(COMMUNITY_VENUES.len(), 10);
        assert!(COMMUNITY_VENUES.contains(&"SIGMOD"));
        assert!(COMMUNITY_VENUES.contains(&"VLDB"));
    }

    #[test]
    fn synth_words_are_unique_and_nonempty() {
        let words: HashSet<String> = (0..5000).map(synth_word).collect();
        assert_eq!(words.len(), 5000);
        assert!(words.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn synth_words_are_alphabetic() {
        for i in [0, 1, 14, 15, 74, 75, 1000, 123_456] {
            assert!(synth_word(i).chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn topic_words_extend_roots_without_collision() {
        let n = TOPIC_ROOTS.len() + 2000;
        let words: HashSet<String> = (0..n).map(topic_word).collect();
        assert_eq!(words.len(), n);
    }

    #[test]
    fn seed_lists_have_no_duplicates() {
        for list in [TOPIC_ROOTS, FIRST_NAMES, LAST_NAMES, CUISINES, BUSINESS_TYPES, AZ_CITIES] {
            let set: HashSet<&&str> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }
}
