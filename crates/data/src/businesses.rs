//! Yelp-like Arizona business universe (paper §7.1.2).
//!
//! The paper's real-world experiment matches an old Yelp-dataset snapshot
//! (36 500 Arizona businesses, 3 000 sampled as `D`) against the live Yelp
//! hidden database — so local and hidden texts drift apart (renames,
//! re-categorizations) and some local businesses have closed (`ΔD`). The
//! generator produces businesses with name/city indexed attributes and a
//! rating payload; the scenario layer applies drift and closures.

use crate::names::{
    synth_word, AZ_CITIES, BUSINESS_ADJECTIVES, BUSINESS_TYPES, CUISINES, FIRST_NAMES,
    STREET_NAMES, STREET_TYPES,
};
use crate::scenario::Entity;
use crate::zipf::Zipf;
use crate::EntityId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generator state for business entities.
#[derive(Debug)]
pub struct BusinessGen {
    rng: StdRng,
    cuisine_zipf: Zipf,
    type_zipf: Zipf,
    city_zipf: Zipf,
    next_id: u64,
}

impl BusinessGen {
    /// Creates a deterministic generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            cuisine_zipf: Zipf::new(CUISINES.len(), 0.9),
            type_zipf: Zipf::new(BUSINESS_TYPES.len(), 0.9),
            city_zipf: Zipf::new(AZ_CITIES.len(), 1.0),
            next_id: 0,
        }
    }

    fn name(&mut self) -> String {
        let cuisine = CUISINES[self.cuisine_zipf.sample(&mut self.rng)];
        let btype = BUSINESS_TYPES[self.type_zipf.sample(&mut self.rng)];
        match self.rng.gen_range(0..4) {
            0 => {
                let owner = FIRST_NAMES[self.rng.gen_range(0..FIRST_NAMES.len())];
                format!("{owner} {cuisine} {btype}")
            }
            1 => {
                let adj = BUSINESS_ADJECTIVES[self.rng.gen_range(0..BUSINESS_ADJECTIVES.len())];
                format!("{adj} {cuisine} {btype}")
            }
            2 => {
                // A distinctive made-up brand word keeps some names rare.
                let brand = synth_word(self.rng.gen_range(0..50_000));
                format!("{brand} {cuisine} {btype}")
            }
            _ => format!("{cuisine} {btype}"),
        }
    }

    fn address(&mut self) -> String {
        let number = self.rng.gen_range(100..=9999);
        let street = STREET_NAMES[self.rng.gen_range(0..STREET_NAMES.len())];
        let suffix = STREET_TYPES[self.rng.gen_range(0..STREET_TYPES.len())];
        format!("{number} {street} {suffix}")
    }

    /// Generates one business entity with name, address and city indexed
    /// attributes (addresses are what real-world ER keys on — they make
    /// templated business names distinguishable).
    pub fn entity(&mut self) -> Entity {
        let city = AZ_CITIES[self.city_zipf.sample(&mut self.rng)];
        let rating = (self.rng.gen_range(20..=50) as f64) / 10.0;
        let reviews: u32 = {
            let u: f64 = self.rng.gen_range(0.0f64..1.0);
            ((1.0 / (1.0 - u * 0.999)).powf(1.1)) as u32
        };
        let id = self.next_id;
        self.next_id += 1;
        Entity {
            id: EntityId(id),
            fields: vec![self.name(), self.address(), city.to_owned()],
            payload: vec![format!("{rating:.1}"), reviews.to_string()],
            rank_signal: reviews as f64,
            community: true, // single-state universe: everything is local-drawable
        }
    }

    /// Generates `n` entities.
    pub fn universe(&mut self, n: usize) -> Vec<Entity> {
        (0..n).map(|_| self.entity()).collect()
    }
}

/// Extracts the leading street number of an address ("482 Camelback Rd" →
/// 482). Returns `None` for empty, all-whitespace, or numberless
/// addresses instead of panicking on a missing first token.
pub fn street_number(address: &str) -> Option<u32> {
    address.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entities_have_name_address_and_city() {
        let mut g = BusinessGen::new(1);
        let e = g.entity();
        assert_eq!(e.fields.len(), 3);
        assert!(AZ_CITIES.contains(&e.fields[2].as_str()));
        // Address starts with a street number.
        let number = street_number(&e.fields[1]);
        assert!(number.is_some_and(|n| (100..=9999).contains(&n)), "address {:?}", e.fields[1]);
    }

    #[test]
    fn street_number_is_total_over_malformed_addresses() {
        assert_eq!(street_number("482 Camelback Rd"), Some(482));
        assert_eq!(street_number("  482 Camelback Rd"), Some(482));
        assert_eq!(street_number(""), None);
        assert_eq!(street_number("   "), None);
        assert_eq!(street_number("Camelback Rd"), None);
    }

    #[test]
    fn names_share_cuisine_and_type_tokens() {
        // Query sharing requires common keywords across businesses.
        let mut g = BusinessGen::new(2);
        let es = g.universe(500);
        let with_house = es.iter().filter(|e| e.fields[0].contains("house")).count();
        assert!(with_house >= 5, "expected shared type tokens, got {with_house}");
    }

    #[test]
    fn ratings_are_plausible() {
        let mut g = BusinessGen::new(3);
        for _ in 0..100 {
            let e = g.entity();
            let r: f64 = e.payload[0].parse().unwrap();
            assert!((2.0..=5.0).contains(&r));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = BusinessGen::new(9).universe(30);
        let b = BusinessGen::new(9).universe(30);
        assert!(a.iter().zip(&b).all(|(x, y)| x.fields == y.fields));
    }

    #[test]
    fn all_marked_community() {
        let mut g = BusinessGen::new(4);
        assert!(g.universe(20).iter().all(|e| e.community));
    }
}
