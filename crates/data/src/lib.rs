//! Synthetic workloads reproducing the paper's experimental setups (§7.1).
//!
//! The paper evaluates on (a) a simulated hidden database built from the
//! DBLP dump and (b) Yelp's live hidden database over Arizona businesses.
//! Neither corpus is available offline, so this crate generates synthetic
//! universes that reproduce the *statistical structure* the algorithms
//! interact with — Zipfian keyword distributions, shared venue/author
//! tokens, entity overlap between local and hidden databases, textual
//! drift — while keeping every run deterministic under a seed.
//!
//! The construction protocol follows §7.1.1 exactly:
//!
//! * the local database `D` is drawn from a "community" subpopulation
//!   (papers in 10 database venues / businesses in one state);
//! * the hidden database is `(H − D) ∪ (H ∩ D)` with `H − D` drawn from the
//!   whole universe;
//! * `ΔD` records are added to `D` but withheld from `H`;
//! * `error%` of local records get one word removed / added / replaced
//!   (probability 1/3 each).
//!
//! Ground truth (which local record refers to which entity) never leaks to
//! the crawler; the evaluation harness uses it to score coverage, exactly
//! like the paper's hand-labeled Yelp data.

pub mod businesses;
pub mod errors;
pub mod names;
pub mod publications;
pub mod scenario;
pub mod zipf;

pub use scenario::{Domain, GroundTruth, Scenario, ScenarioConfig};
pub use zipf::Zipf;

/// The identity of a real-world entity, shared between its local and hidden
/// representations. Evaluation-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u64);
