//! DBLP-like publication universe (paper §7.1.1).
//!
//! The simulated hidden database in the paper is built from the DBLP dump:
//! the local database is drawn from papers of "database community" authors
//! (ten listed venues), the hidden database mixes those with publications
//! from the whole corpus, and the search engine indexes title + venue +
//! authors and ranks by year. This generator reproduces that structure
//! with synthetic text: Zipfian title vocabulary, a venue skew between the
//! ten community venues and a long tail, and shared author-name pools.

use crate::names::{
    topic_word, COMMUNITY_VENUES, FIRST_NAMES, LAST_NAMES, OTHER_VENUES,
};
use crate::scenario::Entity;
use crate::zipf::Zipf;
use crate::EntityId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Size of the Zipfian title vocabulary.
pub const TITLE_VOCAB: usize = 4000;

/// Generator state for publication entities.
#[derive(Debug)]
pub struct PublicationGen {
    rng: StdRng,
    title_zipf: Zipf,
    last_zipf: Zipf,
    next_id: u64,
}

impl PublicationGen {
    /// Creates a deterministic generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            title_zipf: Zipf::new(TITLE_VOCAB, 1.05),
            last_zipf: Zipf::new(LAST_NAMES.len(), 0.8),
            next_id: 0,
        }
    }

    fn title(&mut self) -> String {
        let len = self.rng.gen_range(4..=10);
        let mut words: Vec<String> = Vec::with_capacity(len);
        let mut guard = 0;
        while words.len() < len && guard < 100 {
            guard += 1;
            let w = topic_word(self.title_zipf.sample(&mut self.rng));
            if !words.contains(&w) {
                words.push(w);
            }
        }
        words.join(" ")
    }

    fn authors(&mut self) -> String {
        let n = self.rng.gen_range(1..=3);
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            let first = FIRST_NAMES[self.rng.gen_range(0..FIRST_NAMES.len())];
            let last = LAST_NAMES[self.last_zipf.sample(&mut self.rng)];
            names.push(format!("{first} {last}"));
        }
        names.join(" ")
    }

    /// Generates one publication. `community = Some(true)` forces a
    /// community venue, `Some(false)` forces the long tail, `None` draws
    /// the venue from the universe mix (≈ 25% community).
    pub fn entity(&mut self, community: Option<bool>) -> Entity {
        self.entity_in_years(community, 1970, 2018)
    }

    /// Like [`PublicationGen::entity`] with a restricted year range — used
    /// to correlate the hidden ranking (by year) with local membership for
    /// the ω ablation (§5.3's biased-draw model).
    pub fn entity_in_years(&mut self, community: Option<bool>, lo: i32, hi: i32) -> Entity {
        assert!(lo <= hi, "invalid year range");
        let is_community = community.unwrap_or_else(|| self.rng.gen_bool(0.25));
        let venue = if is_community {
            COMMUNITY_VENUES[self.rng.gen_range(0..COMMUNITY_VENUES.len())]
        } else {
            OTHER_VENUES[self.rng.gen_range(0..OTHER_VENUES.len())]
        };
        let year = self.rng.gen_range(lo..=hi);
        let citations = {
            // Heavy-tailed citation counts.
            let u: f64 = self.rng.gen_range(0.0f64..1.0);
            ((1.0 / (1.0 - u * 0.999)).powf(1.2) - 1.0) as u64
        };
        let id = self.next_id;
        self.next_id += 1;
        Entity {
            id: EntityId(id),
            fields: vec![self.title(), venue.to_owned(), self.authors()],
            payload: vec![citations.to_string(), year.to_string()],
            rank_signal: year as f64,
            community: is_community,
        }
    }

    /// Generates `n` entities with the universe venue mix.
    pub fn universe(&mut self, n: usize) -> Vec<Entity> {
        (0..n).map(|_| self.entity(None)).collect()
    }

    /// Generates `n` community entities (the population `D` is drawn from).
    pub fn community(&mut self, n: usize) -> Vec<Entity> {
        (0..n).map(|_| self.entity(Some(true))).collect()
    }

    /// Generates `n` *recent* community entities (years 2010–2018), so the
    /// year-descending hidden ranking favours local records (ω > 1).
    pub fn community_recent(&mut self, n: usize) -> Vec<Entity> {
        (0..n).map(|_| self.entity_in_years(Some(true), 2010, 2018)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn entities_have_three_indexed_fields() {
        let mut g = PublicationGen::new(1);
        let e = g.entity(None);
        assert_eq!(e.fields.len(), 3);
        assert!(!e.fields[0].is_empty());
    }

    #[test]
    fn community_flag_matches_venue() {
        let mut g = PublicationGen::new(2);
        for _ in 0..200 {
            let e = g.entity(None);
            let in_list = COMMUNITY_VENUES.contains(&e.fields[1].as_str());
            assert_eq!(e.community, in_list);
        }
    }

    #[test]
    fn forced_community_always_community() {
        let mut g = PublicationGen::new(3);
        assert!(g.community(50).iter().all(|e| e.community));
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut g = PublicationGen::new(4);
        let es = g.universe(100);
        let ids: HashSet<u64> = es.iter().map(|e| e.id.0).collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PublicationGen::new(7).universe(20);
        let b = PublicationGen::new(7).universe(20);
        assert!(a.iter().zip(&b).all(|(x, y)| x.fields == y.fields));
    }

    #[test]
    fn titles_are_zipf_skewed() {
        // The most frequent title word should dwarf a mid-tail word.
        let mut g = PublicationGen::new(5);
        let es = g.universe(2000);
        let mut counts = std::collections::HashMap::<&str, usize>::new();
        for e in &es {
            for w in e.fields[0].split(' ') {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let median = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max > 10 * median, "max {max} median {median}");
    }

    #[test]
    fn year_is_in_range_and_used_as_signal() {
        let mut g = PublicationGen::new(6);
        for _ in 0..50 {
            let e = g.entity(None);
            let y = e.rank_signal as i32;
            assert!((1970..=2018).contains(&y));
        }
    }
}
