//! Zipf-distributed sampling over ranked vocabularies.
//!
//! Natural-language keyword frequencies are Zipfian; the query-sharing
//! effect SmartCrawl exploits (a few keywords cover many records) exists
//! precisely because of this skew, so the generators must reproduce it.

use rand::Rng;

/// A Zipf(s) distribution over ranks `0..n` (rank 0 most probable), sampled
/// by binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // lint:allow(panic-freedom) the CDF is built from finite positive weights; NaN cannot enter
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in CDF")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_probable_when_skewed() {
        let z = Zipf::new(50, 1.2);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_follow_the_skew() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head rank should dominate the tail rank decisively.
        assert!(counts[0] > 4 * counts[19], "head {} tail {}", counts[0], counts[19]);
        // All ranks reachable.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "Zipf needs at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
