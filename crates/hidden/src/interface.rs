//! The keyword-search interface crawlers are restricted to, and the budget
//! metering wrapper.
//!
//! Real hidden databases cap API usage (Yelp: 25 000 free requests/day,
//! Google Maps: 2 500/day — paper §1), which is why DeepEnrich is a
//! budgeted optimization problem. [`Metered`] enforces such a cap and logs
//! every issued query, so experiments can account for exactly how a crawler
//! spent its budget.

use crate::engine::HiddenDb;
use crate::record::Retrieved;

/// A page of results returned by one search call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchPage {
    /// Top-`k` (or fewer) records, ranked.
    pub records: Vec<Retrieved>,
}

impl SearchPage {
    /// Whether the page hit the interface's `k` limit — i.e. whether the
    /// query *might* be overflowing. A short page proves the query is
    /// solid (no false negatives, Definition 2).
    pub fn is_full(&self, k: usize) -> bool {
        self.records.len() >= k
    }
}

/// Errors surfaced by a search interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// The query budget (rate limit) is exhausted; the call was not served.
    BudgetExhausted,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::BudgetExhausted => write!(f, "query budget exhausted"),
        }
    }
}

impl std::error::Error for SearchError {}

/// The only capability a crawler has against a hidden database.
pub trait SearchInterface {
    /// The top-`k` limit the interface advertises.
    fn k(&self) -> usize;

    /// Issues a keyword query and returns the ranked result page.
    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError>;

    /// Number of queries issued so far through this interface.
    fn queries_issued(&self) -> usize;
}

impl SearchInterface for &HiddenDb {
    fn k(&self) -> usize {
        HiddenDb::k(self)
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        Ok(SearchPage { records: HiddenDb::search(self, keywords) })
    }

    fn queries_issued(&self) -> usize {
        0 // the bare engine does not meter; wrap it in `Metered`
    }
}

/// One entry of the metered interface's audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogEntry {
    /// The issued keywords.
    pub keywords: Vec<String>,
    /// How many records came back.
    pub results: usize,
}

/// Budget-enforcing, logging wrapper around any [`SearchInterface`].
#[derive(Debug)]
pub struct Metered<I> {
    inner: I,
    limit: Option<usize>,
    used: usize,
    log: Vec<QueryLogEntry>,
    keep_log: bool,
}

impl<I: SearchInterface> Metered<I> {
    /// Wraps `inner` with an optional hard budget.
    pub fn new(inner: I, limit: Option<usize>) -> Self {
        Self { inner, limit, used: 0, log: Vec::new(), keep_log: false }
    }

    /// Enables the per-query audit log (off by default to keep long crawls
    /// cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// Remaining budget, if capped.
    pub fn remaining(&self) -> Option<usize> {
        self.limit.map(|l| l.saturating_sub(self.used))
    }

    /// The audit log (empty unless [`Metered::with_log`] was called).
    pub fn log(&self) -> &[QueryLogEntry] {
        &self.log
    }

    /// Unwraps the inner interface.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: SearchInterface> SearchInterface for Metered<I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        if let Some(limit) = self.limit {
            if self.used >= limit {
                return Err(SearchError::BudgetExhausted);
            }
        }
        self.used += 1;
        let page = self.inner.search(keywords)?;
        if self.keep_log {
            self.log.push(QueryLogEntry { keywords: keywords.to_vec(), results: page.records.len() });
        }
        Ok(page)
    }

    fn queries_issued(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HiddenDbBuilder;
    use crate::record::HiddenRecord;
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["Thai House"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["Steak House"]), vec![], 2.0),
                HiddenRecord::new(2, Record::from(["Noodle House"]), vec![], 3.0),
            ])
            .build()
    }

    #[test]
    fn metered_counts_and_enforces_budget() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(2));
        assert!(m.search(&["thai".into()]).is_ok());
        assert!(m.search(&["steak".into()]).is_ok());
        assert_eq!(m.queries_issued(), 2);
        assert_eq!(m.remaining(), Some(0));
        assert_eq!(m.search(&["noodle".into()]), Err(SearchError::BudgetExhausted));
        assert_eq!(m.queries_issued(), 2, "rejected calls do not consume budget");
    }

    #[test]
    fn uncapped_metered_only_counts() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        for _ in 0..5 {
            m.search(&["house".into()]).unwrap();
        }
        assert_eq!(m.queries_issued(), 5);
        assert_eq!(m.remaining(), None);
    }

    #[test]
    fn log_records_queries_when_enabled() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None).with_log();
        m.search(&["house".into()]).unwrap();
        assert_eq!(m.log().len(), 1);
        assert_eq!(m.log()[0].keywords, vec!["house".to_string()]);
        assert_eq!(m.log()[0].results, 2); // k=2 truncation
    }

    #[test]
    fn page_is_full_detects_possible_overflow() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        let full = m.search(&["house".into()]).unwrap();
        assert!(full.is_full(db.k()));
        let solid = m.search(&["thai".into()]).unwrap();
        assert!(!solid.is_full(db.k()));
    }
}
