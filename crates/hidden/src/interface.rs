//! The keyword-search interface crawlers are restricted to, and the budget
//! metering wrapper.
//!
//! Real hidden databases cap API usage (Yelp: 25 000 free requests/day,
//! Google Maps: 2 500/day — paper §1), which is why DeepEnrich is a
//! budgeted optimization problem. [`Metered`] enforces such a cap and logs
//! every issued query, so experiments can account for exactly how a crawler
//! spent its budget.

use crate::engine::HiddenDb;
use crate::record::Retrieved;

/// Canonical form of a keyword query, used as the identity of a query by
/// every layer that must agree on "the same query": the query-result cache
/// keys its entries by it, and [`Metered`]'s audit log exposes it so
/// duplicate-query accounting matches the cache's collisions.
///
/// Keywords are case-folded, sorted, and deduplicated. This can never
/// conflate two queries the engine distinguishes: [`HiddenDb`] lowercases
/// keywords through its tokenizer and sorts/dedups the resulting token set
/// before matching, so queries equal under this canonicalization are served
/// identical pages.
pub fn canonical_query_key(keywords: &[String]) -> Vec<String> {
    let mut key: Vec<String> = keywords.iter().map(|kw| kw.to_lowercase()).collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// Counters of a query-result cache sitting somewhere in an interface
/// stack. Defined here (rather than in the cache crate) so the
/// [`SearchInterface`] trait can surface them through any stack of
/// wrappers and crawl drivers can report them without depending on the
/// cache implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served from the cache without consulting the inner
    /// interface.
    pub hits: usize,
    /// Hits served from a cached *negative* (empty) page.
    pub negative_hits: usize,
    /// Queries not found in the cache (each one reached the inner
    /// interface).
    pub misses: usize,
    /// Pages stored in the cache.
    pub insertions: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: usize,
    /// Misses whose inner call failed — errors are never cached, so these
    /// left no entry behind.
    pub uncached_errors: usize,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference `self − earlier`: the activity that happened
    /// after `earlier` was snapshotted. Used by crawl drivers to report
    /// per-run cache activity even when the store is shared across runs.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            negative_hits: self.negative_hits.saturating_sub(earlier.negative_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            uncached_errors: self.uncached_errors.saturating_sub(earlier.uncached_errors),
        }
    }
}

/// A page of results returned by one search call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchPage {
    /// Top-`k` (or fewer) records, ranked.
    pub records: Vec<Retrieved>,
}

impl SearchPage {
    /// Whether the page hit the interface's `k` limit — i.e. whether the
    /// query *might* be overflowing. A short page proves the query is
    /// solid (no false negatives, Definition 2).
    pub fn is_full(&self, k: usize) -> bool {
        self.records.len() >= k
    }
}

/// Errors surfaced by a search interface.
///
/// Real keyword APIs fail in two recoverable ways on top of the hard
/// budget cap: transient backend errors (5xx, dropped connections) and
/// throttling (429). Crawlers may retry both under a [`RetryPolicy`];
/// [`BudgetExhausted`](SearchError::BudgetExhausted) is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// The query budget (rate limit) is exhausted; the call was not served.
    BudgetExhausted,
    /// A transient backend failure; the call was not served and may be
    /// retried immediately.
    Transient,
    /// The interface throttled the call (HTTP 429 semantics); it may be
    /// retried after backing off.
    RateLimited,
}

impl SearchError {
    /// Whether a retry can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SearchError::Transient | SearchError::RateLimited)
    }
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::BudgetExhausted => write!(f, "query budget exhausted"),
            SearchError::Transient => write!(f, "transient interface failure"),
            SearchError::RateLimited => write!(f, "interface rate limit hit"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Bounded-retry policy for recoverable [`SearchError`]s, with simulated
/// exponential backoff. The backoff is *simulated* (a virtual-time delay in
/// ticks, not a sleep) so experiments stay fast and deterministic; drivers
/// account the wait in their reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per query after the initial attempt (0 = fail fast).
    pub max_retries: usize,
    /// Simulated backoff before retry `n` (1-based): `base_backoff << (n-1)`
    /// ticks, capped at [`RetryPolicy::max_backoff`].
    pub base_backoff: u64,
    /// Upper bound on a single simulated backoff wait.
    pub max_backoff: u64,
}

impl RetryPolicy {
    /// No retries: every recoverable error is treated as final.
    pub fn none() -> Self {
        Self { max_retries: 0, base_backoff: 0, max_backoff: 0 }
    }

    /// A sensible default for fault-injection runs: 3 retries, exponential
    /// backoff starting at 100 ticks, capped at 2 000.
    pub fn standard() -> Self {
        Self { max_retries: 3, base_backoff: 100, max_backoff: 2_000 }
    }

    /// Simulated backoff (ticks) before the `attempt`-th retry (1-based).
    pub fn backoff(&self, attempt: usize) -> u64 {
        if self.base_backoff == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(32) as u32;
        self.base_backoff.saturating_mul(1u64 << shift).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// The only capability a crawler has against a hidden database.
pub trait SearchInterface {
    /// The top-`k` limit the interface advertises.
    fn k(&self) -> usize;

    /// Issues a keyword query and returns the ranked result page.
    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError>;

    /// Number of queries issued so far through this interface.
    fn queries_issued(&self) -> usize;

    /// Counters of the query-result cache in this interface stack, if any.
    /// Wrappers delegate inward; a cache layer answers with its own
    /// counters. `None` means no cache is present.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Notification from a cache layer *above* this interface that
    /// `keywords` was just served from the cache (with `results` records)
    /// without a [`search`](SearchInterface::search) call. When `charge`
    /// is set (the cache's "charged hits" faithfulness mode), one query's
    /// worth of budget must be consumed anyway; an interface out of budget
    /// returns [`SearchError::BudgetExhausted`] and the hit is denied.
    ///
    /// The default is a free no-op: cache hits cost nothing and leave no
    /// trace. [`Metered`] overrides it to audit-log the hit (and charge it
    /// on request); pass-through wrappers delegate inward.
    fn record_cache_hit(
        &mut self,
        keywords: &[String],
        results: usize,
        charge: bool,
    ) -> Result<(), SearchError> {
        let _ = (keywords, results, charge);
        Ok(())
    }

    /// Notification from the crawl driver that the query about to be
    /// issued is the `index`-th of its session (0-based, counting issued
    /// queries — retries of the same query share its index).
    ///
    /// The default is a no-op. [`crate::FlakyInterface`] keys its fault
    /// decisions on this index so an injected failure belongs to *the
    /// query*, not to whichever call happened to arrive when — the
    /// property that lets a pipelined driver compute pages out of order
    /// yet commit a byte-identical failure trace. Wrappers delegate
    /// inward.
    fn begin_query(&mut self, index: usize) {
        let _ = index;
    }

    /// The side-effect-free search engine at the bottom of this interface
    /// stack, if one is reachable: a pipelined driver's workers call
    /// [`HiddenDb::search`] on it directly, bypassing every stateful
    /// wrapper (budget, faults, cache), and the driver replays the
    /// accounting at commit time via
    /// [`commit_prefetched`](SearchInterface::commit_prefetched).
    ///
    /// The `'h` lifetime is deliberately *not* tied to `&self`: an
    /// implementation can only return `Some` if it genuinely holds a
    /// `&'h HiddenDb` (the borrow checker enforces it), and the caller
    /// gets a handle it can use while still mutating the interface.
    /// `None` (the default) means prefetching is unavailable and drivers
    /// must stay sequential.
    fn prefetch_handle<'h>(&self) -> Option<&'h HiddenDb>
    where
        Self: 'h,
    {
        None
    }

    /// Commits a page a pipeline worker prefetched for `keywords`: runs
    /// exactly the accounting [`search`](SearchInterface::search) would
    /// have run — budget checks and charges, fault draws, cache hit/miss
    /// bookkeeping, audit logging — but reuses `prefetched` instead of
    /// recomputing the page at the bottom of the stack.
    ///
    /// Contract: for a deterministic engine, `commit_prefetched(kw, page)`
    /// where `page` is what the engine returns for `kw` must be
    /// observably identical to `search(kw)` — same result, same error,
    /// same state transitions. The default falls back to a plain
    /// `search`, which trivially satisfies the contract (the prefetched
    /// page is discarded as wasted speculation).
    fn commit_prefetched(
        &mut self,
        keywords: &[String],
        prefetched: &SearchPage,
    ) -> Result<SearchPage, SearchError> {
        let _ = prefetched;
        self.search(keywords)
    }
}

impl SearchInterface for &HiddenDb {
    fn k(&self) -> usize {
        HiddenDb::k(self)
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        Ok(SearchPage { records: HiddenDb::search(self, keywords) })
    }

    fn queries_issued(&self) -> usize {
        0 // the bare engine does not meter; wrap it in `Metered`
    }

    fn prefetch_handle<'h>(&self) -> Option<&'h HiddenDb>
    where
        Self: 'h,
    {
        Some(self)
    }

    fn commit_prefetched(
        &mut self,
        keywords: &[String],
        prefetched: &SearchPage,
    ) -> Result<SearchPage, SearchError> {
        // Query processing is deterministic (crate docs), so the
        // speculative page *is* the page; the recompute-compare below
        // verifies that for free in every debug/test build.
        debug_assert_eq!(
            prefetched.records,
            HiddenDb::search(self, keywords),
            "prefetched page diverged from the engine for {keywords:?}"
        );
        Ok(prefetched.clone())
    }
}

/// One entry of the metered interface's audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogEntry {
    /// The issued keywords.
    pub keywords: Vec<String>,
    /// How many records came back (0 for unserved attempts).
    pub results: usize,
    /// Whether the call was actually served. Rejected (budget-exhausted)
    /// and upstream-failed attempts are logged with `served: false`, so
    /// the audit log accounts for every attempt, not just the successes.
    /// `served` agrees exactly with budget consumption: an entry consumed
    /// budget iff `served && !from_cache` (or a charged-mode cache hit).
    pub served: bool,
    /// Whether the page came from a cache layer above this meter rather
    /// than an issued query. Cache-served entries are logged via
    /// [`SearchInterface::record_cache_hit`] with `served: true` and, by
    /// default, consume no budget.
    pub from_cache: bool,
}

impl QueryLogEntry {
    /// The entry's canonical query key (see [`canonical_query_key`]):
    /// entries with equal keys are duplicates of the same logical query,
    /// exactly as a query-result cache would collide them.
    pub fn canonical_key(&self) -> Vec<String> {
        canonical_query_key(&self.keywords)
    }
}

/// Budget-enforcing, logging wrapper around any [`SearchInterface`].
#[derive(Debug)]
pub struct Metered<I> {
    inner: I,
    limit: Option<usize>,
    used: usize,
    log: Vec<QueryLogEntry>,
    keep_log: bool,
}

impl<I: SearchInterface> Metered<I> {
    /// Wraps `inner` with an optional hard budget.
    pub fn new(inner: I, limit: Option<usize>) -> Self {
        Self { inner, limit, used: 0, log: Vec::new(), keep_log: false }
    }

    /// Enables the per-query audit log (off by default to keep long crawls
    /// cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// Remaining budget, if capped.
    pub fn remaining(&self) -> Option<usize> {
        self.limit.map(|l| l.saturating_sub(self.used))
    }

    /// The audit log (empty unless [`Metered::with_log`] was called).
    pub fn log(&self) -> &[QueryLogEntry] {
        &self.log
    }

    /// Number of *distinct* logical queries served (by canonical key — see
    /// [`canonical_query_key`]), cache-served entries included. The gap to
    /// the total served count is exactly the duplicate work a query-result
    /// cache would absorb. Requires [`Metered::with_log`].
    pub fn distinct_served(&self) -> usize {
        let mut keys: Vec<Vec<String>> = self
            .log
            .iter()
            .filter(|e| e.served)
            .map(|e| e.canonical_key())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Unwraps the inner interface.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// The budget-check / charge / audit-log protocol shared by
    /// [`Metered::search`] and [`Metered::commit_prefetched`]: only the
    /// inner call differs, so committing a prefetched page is accounted
    /// exactly like the search it replaces.
    fn serve(
        &mut self,
        keywords: &[String],
        run: impl FnOnce(&mut I) -> Result<SearchPage, SearchError>,
    ) -> Result<SearchPage, SearchError> {
        if let Some(limit) = self.limit {
            if self.used >= limit {
                if self.keep_log {
                    self.log.push(QueryLogEntry {
                        keywords: keywords.to_vec(),
                        results: 0,
                        served: false,
                        from_cache: false,
                    });
                }
                return Err(SearchError::BudgetExhausted);
            }
        }
        let result = run(&mut self.inner);
        // Only served calls consume budget: an inner failure (transient,
        // throttled) never reached the backend's billing, mirroring how
        // `FlakyInterface` outside a meter behaves. This keeps the audit
        // invariant exact — an entry consumed budget iff it was served.
        if result.is_ok() {
            self.used += 1;
        }
        if self.keep_log {
            self.log.push(QueryLogEntry {
                keywords: keywords.to_vec(),
                results: result.as_ref().map(|p| p.records.len()).unwrap_or(0),
                served: result.is_ok(),
                from_cache: false,
            });
        }
        result
    }
}

impl<I: SearchInterface> SearchInterface for Metered<I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        self.serve(keywords, |inner| inner.search(keywords))
    }

    fn queries_issued(&self) -> usize {
        self.used
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn begin_query(&mut self, index: usize) {
        self.inner.begin_query(index);
    }

    fn prefetch_handle<'h>(&self) -> Option<&'h HiddenDb>
    where
        Self: 'h,
    {
        self.inner.prefetch_handle()
    }

    fn commit_prefetched(
        &mut self,
        keywords: &[String],
        prefetched: &SearchPage,
    ) -> Result<SearchPage, SearchError> {
        self.serve(keywords, |inner| inner.commit_prefetched(keywords, prefetched))
    }

    fn record_cache_hit(
        &mut self,
        keywords: &[String],
        results: usize,
        charge: bool,
    ) -> Result<(), SearchError> {
        if charge {
            if let Some(limit) = self.limit {
                if self.used >= limit {
                    if self.keep_log {
                        self.log.push(QueryLogEntry {
                            keywords: keywords.to_vec(),
                            results: 0,
                            served: false,
                            from_cache: true,
                        });
                    }
                    return Err(SearchError::BudgetExhausted);
                }
            }
            self.used += 1;
        }
        if self.keep_log {
            self.log.push(QueryLogEntry {
                keywords: keywords.to_vec(),
                results,
                served: true,
                from_cache: true,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HiddenDbBuilder;
    use crate::record::HiddenRecord;
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["Thai House"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["Steak House"]), vec![], 2.0),
                HiddenRecord::new(2, Record::from(["Noodle House"]), vec![], 3.0),
            ])
            .build()
    }

    #[test]
    fn metered_counts_and_enforces_budget() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(2));
        assert!(m.search(&["thai".into()]).is_ok());
        assert!(m.search(&["steak".into()]).is_ok());
        assert_eq!(m.queries_issued(), 2);
        assert_eq!(m.remaining(), Some(0));
        assert_eq!(m.search(&["noodle".into()]), Err(SearchError::BudgetExhausted));
        assert_eq!(m.queries_issued(), 2, "rejected calls do not consume budget");
    }

    #[test]
    fn uncapped_metered_only_counts() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        for _ in 0..5 {
            m.search(&["house".into()]).unwrap();
        }
        assert_eq!(m.queries_issued(), 5);
        assert_eq!(m.remaining(), None);
    }

    #[test]
    fn log_records_queries_when_enabled() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None).with_log();
        m.search(&["house".into()]).unwrap();
        assert_eq!(m.log().len(), 1);
        assert_eq!(m.log()[0].keywords, vec!["house".to_string()]);
        assert_eq!(m.log()[0].results, 2); // k=2 truncation
        assert!(m.log()[0].served);
    }

    #[test]
    fn log_accounts_for_rejected_calls() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(1)).with_log();
        assert!(m.search(&["thai".into()]).is_ok());
        assert_eq!(m.search(&["steak".into()]), Err(SearchError::BudgetExhausted));
        assert_eq!(m.search(&["noodle".into()]), Err(SearchError::BudgetExhausted));
        // Every attempt is logged; only the first was served.
        assert_eq!(m.log().len(), 3);
        assert!(m.log()[0].served);
        assert!(!m.log()[1].served);
        assert_eq!(m.log()[1].results, 0);
        assert!(!m.log()[2].served);
        // Rejected calls still do not consume budget.
        assert_eq!(m.queries_issued(), 1);
    }

    #[test]
    fn canonical_key_folds_case_order_and_duplicates() {
        let a = canonical_query_key(&["Thai".into(), "HOUSE".into(), "thai".into()]);
        let b = canonical_query_key(&["house".into(), "thai".into()]);
        assert_eq!(a, b);
        assert_eq!(a, vec!["house".to_string(), "thai".to_string()]);
        assert!(canonical_query_key(&[]).is_empty());
    }

    #[test]
    fn canonicalization_is_transparent_to_the_engine() {
        // Queries equal under the canonical key must be served identical
        // pages — the invariant the query-result cache relies on.
        let db = tiny_db();
        let orders = [
            vec!["Thai".to_string(), "house".to_string()],
            vec!["HOUSE".to_string(), "thai".to_string(), "thai".to_string()],
        ];
        let pages: Vec<_> = orders.iter().map(|kw| HiddenDb::search(&db, kw)).collect();
        assert_eq!(
            canonical_query_key(&orders[0]),
            canonical_query_key(&orders[1])
        );
        assert_eq!(pages[0], pages[1]);
    }

    /// An inner interface that always fails transiently.
    struct AlwaysTransient;
    impl SearchInterface for AlwaysTransient {
        fn k(&self) -> usize {
            1
        }
        fn search(&mut self, _keywords: &[String]) -> Result<SearchPage, SearchError> {
            Err(SearchError::Transient)
        }
        fn queries_issued(&self) -> usize {
            0
        }
    }

    #[test]
    fn unserved_inner_failures_do_not_consume_budget() {
        let mut m = Metered::new(AlwaysTransient, Some(3)).with_log();
        assert_eq!(m.search(&["x".into()]), Err(SearchError::Transient));
        assert_eq!(m.search(&["x".into()]), Err(SearchError::Transient));
        // The backend never served these calls, so the quota is intact and
        // the log shows unserved, budget-free attempts.
        assert_eq!(m.queries_issued(), 0);
        assert_eq!(m.remaining(), Some(3));
        assert_eq!(m.log().len(), 2);
        assert!(m.log().iter().all(|e| !e.served && !e.from_cache));
    }

    #[test]
    fn uncharged_cache_hits_are_logged_but_free() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(1)).with_log();
        m.record_cache_hit(&["thai".into()], 1, false).unwrap();
        assert_eq!(m.queries_issued(), 0);
        assert_eq!(m.remaining(), Some(1));
        assert_eq!(m.log().len(), 1);
        assert!(m.log()[0].served);
        assert!(m.log()[0].from_cache);
        assert_eq!(m.log()[0].results, 1);
    }

    #[test]
    fn charged_cache_hits_consume_budget_and_can_be_denied() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(1)).with_log();
        m.record_cache_hit(&["thai".into()], 1, true).unwrap();
        assert_eq!(m.queries_issued(), 1);
        assert_eq!(
            m.record_cache_hit(&["steak".into()], 1, true),
            Err(SearchError::BudgetExhausted)
        );
        assert_eq!(m.queries_issued(), 1, "denied hits do not consume budget");
        assert_eq!(m.log().len(), 2);
        assert!(!m.log()[1].served);
        assert!(m.log()[1].from_cache);
    }

    #[test]
    fn distinct_served_collides_duplicates_by_canonical_key() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None).with_log();
        m.search(&["Thai".into(), "house".into()]).unwrap();
        m.search(&["house".into(), "thai".into()]).unwrap();
        m.search(&["steak".into()]).unwrap();
        m.record_cache_hit(&["THAI".into(), "house".into()], 1, false).unwrap();
        assert_eq!(m.log().len(), 4);
        assert_eq!(m.distinct_served(), 2, "two logical queries were served");
    }

    #[test]
    fn cache_stats_default_to_absent() {
        let db = tiny_db();
        let m = Metered::new(&db, None);
        assert_eq!(m.cache_stats(), None);
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.since(&s), CacheStats::default());
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy { max_retries: 5, base_backoff: 100, max_backoff: 450 };
        assert_eq!(p.backoff(1), 100);
        assert_eq!(p.backoff(2), 200);
        assert_eq!(p.backoff(3), 400);
        assert_eq!(p.backoff(4), 450); // capped
        assert_eq!(RetryPolicy::none().backoff(1), 0);
    }

    #[test]
    fn retryability_classification() {
        assert!(SearchError::Transient.is_retryable());
        assert!(SearchError::RateLimited.is_retryable());
        assert!(!SearchError::BudgetExhausted.is_retryable());
    }

    #[test]
    fn page_is_full_detects_possible_overflow() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        let full = m.search(&["house".into()]).unwrap();
        assert!(full.is_full(db.k()));
        let solid = m.search(&["thai".into()]).unwrap();
        assert!(!solid.is_full(db.k()));
    }

    #[test]
    fn prefetch_handle_reaches_through_the_metered_stack() {
        let db = tiny_db();
        let m = Metered::new(&db, Some(5));
        let handle = m.prefetch_handle().expect("engine-backed stack prefetches");
        // The handle is the raw engine: pure, unmetered reads.
        assert_eq!(handle.k(), db.k());
        assert!(!handle.search(&["house".into()]).is_empty());
        assert_eq!(m.queries_issued(), 0, "prefetch reads bypass the meter");
        // A stack with no engine at the bottom has no handle.
        assert!(Metered::new(AlwaysTransient, None).prefetch_handle().is_none());
    }

    #[test]
    fn commit_prefetched_is_accounted_exactly_like_search() {
        let db = tiny_db();
        let kw = vec!["house".to_string()];
        let mut seq = Metered::new(&db, Some(2)).with_log();
        let expect = seq.search(&kw).unwrap();

        let mut pipe = Metered::new(&db, Some(2)).with_log();
        let prefetched = SearchPage { records: HiddenDb::search(&db, &kw) };
        let got = pipe.commit_prefetched(&kw, &prefetched).unwrap();
        assert_eq!(got, expect, "committed page equals the searched page");
        assert_eq!(pipe.queries_issued(), 1, "commits consume budget");
        assert_eq!(pipe.log(), seq.log(), "audit log is identical");

        // And the budget gate rejects commits like searches.
        pipe.commit_prefetched(&kw, &prefetched).unwrap();
        assert_eq!(
            pipe.commit_prefetched(&kw, &prefetched),
            Err(SearchError::BudgetExhausted)
        );
        assert_eq!(pipe.queries_issued(), 2);
    }
}
