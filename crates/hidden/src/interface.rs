//! The keyword-search interface crawlers are restricted to, and the budget
//! metering wrapper.
//!
//! Real hidden databases cap API usage (Yelp: 25 000 free requests/day,
//! Google Maps: 2 500/day — paper §1), which is why DeepEnrich is a
//! budgeted optimization problem. [`Metered`] enforces such a cap and logs
//! every issued query, so experiments can account for exactly how a crawler
//! spent its budget.

use crate::engine::HiddenDb;
use crate::record::Retrieved;

/// A page of results returned by one search call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchPage {
    /// Top-`k` (or fewer) records, ranked.
    pub records: Vec<Retrieved>,
}

impl SearchPage {
    /// Whether the page hit the interface's `k` limit — i.e. whether the
    /// query *might* be overflowing. A short page proves the query is
    /// solid (no false negatives, Definition 2).
    pub fn is_full(&self, k: usize) -> bool {
        self.records.len() >= k
    }
}

/// Errors surfaced by a search interface.
///
/// Real keyword APIs fail in two recoverable ways on top of the hard
/// budget cap: transient backend errors (5xx, dropped connections) and
/// throttling (429). Crawlers may retry both under a [`RetryPolicy`];
/// [`BudgetExhausted`](SearchError::BudgetExhausted) is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// The query budget (rate limit) is exhausted; the call was not served.
    BudgetExhausted,
    /// A transient backend failure; the call was not served and may be
    /// retried immediately.
    Transient,
    /// The interface throttled the call (HTTP 429 semantics); it may be
    /// retried after backing off.
    RateLimited,
}

impl SearchError {
    /// Whether a retry can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SearchError::Transient | SearchError::RateLimited)
    }
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::BudgetExhausted => write!(f, "query budget exhausted"),
            SearchError::Transient => write!(f, "transient interface failure"),
            SearchError::RateLimited => write!(f, "interface rate limit hit"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Bounded-retry policy for recoverable [`SearchError`]s, with simulated
/// exponential backoff. The backoff is *simulated* (a virtual-time delay in
/// ticks, not a sleep) so experiments stay fast and deterministic; drivers
/// account the wait in their reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per query after the initial attempt (0 = fail fast).
    pub max_retries: usize,
    /// Simulated backoff before retry `n` (1-based): `base_backoff << (n-1)`
    /// ticks, capped at [`RetryPolicy::max_backoff`].
    pub base_backoff: u64,
    /// Upper bound on a single simulated backoff wait.
    pub max_backoff: u64,
}

impl RetryPolicy {
    /// No retries: every recoverable error is treated as final.
    pub fn none() -> Self {
        Self { max_retries: 0, base_backoff: 0, max_backoff: 0 }
    }

    /// A sensible default for fault-injection runs: 3 retries, exponential
    /// backoff starting at 100 ticks, capped at 2 000.
    pub fn standard() -> Self {
        Self { max_retries: 3, base_backoff: 100, max_backoff: 2_000 }
    }

    /// Simulated backoff (ticks) before the `attempt`-th retry (1-based).
    pub fn backoff(&self, attempt: usize) -> u64 {
        if self.base_backoff == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(32) as u32;
        self.base_backoff.saturating_mul(1u64 << shift).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// The only capability a crawler has against a hidden database.
pub trait SearchInterface {
    /// The top-`k` limit the interface advertises.
    fn k(&self) -> usize;

    /// Issues a keyword query and returns the ranked result page.
    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError>;

    /// Number of queries issued so far through this interface.
    fn queries_issued(&self) -> usize;
}

impl SearchInterface for &HiddenDb {
    fn k(&self) -> usize {
        HiddenDb::k(self)
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        Ok(SearchPage { records: HiddenDb::search(self, keywords) })
    }

    fn queries_issued(&self) -> usize {
        0 // the bare engine does not meter; wrap it in `Metered`
    }
}

/// One entry of the metered interface's audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogEntry {
    /// The issued keywords.
    pub keywords: Vec<String>,
    /// How many records came back (0 for unserved attempts).
    pub results: usize,
    /// Whether the call was actually served. Rejected (budget-exhausted)
    /// and upstream-failed attempts are logged with `served: false`, so
    /// the audit log accounts for every attempt, not just the successes.
    pub served: bool,
}

/// Budget-enforcing, logging wrapper around any [`SearchInterface`].
#[derive(Debug)]
pub struct Metered<I> {
    inner: I,
    limit: Option<usize>,
    used: usize,
    log: Vec<QueryLogEntry>,
    keep_log: bool,
}

impl<I: SearchInterface> Metered<I> {
    /// Wraps `inner` with an optional hard budget.
    pub fn new(inner: I, limit: Option<usize>) -> Self {
        Self { inner, limit, used: 0, log: Vec::new(), keep_log: false }
    }

    /// Enables the per-query audit log (off by default to keep long crawls
    /// cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// Remaining budget, if capped.
    pub fn remaining(&self) -> Option<usize> {
        self.limit.map(|l| l.saturating_sub(self.used))
    }

    /// The audit log (empty unless [`Metered::with_log`] was called).
    pub fn log(&self) -> &[QueryLogEntry] {
        &self.log
    }

    /// Unwraps the inner interface.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: SearchInterface> SearchInterface for Metered<I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        if let Some(limit) = self.limit {
            if self.used >= limit {
                if self.keep_log {
                    self.log.push(QueryLogEntry {
                        keywords: keywords.to_vec(),
                        results: 0,
                        served: false,
                    });
                }
                return Err(SearchError::BudgetExhausted);
            }
        }
        self.used += 1;
        let result = self.inner.search(keywords);
        if self.keep_log {
            self.log.push(QueryLogEntry {
                keywords: keywords.to_vec(),
                results: result.as_ref().map(|p| p.records.len()).unwrap_or(0),
                served: result.is_ok(),
            });
        }
        result
    }

    fn queries_issued(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HiddenDbBuilder;
    use crate::record::HiddenRecord;
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["Thai House"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["Steak House"]), vec![], 2.0),
                HiddenRecord::new(2, Record::from(["Noodle House"]), vec![], 3.0),
            ])
            .build()
    }

    #[test]
    fn metered_counts_and_enforces_budget() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(2));
        assert!(m.search(&["thai".into()]).is_ok());
        assert!(m.search(&["steak".into()]).is_ok());
        assert_eq!(m.queries_issued(), 2);
        assert_eq!(m.remaining(), Some(0));
        assert_eq!(m.search(&["noodle".into()]), Err(SearchError::BudgetExhausted));
        assert_eq!(m.queries_issued(), 2, "rejected calls do not consume budget");
    }

    #[test]
    fn uncapped_metered_only_counts() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        for _ in 0..5 {
            m.search(&["house".into()]).unwrap();
        }
        assert_eq!(m.queries_issued(), 5);
        assert_eq!(m.remaining(), None);
    }

    #[test]
    fn log_records_queries_when_enabled() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None).with_log();
        m.search(&["house".into()]).unwrap();
        assert_eq!(m.log().len(), 1);
        assert_eq!(m.log()[0].keywords, vec!["house".to_string()]);
        assert_eq!(m.log()[0].results, 2); // k=2 truncation
        assert!(m.log()[0].served);
    }

    #[test]
    fn log_accounts_for_rejected_calls() {
        let db = tiny_db();
        let mut m = Metered::new(&db, Some(1)).with_log();
        assert!(m.search(&["thai".into()]).is_ok());
        assert_eq!(m.search(&["steak".into()]), Err(SearchError::BudgetExhausted));
        assert_eq!(m.search(&["noodle".into()]), Err(SearchError::BudgetExhausted));
        // Every attempt is logged; only the first was served.
        assert_eq!(m.log().len(), 3);
        assert!(m.log()[0].served);
        assert!(!m.log()[1].served);
        assert_eq!(m.log()[1].results, 0);
        assert!(!m.log()[2].served);
        // Rejected calls still do not consume budget.
        assert_eq!(m.queries_issued(), 1);
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy { max_retries: 5, base_backoff: 100, max_backoff: 450 };
        assert_eq!(p.backoff(1), 100);
        assert_eq!(p.backoff(2), 200);
        assert_eq!(p.backoff(3), 400);
        assert_eq!(p.backoff(4), 450); // capped
        assert_eq!(RetryPolicy::none().backoff(1), 0);
    }

    #[test]
    fn retryability_classification() {
        assert!(SearchError::Transient.is_retryable());
        assert!(SearchError::RateLimited.is_retryable());
        assert!(!SearchError::BudgetExhausted.is_retryable());
    }

    #[test]
    fn page_is_full_detects_possible_overflow() {
        let db = tiny_db();
        let mut m = Metered::new(&db, None);
        let full = m.search(&["house".into()]).unwrap();
        assert!(full.is_full(db.k()));
        let solid = m.search(&["thai".into()]).unwrap();
        assert!(!solid.is_full(db.k()));
    }
}
