//! Hidden records and what the interface returns.

use smartcrawl_text::Record;
use std::sync::Arc;

/// Opaque identifier a hidden database exposes for its records (a Yelp
/// business id, a DBLP key). Stable across queries; reveals nothing about
/// entity identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExternalId(pub u64);

/// A record stored inside a hidden database.
#[derive(Debug, Clone)]
pub struct HiddenRecord {
    /// The database's own key for the record.
    pub external_id: ExternalId,
    /// The *indexed* attributes (paper footnote 4: only indexed attributes
    /// participate in `document(·)`).
    pub searchable: Record,
    /// Non-indexed enrichment attributes (rating, citation count, …) — the
    /// values the data scientist is after.
    pub payload: Vec<String>,
    /// Internal ranking signal (year, review count, …). The interface never
    /// exposes it; the ranking function consumes it.
    pub rank_signal: f64,
}

impl HiddenRecord {
    /// Convenience constructor.
    pub fn new(
        external_id: u64,
        searchable: Record,
        payload: Vec<String>,
        rank_signal: f64,
    ) -> Self {
        Self { external_id: ExternalId(external_id), searchable, payload, rank_signal }
    }
}

/// One record as returned through the search interface: the indexed fields
/// (so the crawler can match it against local records) plus the enrichment
/// payload. The rank signal stays hidden.
///
/// The string data is `Arc`-backed: a record appears in every page that
/// matches it, flows through interface wrappers (cache, fault injector),
/// and lands in enrichment pairs — sharing makes each of those hops a
/// refcount bump instead of a deep copy of every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// The hidden database's key for this record.
    pub external_id: ExternalId,
    /// Indexed attribute values, as stored.
    pub fields: Arc<[String]>,
    /// Enrichment attributes.
    pub payload: Arc<[String]>,
}

impl Retrieved {
    /// Builds a record from owned cell vectors.
    pub fn new(external_id: ExternalId, fields: Vec<String>, payload: Vec<String>) -> Self {
        Self { external_id, fields: fields.into(), payload: payload.into() }
    }

    /// All indexed fields concatenated (the text a crawler tokenizes).
    pub fn full_text(&self) -> String {
        self.fields.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_wires_fields() {
        let r = HiddenRecord::new(7, Record::from(["Thai House"]), vec!["4.1".into()], 2016.0);
        assert_eq!(r.external_id, ExternalId(7));
        assert_eq!(r.searchable.fields(), ["Thai House".to_owned()]);
        assert_eq!(r.payload, vec!["4.1".to_owned()]);
    }

    #[test]
    fn retrieved_full_text_joins_fields() {
        let r = Retrieved::new(
            ExternalId(1),
            vec!["Thai House".into(), "Vancouver".into()],
            vec![],
        );
        assert_eq!(r.full_text(), "Thai House Vancouver");
    }

    #[test]
    fn retrieved_clones_share_storage() {
        let r = Retrieved::new(ExternalId(2), vec!["Thai House".into()], vec!["4.1".into()]);
        let c = r.clone();
        assert!(Arc::ptr_eq(&r.fields, &c.fields));
        assert!(Arc::ptr_eq(&r.payload, &c.payload));
        assert_eq!(r, c);
    }
}
