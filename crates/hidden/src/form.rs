//! Form-like search interfaces (paper §9, future work #2).
//!
//! Many hidden databases expose a *form*: a set of typed fields
//! (`venue = SIGMOD`, `city = phoenix`) combined conjunctively, rather
//! than free-text keywords. The entire SmartCrawl machinery — pool mining,
//! benefit estimation, top-k handling — only relies on records being sets
//! of atomic symbols with conjunctive containment semantics, so form
//! search *reduces* to keyword search: encode every `(attribute, value)`
//! pair as one opaque alphanumeric token (`venue0sigmod`). A form
//! submission is then exactly a conjunctive keyword query over encoded
//! tokens, and [`HiddenDb`](crate::HiddenDb) serves as the form backend
//! unchanged.
//!
//! The encoding keeps attribute names *inside* the token, so
//! `venue = sigmod` can never be confused with `author = sigmod`.

use smartcrawl_text::Record;

/// Encoder for one form schema: an ordered list of attribute names.
#[derive(Debug, Clone)]
pub struct FormEncoder {
    attributes: Vec<String>,
}

impl FormEncoder {
    /// Creates an encoder for the given attribute names.
    ///
    /// # Panics
    /// Panics on an empty schema or a duplicate attribute name.
    pub fn new<S: Into<String>>(attributes: impl IntoIterator<Item = S>) -> Self {
        let attributes: Vec<String> =
            attributes.into_iter().map(|a| strip(&a.into())).collect();
        assert!(!attributes.is_empty(), "form schema needs at least one attribute");
        let mut dedup = attributes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), attributes.len(), "duplicate attribute in form schema");
        Self { attributes }
    }

    /// The schema's attribute names (normalized).
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Encodes one `(attribute, value)` predicate as an atomic keyword.
    ///
    /// # Panics
    /// Panics if `attr` is not part of the schema.
    pub fn predicate(&self, attr: &str, value: &str) -> String {
        let attr = strip(attr);
        assert!(
            self.attributes.contains(&attr),
            "attribute {attr:?} not in the form schema"
        );
        format!("{attr}0{}", strip(value))
    }

    /// Encodes a full tuple (one value per schema attribute, in order) as
    /// a record whose document is the set of encoded predicates.
    ///
    /// # Panics
    /// Panics if the arity does not match the schema.
    pub fn encode_record<S: AsRef<str>>(&self, values: &[S]) -> Record {
        assert_eq!(values.len(), self.attributes.len(), "tuple arity mismatch");
        let fields = self
            .attributes
            .iter()
            .zip(values)
            .map(|(a, v)| format!("{a}0{}", strip(v.as_ref())))
            .collect();
        Record::new(fields)
    }
}

/// Normalizes a name/value to one lowercase alphanumeric token, so the
/// standard tokenizer keeps the encoded predicate atomic.
fn strip(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HiddenDbBuilder, HiddenRecord};
    use smartcrawl_text::{Tokenizer, Vocabulary};

    fn encoder() -> FormEncoder {
        FormEncoder::new(["venue", "year", "city"])
    }

    #[test]
    fn predicates_are_atomic_under_the_standard_tokenizer() {
        let f = encoder();
        let p = f.predicate("city", "Casa Grande");
        assert_eq!(p, "city0casagrande");
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let doc = tok.tokenize(&p, &mut v);
        assert_eq!(doc.len(), 1, "an encoded predicate must stay one token");
    }

    #[test]
    fn same_value_under_different_attributes_does_not_collide() {
        let f = FormEncoder::new(["venue", "author"]);
        assert_ne!(f.predicate("venue", "sigmod"), f.predicate("author", "sigmod"));
    }

    #[test]
    fn encode_record_produces_one_field_per_attribute() {
        let f = encoder();
        let r = f.encode_record(&["SIGMOD", "2018", "Houston"]);
        assert_eq!(
            r.fields(),
            ["venue0sigmod", "year02018", "city0houston"]
        );
    }

    #[test]
    fn form_search_via_the_keyword_engine() {
        // The reduction end-to-end: a HiddenDb over encoded tuples answers
        // form submissions as conjunctive keyword queries.
        let f = encoder();
        let tuples: [(&str, &str, &str); 4] = [
            ("SIGMOD", "2018", "Houston"),
            ("SIGMOD", "2017", "Chicago"),
            ("VLDB", "2018", "Rio"),
            ("ICDE", "2018", "Paris"),
        ];
        let db = HiddenDbBuilder::new()
            .k(10)
            .records(tuples.iter().enumerate().map(|(i, &(v, y, c))| {
                HiddenRecord::new(
                    i as u64,
                    f.encode_record(&[v, y, c]),
                    vec![],
                    i as f64,
                )
            }))
            .build();
        // venue = SIGMOD ∧ year = 2018 → exactly one tuple.
        let page = db.search(&[f.predicate("venue", "SIGMOD"), f.predicate("year", "2018")]);
        assert_eq!(page.len(), 1);
        assert_eq!(page[0].external_id.0, 0);
        // year = 2018 → three tuples.
        assert_eq!(db.search(&[f.predicate("year", "2018")]).len(), 3);
        // A value under the wrong attribute matches nothing.
        assert!(db.search(&[f.predicate("city", "sigmod")]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not in the form schema")]
    fn unknown_attribute_rejected() {
        encoder().predicate("rating", "5");
    }

    #[test]
    #[should_panic(expected = "tuple arity mismatch")]
    fn arity_mismatch_rejected() {
        encoder().encode_record(&["SIGMOD"]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attributes_rejected() {
        FormEncoder::new(["a", "a"]);
    }
}
