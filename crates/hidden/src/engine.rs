//! The hidden database engine.
//!
//! Implements Definition 2 exactly: for a conjunctive query `q`, the engine
//! computes `q(H)` via its inverted index; if `|q(H)| ≤ k` the full match
//! set is returned (a *solid* query), otherwise the top-`k` under the
//! engine's ranking (an *overflowing* query). Query processing is
//! deterministic.
//!
//! The engine fronts one of two backends behind the same API: the original
//! all-in-RAM implementation, or the out-of-core [`crate::store`] backend
//! that keeps records and postings in `smartcrawl-store` paged files with
//! only O(vocabulary) + O(page-cache budget) bytes resident. Both produce
//! byte-identical pages for every query — the disk backend numbers records
//! by global rank position so its postings are rank-sorted, and the RAM
//! path's `rank_pos` sort keys are a permutation (no ties), which makes
//! both orderings the unique rank order.

use crate::ranking::Ranking;
use crate::record::{ExternalId, HiddenRecord, Retrieved};
use crate::store::DiskHidden;
use smartcrawl_index::InvertedIndex;
use smartcrawl_store::{StoreReport, StoreRuntime};
use smartcrawl_text::{Document, RecordId, TokenId, Tokenizer, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// Which match semantics the search interface exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Only records containing all query keywords match (the paper's
    /// Definition 1; DBLP-style engines).
    Conjunctive,
    /// Records containing any query keyword are candidates; ranking is by
    /// (number of matched keywords, then the engine ranking), so records
    /// matching all keywords rank at the top — the behaviour the paper
    /// observed on Yelp.
    Disjunctive,
}

/// Builder for [`HiddenDb`].
#[derive(Debug)]
pub struct HiddenDbBuilder {
    k: usize,
    ranking: Ranking,
    mode: SearchMode,
    tokenizer: Tokenizer,
    records: Vec<HiddenRecord>,
}

impl HiddenDbBuilder {
    /// Starts a builder with the paper's defaults (`k = 100`, conjunctive,
    /// rank by descending signal — the DBLP engine ranks by year).
    pub fn new() -> Self {
        Self {
            k: 100,
            ranking: Ranking::SignalDesc,
            mode: SearchMode::Conjunctive,
            tokenizer: Tokenizer::default(),
            records: Vec::new(),
        }
    }

    /// Sets the top-`k` result limit.
    pub fn k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Sets the (opaque) ranking function.
    pub fn ranking(mut self, ranking: Ranking) -> Self {
        self.ranking = ranking;
        self
    }

    /// Sets the match semantics.
    pub fn mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the tokenizer (must match the one used by clients for the
    /// conjunctive semantics to be meaningful).
    pub fn tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Adds records.
    pub fn records(mut self, records: impl IntoIterator<Item = HiddenRecord>) -> Self {
        self.records.extend(records);
        self
    }

    /// Builds the all-in-RAM engine (tokenizes and indexes every record).
    pub fn build(self) -> HiddenDb {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Document> = self
            .records
            .iter()
            .map(|r| r.searchable.document(&self.tokenizer, &mut vocab))
            .collect();
        let index = InvertedIndex::build(&docs, vocab.len());
        // Precompute the rank position of every record: position in the
        // database-wide ranking order (lower = ranked higher).
        let mut order: Vec<u32> = (0..self.records.len() as u32).collect();
        let ranking = self.ranking;
        order.sort_unstable_by_key(|&i| {
            let r = &self.records[i as usize];
            (ranking.key(r.external_id.0, r.rank_signal), r.external_id.0)
        });
        let mut rank_pos = vec![0u32; self.records.len()];
        for (pos, &i) in order.iter().enumerate() {
            rank_pos[i as usize] = pos as u32;
        }
        let by_external =
            self.records.iter().enumerate().map(|(i, r)| (r.external_id, i)).collect();
        // Pre-materialize every record's interface view once: `retrieve`
        // then costs two refcount bumps per result instead of deep-copying
        // all field and payload strings on every page it appears in.
        let retrieved: Vec<Retrieved> = self
            .records
            .iter()
            .map(|r| {
                Retrieved::new(
                    r.external_id,
                    r.searchable.fields().to_vec(),
                    r.payload.clone(),
                )
            })
            .collect();
        HiddenDb {
            backend: Backend::Ram(RamHidden {
                records: self.records,
                retrieved,
                docs,
                index,
                rank_pos,
                by_external,
            }),
            vocab,
            tokenizer: self.tokenizer,
            k: self.k,
            mode: self.mode,
        }
    }

    /// Builds the out-of-core engine: records added so far, chained with
    /// the (possibly huge) `records` iterator, are streamed straight into
    /// `runtime`'s on-disk store format without materializing the set in
    /// RAM. Every query answers byte-identically to [`Self::build`] over
    /// the same record sequence.
    pub fn build_streaming<I>(
        self,
        records: I,
        runtime: Arc<StoreRuntime>,
    ) -> smartcrawl_store::Result<HiddenDb>
    where
        I: IntoIterator<Item = HiddenRecord>,
    {
        let Self { k, ranking, mode, tokenizer, records: eager } = self;
        let mut vocab = Vocabulary::new();
        let disk = DiskHidden::build(
            eager.into_iter().chain(records),
            &tokenizer,
            &mut vocab,
            ranking,
            runtime,
        )?;
        Ok(HiddenDb { backend: Backend::Disk(Box::new(disk)), vocab, tokenizer, k, mode })
    }

    /// [`Self::build_streaming`] over just the records added so far.
    pub fn build_disk(self, runtime: Arc<StoreRuntime>) -> smartcrawl_store::Result<HiddenDb> {
        self.build_streaming(std::iter::empty(), runtime)
    }
}

impl Default for HiddenDbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The record/ranking backend behind the engine API.
#[derive(Debug)]
enum Backend {
    Ram(RamHidden),
    Disk(Box<DiskHidden>),
}

/// The original all-in-RAM backend: dense parallel arrays indexed by the
/// record ids this engine minted at build time.
#[derive(Debug)]
struct RamHidden {
    records: Vec<HiddenRecord>,
    /// Shared interface views, one per record (see `page_of`).
    retrieved: Vec<Retrieved>,
    docs: Vec<Document>,
    index: InvertedIndex,
    /// Record position in the global ranking (lower ranks higher).
    rank_pos: Vec<u32>,
    by_external: HashMap<ExternalId, usize>,
}

impl RamHidden {
    /// The conjunctive top-`k` page.
    fn conjunctive_page(&self, tokens: &[TokenId], k: usize) -> Vec<Retrieved> {
        self.page_of(self.top_k(self.index.matching(tokens), k))
    }

    /// `|q(H)|` under conjunctive semantics.
    fn frequency(&self, tokens: &[TokenId]) -> usize {
        self.index.frequency(tokens)
    }

    fn disjunctive_page(&self, tokens: &[TokenId], k: usize) -> Vec<Retrieved> {
        // Count distinct query tokens per candidate record.
        let mut hits: HashMap<RecordId, u32> = HashMap::new();
        for &t in tokens {
            for &rid in self.index.postings(t) {
                *hits.entry(rid).or_insert(0) += 1;
            }
        }
        // Yelp-like two-tier ranking (paper §2: records containing all
        // query keywords rank at the top): full matches first, ordered by
        // the engine ranking; then partial matches ordered by the engine
        // ranking alone — real relevance engines rank the partial tail by
        // popularity signals, not by raw keyword overlap, which is what
        // buries near-miss records under popular loosely-related ones.
        let n_query = tokens.len() as u32;
        let mut scored: Vec<(RecordId, bool)> =
            hits.into_iter().map(|(rid, m)| (rid, m == n_query)).collect();
        scored.sort_unstable_by_key(|&(rid, full)| {
            (std::cmp::Reverse(full), self.rank_pos[rid.index()])
        });
        scored.truncate(k);
        self.page_of(scored.into_iter().map(|(rid, _)| rid).collect())
    }

    fn top_k(&self, mut matches: Vec<RecordId>, k: usize) -> Vec<RecordId> {
        if matches.len() > k {
            matches.select_nth_unstable_by_key(k, |&rid| self.rank_pos[rid.index()]);
            matches.truncate(k);
        }
        matches.sort_unstable_by_key(|&rid| self.rank_pos[rid.index()]);
        matches
    }

    fn page_of(&self, ids: Vec<RecordId>) -> Vec<Retrieved> {
        ids.into_iter().map(|rid| self.retrieved[rid.index()].clone()).collect()
    }
}

/// A simulated hidden database with a top-`k` keyword-search interface.
#[derive(Debug)]
pub struct HiddenDb {
    backend: Backend,
    vocab: Vocabulary,
    tokenizer: Tokenizer,
    k: usize,
    mode: SearchMode,
}

impl HiddenDb {
    /// The interface's result-size limit `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of records `|H|` (unknown to crawlers; used by oracles,
    /// samplers with ground truth, and evaluation).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Ram(ram) => ram.records.len(),
            Backend::Disk(disk) => disk.len(),
        }
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// The page-cache report of the disk backend, `None` on the RAM path.
    pub fn store_report(&self) -> Option<StoreReport> {
        match &self.backend {
            Backend::Ram(_) => None,
            Backend::Disk(disk) => Some(disk.report()),
        }
    }

    /// Ground-truth record access by external id (evaluation only).
    pub fn get(&self, id: ExternalId) -> Option<HiddenRecord> {
        match &self.backend {
            Backend::Ram(ram) => ram.by_external.get(&id).map(|&i| ram.records[i].clone()),
            Backend::Disk(disk) => disk.get(id),
        }
    }

    /// Iterates all records in insertion order (evaluation / oracle
    /// sampling only). On the disk path each record is decoded on demand —
    /// the set is never materialized.
    pub fn iter(&self) -> impl Iterator<Item = HiddenRecord> + '_ {
        (0..self.len()).map(move |i| match &self.backend {
            Backend::Ram(ram) => ram.records[i].clone(),
            Backend::Disk(disk) => disk.record_at(i),
        })
    }

    /// Streams every record's interface view in insertion order. Samplers
    /// use this instead of [`Self::iter`] so whole-database sweeps stay
    /// out-of-core on the disk path (and skip the cell deep-copy on both).
    pub fn for_each_retrieved(&self, mut f: impl FnMut(Retrieved)) {
        match &self.backend {
            Backend::Ram(ram) => {
                for v in &ram.retrieved {
                    f(v.clone());
                }
            }
            Backend::Disk(disk) => disk.for_each_retrieved(f),
        }
    }

    /// The indexed document of a record, under the engine's own vocabulary
    /// (evaluation/diagnostics only). The disk path re-tokenizes the
    /// record against the frozen vocabulary — identical to the indexed
    /// document because every token of an indexed record was interned at
    /// build time.
    pub fn document_of(&self, id: ExternalId) -> Option<Document> {
        match &self.backend {
            Backend::Ram(ram) => ram.by_external.get(&id).map(|&i| ram.docs[i].clone()),
            Backend::Disk(disk) => {
                let rec = disk.get(id)?;
                Some(self.tokenizer.tokenize_known(&rec.searchable.full_text(), &self.vocab))
            }
        }
    }

    /// Executes a keyword search, returning the top-`k` page.
    ///
    /// Keywords are normalized with the engine's tokenizer; stop words are
    /// dropped (the paper does not consider them query keywords). A query
    /// whose every keyword is unknown/stopword matches nothing.
    pub fn search(&self, keywords: &[String]) -> Vec<Retrieved> {
        match self.mode {
            SearchMode::Conjunctive => {
                // A keyword outside the vocabulary is contained in no
                // record, so the conjunctive query matches nothing.
                let Some(tokens) = self.normalize_conjunctive(keywords) else {
                    return Vec::new();
                };
                if tokens.is_empty() {
                    return Vec::new();
                }
                match &self.backend {
                    Backend::Ram(ram) => ram.conjunctive_page(&tokens, self.k),
                    Backend::Disk(disk) => disk.conjunctive_page(&tokens, self.k),
                }
            }
            SearchMode::Disjunctive => {
                let tokens = self.normalize(keywords);
                if tokens.is_empty() {
                    return Vec::new();
                }
                match &self.backend {
                    Backend::Ram(ram) => ram.disjunctive_page(&tokens, self.k),
                    Backend::Disk(disk) => disk.disjunctive_page(&tokens, self.k),
                }
            }
        }
    }

    /// `|q(H)|` under *conjunctive* semantics — ground truth for tests and
    /// oracle estimators; a real hidden database never reveals this.
    pub fn true_frequency(&self, keywords: &[String]) -> usize {
        match self.normalize_conjunctive(keywords) {
            Some(tokens) if !tokens.is_empty() => match &self.backend {
                Backend::Ram(ram) => ram.frequency(&tokens),
                Backend::Disk(disk) => disk.frequency(&tokens),
            },
            _ => 0,
        }
    }

    fn normalize(&self, keywords: &[String]) -> Vec<TokenId> {
        let mut tokens: Vec<TokenId> = keywords
            .iter()
            .flat_map(|kw| {
                self.tokenizer
                    .raw_tokens(kw)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|t| self.vocab.get(&t))
            })
            .flatten()
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        // Keywords unknown to the vocabulary vanish here; disjunctive
        // queries simply ignore them (they match no posting list), so no
        // separate unknown-keyword check is needed on that path.
        tokens
    }

    /// Normalizes under *conjunctive* semantics: `None` as soon as any
    /// keyword token is unknown to the vocabulary (such a query matches
    /// nothing), otherwise the sorted deduplicated token set. One
    /// tokenization pass where `normalize` + a separate unknown-keyword
    /// scan used to do two — this sits on the oracle-evaluation hot path,
    /// where queries are re-scored after every removal.
    fn normalize_conjunctive(&self, keywords: &[String]) -> Option<Vec<TokenId>> {
        let mut tokens: Vec<TokenId> = Vec::new();
        for kw in keywords {
            for t in self.tokenizer.raw_tokens(kw) {
                tokens.push(self.vocab.get(&t)?);
            }
        }
        tokens.sort_unstable();
        tokens.dedup();
        Some(tokens)
    }

    /// The shared interface view of a record (samplers use this to build
    /// whole-database samples without re-copying cells).
    pub fn retrieved_of(&self, id: ExternalId) -> Option<Retrieved> {
        match &self.backend {
            Backend::Ram(ram) => ram.by_external.get(&id).map(|&i| ram.retrieved[i].clone()),
            Backend::Disk(disk) => disk.retrieved_of(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_store::{StoreConfig, StoreRuntime};
    use smartcrawl_text::Record;

    fn db(k: usize, names: &[(&str, f64)]) -> HiddenDb {
        HiddenDbBuilder::new()
            .k(k)
            .records(names.iter().enumerate().map(|(i, &(name, sig))| {
                HiddenRecord::new(i as u64, Record::from([name]), vec![format!("p{i}")], sig)
            }))
            .build()
    }

    #[test]
    fn solid_query_returns_full_match_set() {
        let h = db(10, &[("Thai House", 1.0), ("Steak House", 2.0), ("Ramen Bar", 3.0)]);
        let page = h.search(&["house".into()]);
        assert_eq!(page.len(), 2);
        assert_eq!(h.true_frequency(&["house".into()]), 2);
    }

    #[test]
    fn overflowing_query_truncates_to_top_k_by_ranking() {
        // k = 2, five matching records, SignalDesc: highest signals win.
        let h = db(
            2,
            &[
                ("House a", 2001.0),
                ("House b", 2005.0),
                ("House c", 1999.0),
                ("House d", 2010.0),
                ("House e", 2003.0),
            ],
        );
        let page = h.search(&["house".into()]);
        assert_eq!(page.len(), 2);
        let ids: Vec<u64> = page.iter().map(|r| r.external_id.0).collect();
        assert_eq!(ids, vec![3, 1]); // 2010, then 2005
    }

    #[test]
    fn conjunctive_requires_all_keywords() {
        let h = db(10, &[("Thai Noodle House", 1.0), ("Thai House", 2.0)]);
        assert_eq!(h.search(&["thai".into(), "noodle".into()]).len(), 1);
        assert_eq!(h.search(&["thai".into()]).len(), 2);
        assert!(h.search(&["thai".into(), "pavilion".into()]).is_empty());
    }

    #[test]
    fn stopwords_are_not_query_keywords() {
        let h = db(10, &[("Lotus Siam", 1.0)]);
        // "of" is a stop word: the query reduces to {lotus, siam}.
        let page = h.search(&["lotus".into(), "of".into(), "siam".into()]);
        assert_eq!(page.len(), 1);
    }

    #[test]
    fn deterministic_repeatable_results() {
        let h = db(2, &[("House a", 1.0), ("House b", 2.0), ("House c", 3.0)]);
        let q = vec!["house".to_string()];
        assert_eq!(h.search(&q), h.search(&q));
    }

    #[test]
    fn disjunctive_ranks_full_matches_first() {
        let h = HiddenDbBuilder::new()
            .k(3)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["Thai Palace"]), vec![], 50.0),
                HiddenRecord::new(1, Record::from(["Noodle World"]), vec![], 99.0),
                HiddenRecord::new(2, Record::from(["Thai Noodle House"]), vec![], 1.0),
            ])
            .build();
        let page = h.search(&["thai".into(), "noodle".into()]);
        // Record 2 matches both keywords → ranked first despite low signal.
        assert_eq!(page[0].external_id.0, 2);
        assert_eq!(page.len(), 3);
    }

    #[test]
    fn disjunctive_partial_tail_ranks_by_signal_not_match_count() {
        // Real relevance engines rank the partial tail by popularity: a
        // popular 1-keyword matcher must outrank an unpopular 2-of-3
        // matcher.
        let h = HiddenDbBuilder::new()
            .k(10)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec![], 1.0), // full
                HiddenRecord::new(1, Record::from(["thai noodle bar"]), vec![], 2.0), // 2/3, unpopular
                HiddenRecord::new(2, Record::from(["thai palace"]), vec![], 99.0), // 1/3, popular
            ])
            .build();
        let page = h.search(&["thai".into(), "noodle".into(), "house".into()]);
        let ids: Vec<u64> = page.iter().map(|r| r.external_id.0).collect();
        assert_eq!(ids, vec![0, 2, 1], "full match first, then partials by signal");
    }

    #[test]
    fn disjunctive_returns_partial_matches() {
        let h = HiddenDbBuilder::new()
            .k(10)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["Thai Palace"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["Ramen Bar"]), vec![], 2.0),
            ])
            .build();
        // Conjunctive would return nothing ("thai ramen" matches no record
        // fully); disjunctive returns both partial matches.
        let page = h.search(&["thai".into(), "ramen".into()]);
        assert_eq!(page.len(), 2);
    }

    #[test]
    fn hashed_ranking_is_opaque_but_stable() {
        let mk = || {
            HiddenDbBuilder::new()
                .k(1)
                .ranking(Ranking::Hashed { seed: 7 })
                .records((0..5).map(|i| {
                    HiddenRecord::new(i, Record::from(["common word"]), vec![], i as f64)
                }))
                .build()
        };
        let a = mk().search(&["common".into()]);
        let b = mk().search(&["common".into()]);
        assert_eq!(a, b);
    }

    #[test]
    fn get_by_external_id() {
        let h = db(10, &[("Thai House", 1.0)]);
        assert!(h.get(ExternalId(0)).is_some());
        assert!(h.get(ExternalId(9)).is_none());
    }

    #[test]
    fn empty_query_returns_nothing() {
        let h = db(10, &[("Thai House", 1.0)]);
        assert!(h.search(&[]).is_empty());
        assert!(h.search(&["the".into()]).is_empty()); // all stopwords
    }

    fn small_runtime() -> Arc<StoreRuntime> {
        StoreRuntime::create(StoreConfig {
            page_size: 256,
            cache_pages: 16,
            shards: 1,
            dir: None,
        })
        .expect("store runtime")
    }

    fn records() -> Vec<HiddenRecord> {
        let names = [
            "Thai Noodle House",
            "Steak House",
            "Thai Palace",
            "Ramen Bar downtown",
            "Noodle World",
            "Thai House",
            "House of Ramen",
            "Golden Noodle Palace",
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                HiddenRecord::new(
                    i as u64,
                    Record::from([*name]),
                    vec![format!("p{i}"), format!("q{i}")],
                    ((i * 37) % 11) as f64,
                )
            })
            .collect()
    }

    fn queries() -> Vec<Vec<String>> {
        vec![
            vec!["house".into()],
            vec!["thai".into()],
            vec!["noodle".into(), "thai".into()],
            vec!["ramen".into()],
            vec!["palace".into(), "golden".into()],
            vec!["unknownword".into()],
            vec![],
        ]
    }

    #[test]
    fn disk_backend_matches_ram_conjunctive() {
        let ram = HiddenDbBuilder::new().k(2).records(records()).build();
        let disk = HiddenDbBuilder::new()
            .k(2)
            .build_streaming(records(), small_runtime())
            .expect("disk build");
        for q in queries() {
            assert_eq!(ram.search(&q), disk.search(&q), "query {q:?}");
            assert_eq!(ram.true_frequency(&q), disk.true_frequency(&q), "freq {q:?}");
        }
    }

    #[test]
    fn disk_backend_matches_ram_disjunctive() {
        let ram =
            HiddenDbBuilder::new().k(3).mode(SearchMode::Disjunctive).records(records()).build();
        let disk = HiddenDbBuilder::new()
            .k(3)
            .mode(SearchMode::Disjunctive)
            .build_streaming(records(), small_runtime())
            .expect("disk build");
        for q in queries() {
            assert_eq!(ram.search(&q), disk.search(&q), "query {q:?}");
        }
    }

    #[test]
    fn disk_backend_matches_ram_accessors() {
        let ram = HiddenDbBuilder::new().k(4).records(records()).build();
        let disk = HiddenDbBuilder::new()
            .k(4)
            .build_streaming(records(), small_runtime())
            .expect("disk build");
        assert_eq!(ram.len(), disk.len());
        for id in (0..records().len() as u64 + 2).map(ExternalId) {
            let (a, b) = (ram.get(id), disk.get(id));
            assert_eq!(a.is_some(), b.is_some(), "presence of {id:?}");
            if let (Some(a), Some(b)) = (&a, &b) {
                assert_eq!(a.external_id, b.external_id);
                assert_eq!(a.searchable.fields(), b.searchable.fields());
                assert_eq!(a.payload, b.payload);
                assert_eq!(a.rank_signal.to_bits(), b.rank_signal.to_bits());
            }
            assert_eq!(ram.retrieved_of(id), disk.retrieved_of(id), "view of {id:?}");
            assert_eq!(ram.document_of(id), disk.document_of(id), "document of {id:?}");
        }
        let ram_iter: Vec<u64> = ram.iter().map(|r| r.external_id.0).collect();
        let disk_iter: Vec<u64> = disk.iter().map(|r| r.external_id.0).collect();
        assert_eq!(ram_iter, disk_iter);
        let mut ram_views = Vec::new();
        ram.for_each_retrieved(|v| ram_views.push(v));
        let mut disk_views = Vec::new();
        disk.for_each_retrieved(|v| disk_views.push(v));
        assert_eq!(ram_views, disk_views);
        assert!(ram.store_report().is_none());
        assert!(disk.store_report().is_some());
    }
}
