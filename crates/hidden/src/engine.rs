//! The in-memory hidden database engine.
//!
//! Implements Definition 2 exactly: for a conjunctive query `q`, the engine
//! computes `q(H)` via its inverted index; if `|q(H)| ≤ k` the full match
//! set is returned (a *solid* query), otherwise the top-`k` under the
//! engine's ranking (an *overflowing* query). Query processing is
//! deterministic.

use crate::ranking::Ranking;
use crate::record::{ExternalId, HiddenRecord, Retrieved};
use smartcrawl_index::InvertedIndex;
use smartcrawl_text::{Document, RecordId, TokenId, Tokenizer, Vocabulary};
use std::collections::HashMap;

/// Which match semantics the search interface exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Only records containing all query keywords match (the paper's
    /// Definition 1; DBLP-style engines).
    Conjunctive,
    /// Records containing any query keyword are candidates; ranking is by
    /// (number of matched keywords, then the engine ranking), so records
    /// matching all keywords rank at the top — the behaviour the paper
    /// observed on Yelp.
    Disjunctive,
}

/// Builder for [`HiddenDb`].
#[derive(Debug)]
pub struct HiddenDbBuilder {
    k: usize,
    ranking: Ranking,
    mode: SearchMode,
    tokenizer: Tokenizer,
    records: Vec<HiddenRecord>,
}

impl HiddenDbBuilder {
    /// Starts a builder with the paper's defaults (`k = 100`, conjunctive,
    /// rank by descending signal — the DBLP engine ranks by year).
    pub fn new() -> Self {
        Self {
            k: 100,
            ranking: Ranking::SignalDesc,
            mode: SearchMode::Conjunctive,
            tokenizer: Tokenizer::default(),
            records: Vec::new(),
        }
    }

    /// Sets the top-`k` result limit.
    pub fn k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Sets the (opaque) ranking function.
    pub fn ranking(mut self, ranking: Ranking) -> Self {
        self.ranking = ranking;
        self
    }

    /// Sets the match semantics.
    pub fn mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the tokenizer (must match the one used by clients for the
    /// conjunctive semantics to be meaningful).
    pub fn tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Adds records.
    pub fn records(mut self, records: impl IntoIterator<Item = HiddenRecord>) -> Self {
        self.records.extend(records);
        self
    }

    /// Builds the engine (tokenizes and indexes every record).
    pub fn build(self) -> HiddenDb {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Document> = self
            .records
            .iter()
            .map(|r| r.searchable.document(&self.tokenizer, &mut vocab))
            .collect();
        let index = InvertedIndex::build(&docs, vocab.len());
        // Precompute the rank position of every record: position in the
        // database-wide ranking order (lower = ranked higher).
        let mut order: Vec<u32> = (0..self.records.len() as u32).collect();
        let ranking = self.ranking;
        order.sort_unstable_by_key(|&i| {
            let r = &self.records[i as usize];
            (ranking.key(r.external_id.0, r.rank_signal), r.external_id.0)
        });
        let mut rank_pos = vec![0u32; self.records.len()];
        for (pos, &i) in order.iter().enumerate() {
            rank_pos[i as usize] = pos as u32;
        }
        let by_external =
            self.records.iter().enumerate().map(|(i, r)| (r.external_id, i)).collect();
        // Pre-materialize every record's interface view once: `retrieve`
        // then costs two refcount bumps per result instead of deep-copying
        // all field and payload strings on every page it appears in.
        let retrieved: Vec<Retrieved> = self
            .records
            .iter()
            .map(|r| {
                Retrieved::new(
                    r.external_id,
                    r.searchable.fields().to_vec(),
                    r.payload.clone(),
                )
            })
            .collect();
        HiddenDb {
            records: self.records,
            retrieved,
            docs,
            vocab,
            index,
            rank_pos,
            by_external,
            tokenizer: self.tokenizer,
            k: self.k,
            mode: self.mode,
        }
    }
}

impl Default for HiddenDbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A simulated hidden database with a top-`k` keyword-search interface.
#[derive(Debug)]
pub struct HiddenDb {
    records: Vec<HiddenRecord>,
    /// Shared interface views, one per record (see `retrieve`).
    retrieved: Vec<Retrieved>,
    docs: Vec<Document>,
    vocab: Vocabulary,
    index: InvertedIndex,
    /// Record position in the global ranking (lower ranks higher).
    rank_pos: Vec<u32>,
    by_external: HashMap<ExternalId, usize>,
    tokenizer: Tokenizer,
    k: usize,
    mode: SearchMode,
}

impl HiddenDb {
    /// The interface's result-size limit `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of records `|H|` (unknown to crawlers; used by oracles,
    /// samplers with ground truth, and evaluation).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Ground-truth record access by external id (evaluation only).
    pub fn get(&self, id: ExternalId) -> Option<&HiddenRecord> {
        self.by_external.get(&id).map(|&i| &self.records[i])
    }

    /// Iterates all records (evaluation / oracle sampling only).
    pub fn iter(&self) -> impl Iterator<Item = &HiddenRecord> {
        self.records.iter()
    }

    /// The indexed document of a record, under the engine's own vocabulary
    /// (evaluation/diagnostics only).
    pub fn document_of(&self, id: ExternalId) -> Option<&Document> {
        self.by_external.get(&id).map(|&i| &self.docs[i])
    }

    /// Executes a keyword search, returning the top-`k` page.
    ///
    /// Keywords are normalized with the engine's tokenizer; stop words are
    /// dropped (the paper does not consider them query keywords). A query
    /// whose every keyword is unknown/stopword matches nothing.
    pub fn search(&self, keywords: &[String]) -> Vec<Retrieved> {
        self.search_ids(keywords).into_iter().map(|rid| self.retrieve(rid)).collect()
    }

    /// [`HiddenDb::search`] without materializing owned records: the same
    /// top-`k` page as borrowed views. The QSel-Ideal oracle sits on the
    /// selection hot path and evaluates tens of thousands of queries whose
    /// pages are only *read* (to compute covers), so skipping the per-record
    /// clone is measurable.
    pub fn search_refs(&self, keywords: &[String]) -> Vec<&Retrieved> {
        self.search_ids(keywords)
            .into_iter()
            // lint:allow(panic-freedom) search_ids yields RecordIds this engine minted over the same arrays
            .map(|rid| &self.retrieved[rid.index()])
            .collect()
    }

    /// The top-`k` page as internal record ids, engine-rank order.
    fn search_ids(&self, keywords: &[String]) -> Vec<RecordId> {
        match self.mode {
            SearchMode::Conjunctive => {
                // A keyword outside the vocabulary is contained in no
                // record, so the conjunctive query matches nothing.
                let Some(tokens) = self.normalize_conjunctive(keywords) else {
                    return Vec::new();
                };
                if tokens.is_empty() {
                    return Vec::new();
                }
                self.top_k(self.index.matching(&tokens))
            }
            SearchMode::Disjunctive => {
                let tokens = self.normalize(keywords);
                if tokens.is_empty() {
                    return Vec::new();
                }
                self.search_disjunctive(&tokens)
            }
        }
    }

    /// `|q(H)|` under *conjunctive* semantics — ground truth for tests and
    /// oracle estimators; a real hidden database never reveals this.
    pub fn true_frequency(&self, keywords: &[String]) -> usize {
        match self.normalize_conjunctive(keywords) {
            Some(tokens) if !tokens.is_empty() => self.index.frequency(&tokens),
            _ => 0,
        }
    }

    fn normalize(&self, keywords: &[String]) -> Vec<TokenId> {
        let mut tokens: Vec<TokenId> = keywords
            .iter()
            .flat_map(|kw| {
                self.tokenizer
                    .raw_tokens(kw)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|t| self.vocab.get(&t))
            })
            .flatten()
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        // Keywords unknown to the vocabulary vanish here; disjunctive
        // queries simply ignore them (they match no posting list), so no
        // separate unknown-keyword check is needed on that path.
        tokens
    }

    /// Normalizes under *conjunctive* semantics: `None` as soon as any
    /// keyword token is unknown to the vocabulary (such a query matches
    /// nothing), otherwise the sorted deduplicated token set. One
    /// tokenization pass where `normalize` + a separate unknown-keyword
    /// scan used to do two — this sits on the oracle-evaluation hot path,
    /// where queries are re-scored after every removal.
    fn normalize_conjunctive(&self, keywords: &[String]) -> Option<Vec<TokenId>> {
        let mut tokens: Vec<TokenId> = Vec::new();
        for kw in keywords {
            for t in self.tokenizer.raw_tokens(kw) {
                tokens.push(self.vocab.get(&t)?);
            }
        }
        tokens.sort_unstable();
        tokens.dedup();
        Some(tokens)
    }

    fn search_disjunctive(&self, tokens: &[TokenId]) -> Vec<RecordId> {
        // Count distinct query tokens per candidate record.
        let mut hits: HashMap<RecordId, u32> = HashMap::new();
        for &t in tokens {
            for &rid in self.index.postings(t) {
                *hits.entry(rid).or_insert(0) += 1;
            }
        }
        // Yelp-like two-tier ranking (paper §2: records containing all
        // query keywords rank at the top): full matches first, ordered by
        // the engine ranking; then partial matches ordered by the engine
        // ranking alone — real relevance engines rank the partial tail by
        // popularity signals, not by raw keyword overlap, which is what
        // buries near-miss records under popular loosely-related ones.
        let n_query = tokens.len() as u32;
        let mut scored: Vec<(RecordId, bool)> =
            hits.into_iter().map(|(rid, m)| (rid, m == n_query)).collect();
        scored.sort_unstable_by_key(|&(rid, full)| {
            (std::cmp::Reverse(full), self.rank_pos[rid.index()])
        });
        scored.truncate(self.k);
        scored.into_iter().map(|(rid, _)| rid).collect()
    }

    fn top_k(&self, mut matches: Vec<RecordId>) -> Vec<RecordId> {
        if matches.len() > self.k {
            let k = self.k;
            matches.select_nth_unstable_by_key(k, |&rid| self.rank_pos[rid.index()]);
            matches.truncate(k);
        }
        matches.sort_unstable_by_key(|&rid| self.rank_pos[rid.index()]);
        matches
    }

    fn retrieve(&self, rid: RecordId) -> Retrieved {
        self.retrieved[rid.index()].clone()
    }

    /// The shared interface view of a record (samplers use this to build
    /// whole-database samples without re-copying cells).
    pub fn retrieved_of(&self, id: ExternalId) -> Option<&Retrieved> {
        self.by_external.get(&id).map(|&i| &self.retrieved[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartcrawl_text::Record;

    fn db(k: usize, names: &[(&str, f64)]) -> HiddenDb {
        HiddenDbBuilder::new()
            .k(k)
            .records(names.iter().enumerate().map(|(i, &(name, sig))| {
                HiddenRecord::new(i as u64, Record::from([name]), vec![format!("p{i}")], sig)
            }))
            .build()
    }

    #[test]
    fn solid_query_returns_full_match_set() {
        let h = db(10, &[("Thai House", 1.0), ("Steak House", 2.0), ("Ramen Bar", 3.0)]);
        let page = h.search(&["house".into()]);
        assert_eq!(page.len(), 2);
        assert_eq!(h.true_frequency(&["house".into()]), 2);
    }

    #[test]
    fn overflowing_query_truncates_to_top_k_by_ranking() {
        // k = 2, five matching records, SignalDesc: highest signals win.
        let h = db(
            2,
            &[
                ("House a", 2001.0),
                ("House b", 2005.0),
                ("House c", 1999.0),
                ("House d", 2010.0),
                ("House e", 2003.0),
            ],
        );
        let page = h.search(&["house".into()]);
        assert_eq!(page.len(), 2);
        let ids: Vec<u64> = page.iter().map(|r| r.external_id.0).collect();
        assert_eq!(ids, vec![3, 1]); // 2010, then 2005
    }

    #[test]
    fn conjunctive_requires_all_keywords() {
        let h = db(10, &[("Thai Noodle House", 1.0), ("Thai House", 2.0)]);
        assert_eq!(h.search(&["thai".into(), "noodle".into()]).len(), 1);
        assert_eq!(h.search(&["thai".into()]).len(), 2);
        assert!(h.search(&["thai".into(), "pavilion".into()]).is_empty());
    }

    #[test]
    fn stopwords_are_not_query_keywords() {
        let h = db(10, &[("Lotus Siam", 1.0)]);
        // "of" is a stop word: the query reduces to {lotus, siam}.
        let page = h.search(&["lotus".into(), "of".into(), "siam".into()]);
        assert_eq!(page.len(), 1);
    }

    #[test]
    fn deterministic_repeatable_results() {
        let h = db(2, &[("House a", 1.0), ("House b", 2.0), ("House c", 3.0)]);
        let q = vec!["house".to_string()];
        assert_eq!(h.search(&q), h.search(&q));
    }

    #[test]
    fn disjunctive_ranks_full_matches_first() {
        let h = HiddenDbBuilder::new()
            .k(3)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["Thai Palace"]), vec![], 50.0),
                HiddenRecord::new(1, Record::from(["Noodle World"]), vec![], 99.0),
                HiddenRecord::new(2, Record::from(["Thai Noodle House"]), vec![], 1.0),
            ])
            .build();
        let page = h.search(&["thai".into(), "noodle".into()]);
        // Record 2 matches both keywords → ranked first despite low signal.
        assert_eq!(page[0].external_id.0, 2);
        assert_eq!(page.len(), 3);
    }

    #[test]
    fn disjunctive_partial_tail_ranks_by_signal_not_match_count() {
        // Real relevance engines rank the partial tail by popularity: a
        // popular 1-keyword matcher must outrank an unpopular 2-of-3
        // matcher.
        let h = HiddenDbBuilder::new()
            .k(10)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["thai noodle house"]), vec![], 1.0), // full
                HiddenRecord::new(1, Record::from(["thai noodle bar"]), vec![], 2.0), // 2/3, unpopular
                HiddenRecord::new(2, Record::from(["thai palace"]), vec![], 99.0), // 1/3, popular
            ])
            .build();
        let page = h.search(&["thai".into(), "noodle".into(), "house".into()]);
        let ids: Vec<u64> = page.iter().map(|r| r.external_id.0).collect();
        assert_eq!(ids, vec![0, 2, 1], "full match first, then partials by signal");
    }

    #[test]
    fn disjunctive_returns_partial_matches() {
        let h = HiddenDbBuilder::new()
            .k(10)
            .mode(SearchMode::Disjunctive)
            .records([
                HiddenRecord::new(0, Record::from(["Thai Palace"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["Ramen Bar"]), vec![], 2.0),
            ])
            .build();
        // Conjunctive would return nothing ("thai ramen" matches no record
        // fully); disjunctive returns both partial matches.
        let page = h.search(&["thai".into(), "ramen".into()]);
        assert_eq!(page.len(), 2);
    }

    #[test]
    fn hashed_ranking_is_opaque_but_stable() {
        let mk = || {
            HiddenDbBuilder::new()
                .k(1)
                .ranking(Ranking::Hashed { seed: 7 })
                .records((0..5).map(|i| {
                    HiddenRecord::new(i, Record::from(["common word"]), vec![], i as f64)
                }))
                .build()
        };
        let a = mk().search(&["common".into()]);
        let b = mk().search(&["common".into()]);
        assert_eq!(a, b);
    }

    #[test]
    fn get_by_external_id() {
        let h = db(10, &[("Thai House", 1.0)]);
        assert!(h.get(ExternalId(0)).is_some());
        assert!(h.get(ExternalId(9)).is_none());
    }

    #[test]
    fn empty_query_returns_nothing() {
        let h = db(10, &[("Thai House", 1.0)]);
        assert!(h.search(&[]).is_empty());
        assert!(h.search(&["the".into()]).is_empty()); // all stopwords
    }
}
