//! Hidden-database simulator (paper §2, Definition 2; §7.1).
//!
//! A *hidden database* curates records reachable only through a keyword
//! search interface: given a query, it returns the top-`k` records that
//! match, ranked by a function the crawler does not know. This crate
//! simulates such databases faithfully:
//!
//! * [`HiddenDb`] — an in-memory corpus with an inverted index and a
//!   deterministic (but externally opaque) [`Ranking`]. Two search
//!   semantics are supported, mirroring the paper's two evaluation setups:
//!   * [`SearchMode::Conjunctive`] — only records containing *all* query
//!     keywords are returned (DBLP-style engine, §7.1.1);
//!   * [`SearchMode::Disjunctive`] — records matching *any* keyword are
//!     candidates and records matching more keywords rank higher, so
//!     conjunctive matches rank at the top (Yelp-style behaviour, §2 and
//!     §7.1.2).
//! * [`SearchInterface`] — the only door crawlers get, plus the
//!   [`Metered`] wrapper that enforces the query budget and keeps an audit
//!   log (Yelp's 25 000-requests/day limit is what makes DeepEnrich a
//!   budgeted problem in the first place).
//! * [`FlakyInterface`] — deterministic, seeded fault injection
//!   ([`SearchError::Transient`] / [`SearchError::RateLimited`]) so every
//!   crawler can be ablated under the same failure trace, and
//!   [`RetryPolicy`] — the bounded-retry/backoff contract drivers honor.
//!
//! Query processing is deterministic: re-issuing a query yields the same
//! page (the paper assumes deterministic query processing).

pub mod engine;
pub mod flaky;
pub mod form;
pub mod interface;
pub mod ranking;
pub mod record;
mod store;

pub use engine::{HiddenDb, HiddenDbBuilder, SearchMode};
pub use flaky::FlakyInterface;
pub use form::FormEncoder;
pub use interface::{
    canonical_query_key, CacheStats, Metered, QueryLogEntry, RetryPolicy, SearchError,
    SearchInterface, SearchPage,
};
pub use ranking::Ranking;
pub use record::{ExternalId, HiddenRecord, Retrieved};
