//! Deterministic-but-opaque ranking functions (paper: "an unknown ranking
//! function"; the simulated DBLP engine ranks by year).
//!
//! The crawler never sees the ranking; the estimators in the paper are
//! proven *regardless of the underlying ranking function* (Lemmas 4–5), so
//! the simulator offers several to exercise that claim.

/// How a hidden database orders the records matching a query before
/// truncating to the top-`k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ranking {
    /// Highest [`rank_signal`](crate::HiddenRecord::rank_signal) first
    /// (e.g. newest year, most reviews). Ties by external id.
    SignalDesc,
    /// Lowest rank signal first. Ties by external id.
    SignalAsc,
    /// Pseudo-random but fixed order derived from hashing the external id
    /// with a seed — a worst-case "inscrutable relevance" ranking.
    Hashed {
        /// Seed mixed into the hash, so different databases rank
        /// differently.
        seed: u64,
    },
}

impl Ranking {
    /// A sort key: *smaller key ranks higher*. Deterministic.
    pub fn key(&self, external_id: u64, rank_signal: f64) -> u64 {
        match *self {
            Ranking::SignalDesc => {
                // Order by descending signal; invert a monotone mapping of
                // the float. Ties broken by external id via the caller.
                !monotone_f64_bits(rank_signal)
            }
            Ranking::SignalAsc => monotone_f64_bits(rank_signal),
            Ranking::Hashed { seed } => splitmix64(external_id ^ seed),
        }
    }
}

/// Maps f64 to u64 preserving order (for totally ordered, non-NaN inputs).
fn monotone_f64_bits(x: f64) -> u64 {
    assert!(!x.is_nan(), "rank signal must not be NaN");
    let bits = x.to_bits();
    if bits & (1 << 63) != 0 {
        !bits // negative numbers: reverse order and place below positives
    } else {
        bits | (1 << 63)
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_desc_ranks_larger_signal_higher() {
        let r = Ranking::SignalDesc;
        assert!(r.key(0, 2018.0) < r.key(1, 1999.0));
        assert!(r.key(0, 0.5) < r.key(1, -0.5));
    }

    #[test]
    fn signal_asc_ranks_smaller_signal_higher() {
        let r = Ranking::SignalAsc;
        assert!(r.key(0, 1999.0) < r.key(1, 2018.0));
        assert!(r.key(0, -3.0) < r.key(1, -2.0));
    }

    #[test]
    fn monotone_bits_preserve_order() {
        let xs = [-1e9, -2.5, -0.0, 0.0, 1e-9, 3.75, 2018.0, 1e12];
        for w in xs.windows(2) {
            assert!(
                monotone_f64_bits(w[0]) <= monotone_f64_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn hashed_is_deterministic_and_seed_sensitive() {
        let a = Ranking::Hashed { seed: 1 };
        let b = Ranking::Hashed { seed: 2 };
        assert_eq!(a.key(42, 0.0), a.key(42, 0.0));
        assert_ne!(a.key(42, 0.0), b.key(42, 0.0));
        // Signal is ignored under hashed ranking.
        assert_eq!(a.key(42, 1.0), a.key(42, 99.0));
    }

    #[test]
    #[should_panic(expected = "rank signal must not be NaN")]
    fn nan_signal_rejected() {
        Ranking::SignalDesc.key(0, f64::NAN);
    }
}
