//! Disk-backed hidden-database backend.
//!
//! The RAM engine holds `Vec<HiddenRecord>` plus a pre-materialized
//! `Vec<Retrieved>` — fine at 10⁵ records, hopeless at the ROADMAP's
//! scale-100 target. This backend keeps the whole record set on disk in
//! `smartcrawl-store`'s paged format and keeps only O(vocabulary) +
//! O(page-cache budget) bytes resident:
//!
//! * **records blob** — each record varint-encoded once, in insertion
//!   order (the order the generator yielded them, which every digest in
//!   the workspace is keyed to).
//! * **postings blob** — one delta/varint posting list per token over
//!   *rank-space* ids: records are renumbered by their global ranking
//!   position before encoding, so every list is simultaneously ascending
//!   and rank-sorted. A conjunctive top-k is then a rarest-first cursor
//!   intersection that emits winners in final page order and *stops at
//!   `k`* — non-winning records are never touched, let alone decoded.
//! * **aux blob** — three fixed-width arrays (rank → insertion id,
//!   insertion id → record locator + rank, and the external-id lookup as
//!   a sorted `(external, insertion)` array probed by binary search), all
//!   read through the page cache so resident memory stays O(cache), not
//!   O(|H|).
//!
//! `Retrieved` views are materialized lazily through a bounded
//! two-generation cache instead of eagerly for every record. Build-time
//! postings construction is chunked over token ranges with the tokenized
//! documents spilled to a staging blob, so peak build memory is bounded
//! by the chunk budget rather than the corpus' total token count. (The
//! per-record fixed-width side tables — locators, sort keys — are still
//! O(|H|) *transiently* during the build; see DESIGN.md §15.)
//!
//! Failure policy matches the store crate: everything at build/open time
//! returns `Result`; query-time reads on the validated store go through
//! [`expect_store`], because an index vanishing mid-crawl is
//! unrecoverable by design.

use crate::ranking::Ranking;
use crate::record::{ExternalId, HiddenRecord, Retrieved};
use smartcrawl_store::format::{read_varint, write_varint};
use smartcrawl_store::postings::{decode_postings_into, encode_postings, PostingCursor};
use smartcrawl_store::{
    expect_store, BlobReader, BlobWriter, Locator, Result, StoreError, StoreReport, StoreRuntime,
};
use smartcrawl_text::{TokenId, Tokenizer, Vocabulary};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Bytes of one external-id lookup entry: `u64` external + `u32` insertion.
const EXT_ENTRY: u64 = 12;
/// Bytes of one record-meta entry: `u64` offset + `u32` len + `u32` rank.
const META_ENTRY: u64 = 16;
/// Bytes of one rank-map entry: `u32` insertion id.
const RANK_ENTRY: u64 = 4;
/// Posting ids (× 4 bytes) one build chunk may hold in RAM.
const CHUNK_IDS: usize = 4 << 20;
/// Lazily materialized `Retrieved` views kept per cache generation.
const VIEW_CACHE_CAP: usize = 4096;

fn le_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4)?.try_into().ok().map(u32::from_le_bytes)
}

fn le_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off + 8)?.try_into().ok().map(u64::from_le_bytes)
}

fn corrupt(runtime: &StoreRuntime, detail: &str) -> StoreError {
    StoreError::Corrupt {
        path: runtime.dir().to_path_buf(),
        detail: detail.to_string(),
    }
}

fn short_read() -> StoreError {
    StoreError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "aux entry short read",
    ))
}

/// Encodes one record: external id, rank-signal bits, then length-prefixed
/// field and payload cells.
fn encode_record(r: &HiddenRecord, out: &mut Vec<u8>) {
    out.clear();
    write_varint(out, r.external_id.0);
    out.extend_from_slice(&r.rank_signal.to_bits().to_le_bytes());
    write_varint(out, r.searchable.fields().len() as u64);
    for f in r.searchable.fields() {
        write_varint(out, f.len() as u64);
        out.extend_from_slice(f.as_bytes());
    }
    write_varint(out, r.payload.len() as u64);
    for p in &r.payload {
        write_varint(out, p.len() as u64);
        out.extend_from_slice(p.as_bytes());
    }
}

fn read_cells(buf: &[u8], pos: &mut usize) -> Option<Vec<String>> {
    let n = usize::try_from(read_varint(buf, pos)?).ok()?;
    if n > buf.len() {
        return None;
    }
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let len = usize::try_from(read_varint(buf, pos)?).ok()?;
        let bytes = buf.get(*pos..pos.checked_add(len)?)?;
        *pos += len;
        cells.push(String::from_utf8(bytes.to_vec()).ok()?);
    }
    Some(cells)
}

fn decode_record(buf: &[u8]) -> Option<HiddenRecord> {
    let mut pos = 0usize;
    let ext = read_varint(buf, &mut pos)?;
    let bits = le_u64(buf, pos)?;
    pos += 8;
    let fields = read_cells(buf, &mut pos)?;
    let payload = read_cells(buf, &mut pos)?;
    (pos == buf.len()).then(|| {
        HiddenRecord::new(
            ext,
            smartcrawl_text::Record::new(fields),
            payload,
            f64::from_bits(bits),
        )
    })
}

/// Bounded two-generation view cache: O(1) insert/lookup, at most
/// `2 × cap` resident views, promotion on hit. Eviction is a pure
/// function of the access sequence — no wall clock anywhere.
#[derive(Debug)]
struct ViewCache {
    cap: usize,
    hot: HashMap<u32, Retrieved>,
    cold: HashMap<u32, Retrieved>,
}

impl ViewCache {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            hot: HashMap::new(),
            cold: HashMap::new(),
        }
    }

    fn get(&mut self, ins: u32) -> Option<Retrieved> {
        if let Some(v) = self.hot.get(&ins) {
            return Some(v.clone());
        }
        let v = self.cold.remove(&ins)?;
        self.insert(ins, v.clone());
        Some(v)
    }

    fn insert(&mut self, ins: u32, view: Retrieved) {
        if self.hot.len() >= self.cap {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(ins, view);
    }
}

/// The mutable half of the backend: blob readers with their page caches
/// and scratch buffers, serialized behind one mutex (readers reposition
/// files and recycle cache frames, so they need `&mut`).
#[derive(Debug)]
struct Readers {
    records: BlobReader,
    postings: BlobReader,
    aux: BlobReader,
    /// Scratch for aux/record span reads.
    scratch: Vec<u8>,
    views: ViewCache,
}

/// Disk-backed record/ranking backend behind the `HiddenDb` API.
#[derive(Debug)]
pub(crate) struct DiskHidden {
    runtime: Arc<StoreRuntime>,
    /// Number of records `|H|`.
    n: u32,
    /// Per-token locator of the rank-space posting list (O(vocab)).
    post_locs: Vec<Locator>,
    /// Per-token document frequency (O(vocab)).
    post_counts: Vec<u32>,
    /// Logical offsets of the three aux runs.
    rank_base: u64,
    meta_base: u64,
    ext_base: u64,
    reader: Mutex<Readers>,
}

impl DiskHidden {
    /// Streams `records` into the store format and opens the query-time
    /// readers. `vocab` is grown in place (the owning `HiddenDb` keeps it
    /// for query normalization).
    pub(crate) fn build<I>(
        records: I,
        tokenizer: &Tokenizer,
        vocab: &mut Vocabulary,
        ranking: Ranking,
        runtime: Arc<StoreRuntime>,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = HiddenRecord>,
    {
        let page_size = runtime.config().page_size;
        let rec_path = runtime.file_path("hidden-records");
        let doc_path = runtime.file_path("hidden-docs-staging");
        let mut rec_writer = BlobWriter::create(&rec_path, page_size)?;
        let mut doc_writer = BlobWriter::create(&doc_path, page_size)?;

        // Pass 1: stream records once — serialize each into the records
        // blob, spill its tokenized document to the staging blob, and keep
        // only fixed-width per-record side data (locator, sort key,
        // external id).
        let mut rec_locs: Vec<Locator> = Vec::new();
        let mut doc_locs: Vec<Locator> = Vec::new();
        let mut keys: Vec<(u64, u64)> = Vec::new();
        let mut exts: Vec<u64> = Vec::new();
        let mut tok_counts: Vec<u32> = Vec::new();
        let mut buf = Vec::new();
        for r in records {
            let doc = r.searchable.document(tokenizer, vocab);
            buf.clear();
            write_varint(&mut buf, doc.len() as u64);
            let mut prev = 0u32;
            for t in doc.iter() {
                write_varint(&mut buf, u64::from(t.0 - prev));
                prev = t.0;
                if tok_counts.len() <= t.index() {
                    tok_counts.resize(t.index() + 1, 0);
                }
                if let Some(c) = tok_counts.get_mut(t.index()) {
                    *c += 1;
                }
            }
            doc_locs.push(doc_writer.append(&buf)?);
            encode_record(&r, &mut buf);
            rec_locs.push(rec_writer.append(&buf)?);
            keys.push((ranking.key(r.external_id.0, r.rank_signal), r.external_id.0));
            exts.push(r.external_id.0);
        }
        rec_writer.finish()?;
        doc_writer.finish()?;
        tok_counts.resize(vocab.len(), 0);
        let n = u32::try_from(rec_locs.len())
            .map_err(|_| corrupt(&runtime, "more than u32::MAX hidden records"))?;

        // The global ranking permutation: rank-space id = position in the
        // order sorted by (ranking key, external id) — the exact key the
        // RAM engine uses for `rank_pos`, so both backends agree on every
        // tie-break.
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_unstable_by_key(|&i| keys.get(i as usize).copied());
        drop(keys);
        let mut ins_to_rank = vec![0u32; n as usize];
        for (rank, &ins) in order.iter().enumerate() {
            if let Some(slot) = ins_to_rank.get_mut(ins as usize) {
                *slot = rank as u32;
            }
        }

        // Pass 2: postings over rank-space ids, built a token-range chunk
        // at a time. Each chunk re-streams the staging blob sequentially
        // and holds at most ~CHUNK_IDS ids in RAM; chunks are contiguous
        // ascending token ranges, so appending them in order keeps the
        // postings blob token-ordered.
        let post_path = runtime.file_path("hidden-postings");
        let mut post_writer = BlobWriter::create(&post_path, page_size)?;
        let mut post_locs: Vec<Locator> = Vec::with_capacity(vocab.len());
        let mut post_counts: Vec<u32> = Vec::with_capacity(vocab.len());
        let mut staging =
            BlobReader::open(&doc_path, staging_budget(&runtime), runtime.shared_stats())?;
        let mut chunk_lo = 0usize;
        let mut doc_buf: Vec<u8> = Vec::new();
        let mut encoded: Vec<u8> = Vec::new();
        while chunk_lo < vocab.len() {
            let mut chunk_hi = chunk_lo;
            let mut chunk_ids = 0usize;
            while chunk_hi < vocab.len() {
                let c = tok_counts.get(chunk_hi).copied().unwrap_or(0) as usize;
                if chunk_ids + c > CHUNK_IDS && chunk_hi > chunk_lo {
                    break;
                }
                chunk_ids += c;
                chunk_hi += 1;
            }
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); chunk_hi - chunk_lo];
            for (ins, &loc) in doc_locs.iter().enumerate() {
                staging.read(loc, &mut doc_buf)?;
                let mut pos = 0usize;
                let count = read_varint(&doc_buf, &mut pos)
                    .ok_or_else(|| corrupt(&runtime, "undecodable staged document"))?;
                let mut tok = 0u32;
                let rank = ins_to_rank.get(ins).copied().unwrap_or(0);
                for step in 0..count {
                    let gap = read_varint(&doc_buf, &mut pos)
                        .ok_or_else(|| corrupt(&runtime, "undecodable staged document"))?;
                    tok = if step == 0 { gap as u32 } else { tok + gap as u32 };
                    let t = tok as usize;
                    if t >= chunk_lo && t < chunk_hi {
                        if let Some(list) = lists.get_mut(t - chunk_lo) {
                            list.push(rank);
                        }
                    }
                }
            }
            for list in &mut lists {
                list.sort_unstable();
                encoded.clear();
                encode_postings(list, &mut encoded);
                post_counts.push(list.len() as u32);
                post_locs.push(post_writer.append(&encoded)?);
            }
            chunk_lo = chunk_hi;
        }
        post_writer.finish()?;
        drop(staging);
        drop(doc_locs);
        std::fs::remove_file(&doc_path)?;

        // Aux blob: the three fixed-width arrays, appended entry by entry
        // (blob offsets are contiguous, so entry i of a run lives at
        // `base + i × ENTRY`).
        let aux_path = runtime.file_path("hidden-aux");
        let mut aux_writer = BlobWriter::create(&aux_path, page_size)?;
        let mut rank_base = 0u64;
        let mut meta_base = 0u64;
        let mut ext_base = 0u64;
        for (i, &ins) in order.iter().enumerate() {
            let loc = aux_writer.append(&ins.to_le_bytes())?;
            if i == 0 {
                rank_base = loc.off;
            }
        }
        drop(order);
        let mut entry: Vec<u8> = Vec::with_capacity(META_ENTRY as usize);
        for (ins, loc) in rec_locs.iter().enumerate() {
            entry.clear();
            entry.extend_from_slice(&loc.off.to_le_bytes());
            entry.extend_from_slice(&loc.len.to_le_bytes());
            let rank = ins_to_rank.get(ins).copied().unwrap_or(0);
            entry.extend_from_slice(&rank.to_le_bytes());
            let loc = aux_writer.append(&entry)?;
            if ins == 0 {
                meta_base = loc.off;
            }
        }
        drop(rec_locs);
        drop(ins_to_rank);
        let mut ext_pairs: Vec<(u64, u32)> = exts
            .into_iter()
            .enumerate()
            .map(|(ins, ext)| (ext, ins as u32))
            .collect();
        ext_pairs.sort_unstable();
        for (i, &(ext, ins)) in ext_pairs.iter().enumerate() {
            entry.clear();
            entry.extend_from_slice(&ext.to_le_bytes());
            entry.extend_from_slice(&ins.to_le_bytes());
            let loc = aux_writer.append(&entry)?;
            if i == 0 {
                ext_base = loc.off;
            }
        }
        aux_writer.finish()?;
        drop(ext_pairs);

        let stats = runtime.shared_stats();
        let reader = Readers {
            records: BlobReader::open(&rec_path, record_budget(&runtime), Arc::clone(&stats))?,
            postings: BlobReader::open(&post_path, postings_budget(&runtime), Arc::clone(&stats))?,
            aux: BlobReader::open(&aux_path, aux_budget(&runtime), stats)?,
            scratch: Vec::new(),
            views: ViewCache::new(VIEW_CACHE_CAP),
        };
        Ok(Self {
            runtime,
            n,
            post_locs,
            post_counts,
            rank_base,
            meta_base,
            ext_base,
            reader: Mutex::new(reader),
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.n as usize
    }

    pub(crate) fn report(&self) -> StoreReport {
        self.runtime.report()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Readers> {
        self.reader.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Reads one fixed-width aux entry into the scratch buffer.
    fn aux_entry(r: &mut Readers, off: u64, len: u64) -> Result<()> {
        let loc = Locator {
            off,
            len: len as u32,
        };
        let mut out = std::mem::take(&mut r.scratch);
        let res = r.aux.read(loc, &mut out);
        r.scratch = out;
        res
    }

    /// Insertion id of the record ranked `rank`.
    fn rank_to_ins(&self, r: &mut Readers, rank: u32) -> Result<u32> {
        Self::aux_entry(r, self.rank_base + u64::from(rank) * RANK_ENTRY, RANK_ENTRY)?;
        le_u32(&r.scratch, 0).ok_or_else(short_read)
    }

    /// Record locator and rank of insertion id `ins`.
    fn meta_of(&self, r: &mut Readers, ins: u32) -> Result<(Locator, u32)> {
        Self::aux_entry(r, self.meta_base + u64::from(ins) * META_ENTRY, META_ENTRY)?;
        match (
            le_u64(&r.scratch, 0),
            le_u32(&r.scratch, 8),
            le_u32(&r.scratch, 12),
        ) {
            (Some(off), Some(len), Some(rank)) => Ok((Locator { off, len }, rank)),
            _ => Err(short_read()),
        }
    }

    /// Binary search of the sorted `(external, insertion)` array.
    fn lookup_external(&self, r: &mut Readers, ext: u64) -> Result<Option<u32>> {
        let (mut lo, mut hi) = (0u64, u64::from(self.n));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            Self::aux_entry(r, self.ext_base + mid * EXT_ENTRY, EXT_ENTRY)?;
            let entry_ext = le_u64(&r.scratch, 0).ok_or_else(short_read)?;
            match entry_ext.cmp(&ext) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(le_u32(&r.scratch, 8)),
            }
        }
        Ok(None)
    }

    /// Decodes the full record at insertion id `ins`.
    fn record_of(&self, r: &mut Readers, ins: u32) -> Result<HiddenRecord> {
        let (loc, _) = self.meta_of(r, ins)?;
        let mut out = std::mem::take(&mut r.scratch);
        let res = r.records.read(loc, &mut out);
        r.scratch = out;
        res?;
        decode_record(&r.scratch).ok_or_else(|| corrupt(&self.runtime, "undecodable record"))
    }

    /// The interface view of insertion id `ins`, through the bounded
    /// lazy cache.
    fn view_of(&self, r: &mut Readers, ins: u32) -> Result<Retrieved> {
        if let Some(v) = r.views.get(ins) {
            return Ok(v);
        }
        let rec = self.record_of(r, ins)?;
        let view = Retrieved::new(
            rec.external_id,
            rec.searchable.fields().to_vec(),
            rec.payload,
        );
        r.views.insert(ins, view.clone());
        Ok(view)
    }

    /// The page for a list of rank-space ids (already in final order).
    fn page_of_ranks(&self, r: &mut Readers, ranks: &[u32]) -> Result<Vec<Retrieved>> {
        let mut page = Vec::with_capacity(ranks.len());
        for &rank in ranks {
            let ins = self.rank_to_ins(r, rank)?;
            page.push(self.view_of(r, ins)?);
        }
        Ok(page)
    }

    /// Rarest-first conjunctive intersection over rank-space postings.
    /// Ids come out ascending — i.e. best-ranked first — so `limit`
    /// truncates to the top-k without ever visiting a non-winning record.
    fn intersect(
        &self,
        r: &mut Readers,
        tokens: &[TokenId],
        limit: Option<usize>,
    ) -> Result<Vec<u32>> {
        let mut metas: Vec<(u32, u32, Locator)> = Vec::with_capacity(tokens.len());
        for t in tokens {
            let count = self.post_counts.get(t.index()).copied().unwrap_or(0);
            if count == 0 {
                return Ok(Vec::new());
            }
            let loc = self
                .post_locs
                .get(t.index())
                .copied()
                .ok_or_else(|| corrupt(&self.runtime, "token beyond posting directory"))?;
            metas.push((count, t.0, loc));
        }
        metas.sort_unstable_by_key(|&(count, tok, _)| (count, tok));
        let Some((&(_, _, seed_loc), rest)) = metas.split_first() else {
            return Ok(Vec::new());
        };
        let mut seed_bytes = Vec::new();
        r.postings.read(seed_loc, &mut seed_bytes)?;
        let mut seed: Vec<u32> = Vec::new();
        decode_postings_into(&seed_bytes, &mut seed)
            .ok_or_else(|| corrupt(&self.runtime, "undecodable posting list"))?;
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(rest.len());
        for &(_, _, loc) in rest {
            let mut b = Vec::new();
            r.postings.read(loc, &mut b)?;
            bufs.push(b);
        }
        let mut cursors = Vec::with_capacity(bufs.len());
        for b in &bufs {
            cursors.push(
                PostingCursor::new(b)
                    .ok_or_else(|| corrupt(&self.runtime, "undecodable posting list"))?,
            );
        }
        let mut out = Vec::new();
        'cand: for &id in &seed {
            for c in cursors.iter_mut() {
                match c.advance_to(id) {
                    Some(hit) if hit == id => {}
                    Some(_) => continue 'cand,
                    None => break 'cand,
                }
            }
            out.push(id);
            if limit.is_some_and(|k| out.len() >= k) {
                break;
            }
        }
        Ok(out)
    }

    /// The conjunctive top-`k` page.
    pub(crate) fn conjunctive_page(&self, tokens: &[TokenId], k: usize) -> Vec<Retrieved> {
        let mut r = self.lock();
        let ranks = expect_store(
            self.intersect(&mut r, tokens, Some(k)),
            "hidden conjunctive search",
        );
        expect_store(self.page_of_ranks(&mut r, &ranks), "hidden page read")
    }

    /// `|q(H)|` under conjunctive semantics (no early stop).
    pub(crate) fn frequency(&self, tokens: &[TokenId]) -> usize {
        let mut r = self.lock();
        expect_store(self.intersect(&mut r, tokens, None), "hidden frequency scan").len()
    }

    /// The disjunctive top-`k` page: full matches first, then partials,
    /// both ordered by rank — identical keys to the RAM engine because a
    /// rank-space id *is* the rank position.
    pub(crate) fn disjunctive_page(&self, tokens: &[TokenId], k: usize) -> Vec<Retrieved> {
        let mut r = self.lock();
        let mut hits: HashMap<u32, u32> = HashMap::new();
        let mut bytes = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        for t in tokens {
            if self.post_counts.get(t.index()).copied().unwrap_or(0) == 0 {
                continue;
            }
            let Some(loc) = self.post_locs.get(t.index()).copied() else {
                continue;
            };
            expect_store(r.postings.read(loc, &mut bytes), "hidden postings read");
            expect_store(
                decode_postings_into(&bytes, &mut ids)
                    .ok_or_else(|| corrupt(&self.runtime, "undecodable posting list")),
                "hidden postings decode",
            );
            for &id in &ids {
                *hits.entry(id).or_insert(0) += 1;
            }
        }
        let n_query = tokens.len() as u32;
        let mut scored: Vec<(u32, bool)> = hits
            .into_iter()
            .map(|(rank, m)| (rank, m == n_query))
            .collect();
        scored.sort_unstable_by_key(|&(rank, full)| (std::cmp::Reverse(full), rank));
        scored.truncate(k);
        let ranks: Vec<u32> = scored.into_iter().map(|(rank, _)| rank).collect();
        expect_store(self.page_of_ranks(&mut r, &ranks), "hidden page read")
    }

    /// Ground-truth record access by external id.
    pub(crate) fn get(&self, id: ExternalId) -> Option<HiddenRecord> {
        let mut r = self.lock();
        let ins = expect_store(self.lookup_external(&mut r, id.0), "hidden external lookup")?;
        Some(expect_store(self.record_of(&mut r, ins), "hidden record read"))
    }

    /// The interface view by external id.
    pub(crate) fn retrieved_of(&self, id: ExternalId) -> Option<Retrieved> {
        let mut r = self.lock();
        let ins = expect_store(self.lookup_external(&mut r, id.0), "hidden external lookup")?;
        Some(expect_store(self.view_of(&mut r, ins), "hidden view read"))
    }

    /// The full record at insertion position `ins` (iteration support).
    pub(crate) fn record_at(&self, ins: usize) -> HiddenRecord {
        let mut r = self.lock();
        expect_store(self.record_of(&mut r, ins as u32), "hidden record read")
    }

    /// Streams every record's interface view in insertion order without
    /// materializing the set — sequential blob reads, bypassing the view
    /// cache so a full sweep cannot evict the working set.
    pub(crate) fn for_each_retrieved(&self, mut f: impl FnMut(Retrieved)) {
        let mut r = self.lock();
        for ins in 0..self.n {
            let rec = expect_store(self.record_of(&mut r, ins), "hidden record sweep");
            f(Retrieved::new(
                rec.external_id,
                rec.searchable.fields().to_vec(),
                rec.payload,
            ));
        }
    }
}

/// Budget split of the runtime's total page-cache budget. The splits sum
/// to strictly less than the configured total so transient build-time
/// readers and over-budget span pins stay under `cache_pages` overall.
fn postings_budget(rt: &StoreRuntime) -> usize {
    (rt.config().cache_pages / 2).max(2)
}

fn record_budget(rt: &StoreRuntime) -> usize {
    (rt.config().cache_pages / 4).max(2)
}

fn aux_budget(rt: &StoreRuntime) -> usize {
    (rt.config().cache_pages / 16).max(2)
}

fn staging_budget(rt: &StoreRuntime) -> usize {
    (rt.config().cache_pages / 16).max(2)
}
