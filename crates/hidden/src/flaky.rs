//! Deterministic fault injection for search interfaces.
//!
//! Real hidden-database APIs fail: Yelp throttles past its daily quota,
//! backends drop connections, load balancers return 5xx. A crawler that
//! cannot survive a transient failure wastes whatever budget it already
//! spent. [`FlakyInterface`] wraps any [`SearchInterface`] and injects
//! [`SearchError::Transient`] / [`SearchError::RateLimited`] failures from
//! a seeded generator, so robustness ablations are reproducible and every
//! crawler can be tested under the same failure trace.
//!
//! Fault decisions are keyed, not sequenced: each draw is a stateless
//! hash of `(seed, query index, attempt)`, where the query index comes
//! from the driver via [`SearchInterface::begin_query`] and the attempt
//! counter distinguishes retries of the same query. An injected failure
//! therefore belongs to *the query*, independent of when its call
//! happens — the property that keeps failure traces byte-identical
//! between the sequential and pipelined crawl drivers, whatever order
//! in-flight pages complete in. Callers that never call `begin_query`
//! fall back to an auto-incrementing index (one per search call), which
//! is the old call-order behaviour.
//!
//! Failures are injected *before* the inner interface is consulted: a
//! failed attempt neither consumes the inner [`Metered`](crate::Metered)
//! budget nor appears in its audit log — exactly like a request that never
//! reached the backend.

use crate::interface::{SearchError, SearchInterface, SearchPage};

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. Good enough for
/// fault injection; deliberately not `rand` so this crate stays leaf-level.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault-injection wrapper: each call fails with the configured
/// probability (as [`SearchError::Transient`]), and optionally every `n`-th
/// *served* call is throttled (as [`SearchError::RateLimited`]).
#[derive(Debug)]
pub struct FlakyInterface<I> {
    inner: I,
    transient_rate: f64,
    rate_limit_every: Option<usize>,
    seed: u64,
    /// The in-progress query: `(index, next attempt)`. Set by
    /// [`SearchInterface::begin_query`]; each draw consumes one attempt.
    current: Option<(usize, u32)>,
    /// Fallback index for callers that never call `begin_query`: each
    /// call is its own query, first attempt.
    auto_index: usize,
    served: usize,
    transient_failures: usize,
    rate_limit_failures: usize,
}

impl<I: SearchInterface> FlakyInterface<I> {
    /// Wraps `inner`; each search fails transiently with probability
    /// `transient_rate` (clamped to `[0, 1]`), deterministically per
    /// `(seed, query index, attempt)`.
    pub fn new(inner: I, transient_rate: f64, seed: u64) -> Self {
        Self {
            inner,
            transient_rate: transient_rate.clamp(0.0, 1.0),
            rate_limit_every: None,
            seed,
            current: None,
            auto_index: 0,
            served: 0,
            transient_failures: 0,
            rate_limit_failures: 0,
        }
    }

    /// Additionally throttle every `n`-th otherwise-served call with
    /// [`SearchError::RateLimited`] (`n ≥ 1`).
    pub fn with_rate_limit_every(mut self, n: usize) -> Self {
        assert!(n >= 1, "rate-limit period must be at least 1");
        self.rate_limit_every = Some(n);
        self
    }

    /// Number of injected transient failures so far.
    pub fn transient_failures(&self) -> usize {
        self.transient_failures
    }

    /// Number of injected rate-limit failures so far.
    pub fn rate_limit_failures(&self) -> usize {
        self.rate_limit_failures
    }

    /// Total injected failures of both kinds.
    pub fn failures_injected(&self) -> usize {
        self.transient_failures + self.rate_limit_failures
    }

    /// Shared access to the wrapped interface (e.g. to read a
    /// [`Metered`](crate::Metered) audit log after the crawl).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps the inner interface.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// A uniform draw in `[0, 1]` keyed by `(seed, query index, attempt)`.
    /// Stateless per key: reordering the *calls* cannot move a failure
    /// from one query to another.
    fn fault_draw(&mut self) -> f64 {
        let (index, attempt) = match &mut self.current {
            Some((index, attempt)) => {
                let key = (*index, *attempt);
                *attempt += 1;
                key
            }
            None => {
                let index = self.auto_index;
                self.auto_index += 1;
                (index, 0)
            }
        };
        // Avoid the all-zeros weak state without perturbing other seeds;
        // the odd multipliers spread index/attempt across the word before
        // SplitMix64's finalizer mixes them.
        let mut state = self.seed
            ^ 0x6A09_E667_F3BC_C909
            ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        splitmix64(&mut state) as f64 / u64::MAX as f64
    }

    /// The fault gate shared by `search` and `commit_prefetched`: one
    /// keyed draw, then the served-count throttle. Both entry points burn
    /// exactly the same draws and counters, so a pipelined commit is
    /// indistinguishable from the search it replaces.
    fn inject_fault(&mut self) -> Result<(), SearchError> {
        let draw = self.fault_draw();
        if draw < self.transient_rate {
            self.transient_failures += 1;
            return Err(SearchError::Transient);
        }
        if let Some(n) = self.rate_limit_every {
            if (self.served + 1).is_multiple_of(n) {
                self.served += 1;
                self.rate_limit_failures += 1;
                return Err(SearchError::RateLimited);
            }
        }
        self.served += 1;
        Ok(())
    }
}

impl<I: SearchInterface> SearchInterface for FlakyInterface<I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        self.inject_fault()?;
        self.inner.search(keywords)
    }

    fn queries_issued(&self) -> usize {
        // Injected failures never reached the backend, so they are not
        // issued queries; delegate to the wrapped meter.
        self.inner.queries_issued()
    }

    fn cache_stats(&self) -> Option<crate::interface::CacheStats> {
        self.inner.cache_stats()
    }

    fn record_cache_hit(
        &mut self,
        keywords: &[String],
        results: usize,
        charge: bool,
    ) -> Result<(), SearchError> {
        // A cache hit above this wrapper bypasses fault injection entirely
        // (the request never goes out); pass the notification inward so a
        // wrapped meter can audit/charge it.
        self.inner.record_cache_hit(keywords, results, charge)
    }

    fn begin_query(&mut self, index: usize) {
        self.current = Some((index, 0));
        self.inner.begin_query(index);
    }

    fn prefetch_handle<'h>(&self) -> Option<&'h crate::engine::HiddenDb>
    where
        Self: 'h,
    {
        self.inner.prefetch_handle()
    }

    fn commit_prefetched(
        &mut self,
        keywords: &[String],
        prefetched: &SearchPage,
    ) -> Result<SearchPage, SearchError> {
        self.inject_fault()?;
        self.inner.commit_prefetched(keywords, prefetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HiddenDb, HiddenDbBuilder};
    use crate::interface::Metered;
    use crate::record::HiddenRecord;
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai house"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["steak house"]), vec![], 2.0),
            ])
            .build()
    }

    #[test]
    fn zero_rate_never_fails() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 0.0, 7);
        for _ in 0..50 {
            assert!(f.search(&["house".into()]).is_ok());
        }
        assert_eq!(f.failures_injected(), 0);
    }

    #[test]
    fn unit_rate_always_fails_transiently() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 1.0, 7);
        for _ in 0..10 {
            assert_eq!(f.search(&["house".into()]), Err(SearchError::Transient));
        }
        assert_eq!(f.transient_failures(), 10);
    }

    #[test]
    fn failure_trace_is_deterministic_per_seed() {
        let db = tiny_db();
        let trace = |seed: u64| -> Vec<bool> {
            let mut f = FlakyInterface::new(&db, 0.3, seed);
            (0..40).map(|_| f.search(&["house".into()]).is_ok()).collect()
        };
        assert_eq!(trace(3), trace(3));
        assert_ne!(trace(3), trace(4), "different seeds give different traces");
        let failures = trace(3).iter().filter(|ok| !**ok).count();
        assert!((4..=20).contains(&failures), "≈30% of 40: got {failures}");
    }

    #[test]
    fn failed_attempts_do_not_consume_metered_budget() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(Metered::new(&db, Some(5)), 0.5, 11);
        let mut ok = 0;
        for _ in 0..20 {
            if f.search(&["house".into()]).is_ok() {
                ok += 1;
            }
        }
        // Only served calls count against the wrapped meter.
        assert_eq!(f.queries_issued(), ok);
        assert!(f.queries_issued() <= 5);
        assert!(f.failures_injected() > 0);
    }

    #[test]
    fn rate_limit_every_throttles_periodically() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 0.0, 0).with_rate_limit_every(3);
        let results: Vec<bool> =
            (0..9).map(|_| f.search(&["house".into()]).is_ok()).collect();
        assert_eq!(results, vec![true, true, false, true, true, false, true, true, false]);
        assert_eq!(f.rate_limit_failures(), 3);
    }

    /// The satellite regression: a fault decision belongs to the query
    /// *index*, so serving queries in a different order (as a pipelined
    /// driver's workers may complete them) cannot move a failure from one
    /// query to another.
    #[test]
    fn fault_decisions_key_on_query_index_not_call_order() {
        let db = tiny_db();
        let kw = vec!["house".to_string()];
        // Find a seed whose 8-query trace is mixed, so the assertion
        // below distinguishes per-index keying from "always fails".
        let outcome_by_index = |seed: u64, order: &[usize]| -> Vec<(usize, bool)> {
            let mut f = FlakyInterface::new(&db, 0.5, seed);
            let mut out: Vec<(usize, bool)> = order
                .iter()
                .map(|&i| {
                    f.begin_query(i);
                    (i, f.search(&kw).is_ok())
                })
                .collect();
            out.sort_unstable();
            out
        };
        let forward: Vec<usize> = (0..8).collect();
        let shuffled = [5usize, 0, 7, 2, 6, 1, 3, 4];
        let mut checked_mixed = false;
        for seed in [3u64, 11, 29] {
            let a = outcome_by_index(seed, &forward);
            let b = outcome_by_index(seed, &shuffled);
            assert_eq!(a, b, "seed {seed}: per-index outcomes moved with call order");
            checked_mixed |= a.iter().any(|(_, ok)| *ok) && a.iter().any(|(_, ok)| !*ok);
        }
        assert!(checked_mixed, "every trace degenerate — assertions prove nothing");
    }

    /// Retries of one query draw distinct attempts, deterministically:
    /// re-running the same (index, attempt) schedule reproduces the same
    /// outcomes, and the attempt axis actually varies the draw.
    #[test]
    fn retry_attempts_draw_distinct_deterministic_faults() {
        let db = tiny_db();
        let kw = vec!["house".to_string()];
        let attempts = |seed: u64| -> Vec<bool> {
            let mut f = FlakyInterface::new(&db, 0.5, seed);
            f.begin_query(0);
            (0..16).map(|_| f.search(&kw).is_ok()).collect()
        };
        for seed in 0..20u64 {
            assert_eq!(attempts(seed), attempts(seed));
        }
        // Across seeds, some schedule mixes successes and failures — the
        // attempt counter is reaching the draw.
        assert!(
            (0..20u64).any(|s| {
                let t = attempts(s);
                t.iter().any(|ok| *ok) && t.iter().any(|ok| !*ok)
            }),
            "attempt axis never varied a draw"
        );
    }

    /// `commit_prefetched` burns exactly the draws and throttle slots
    /// `search` would: a run that commits prefetched pages sees the same
    /// failure trace as one that searches.
    #[test]
    fn commit_prefetched_replays_the_search_fault_trace() {
        let db = tiny_db();
        let kw = vec!["house".to_string()];
        let page = SearchPage { records: HiddenDb::search(&db, &kw) };
        let mut searched = FlakyInterface::new(&db, 0.4, 17).with_rate_limit_every(4);
        let mut committed = FlakyInterface::new(&db, 0.4, 17).with_rate_limit_every(4);
        for i in 0..24 {
            searched.begin_query(i);
            committed.begin_query(i);
            assert_eq!(
                searched.search(&kw),
                committed.commit_prefetched(&kw, &page),
                "query {i} diverged"
            );
        }
        assert_eq!(searched.transient_failures(), committed.transient_failures());
        assert_eq!(searched.rate_limit_failures(), committed.rate_limit_failures());
    }
}
