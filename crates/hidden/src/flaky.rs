//! Deterministic fault injection for search interfaces.
//!
//! Real hidden-database APIs fail: Yelp throttles past its daily quota,
//! backends drop connections, load balancers return 5xx. A crawler that
//! cannot survive a transient failure wastes whatever budget it already
//! spent. [`FlakyInterface`] wraps any [`SearchInterface`] and injects
//! [`SearchError::Transient`] / [`SearchError::RateLimited`] failures from
//! a seeded generator, so robustness ablations are reproducible and every
//! crawler can be tested under the same failure trace.
//!
//! Failures are injected *before* the inner interface is consulted: a
//! failed attempt neither consumes the inner [`Metered`](crate::Metered)
//! budget nor appears in its audit log — exactly like a request that never
//! reached the backend.

use crate::interface::{SearchError, SearchInterface, SearchPage};

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. Good enough for
/// fault injection; deliberately not `rand` so this crate stays leaf-level.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault-injection wrapper: each call fails with the configured
/// probability (as [`SearchError::Transient`]), and optionally every `n`-th
/// *served* call is throttled (as [`SearchError::RateLimited`]).
#[derive(Debug)]
pub struct FlakyInterface<I> {
    inner: I,
    transient_rate: f64,
    rate_limit_every: Option<usize>,
    state: u64,
    served: usize,
    transient_failures: usize,
    rate_limit_failures: usize,
}

impl<I: SearchInterface> FlakyInterface<I> {
    /// Wraps `inner`; each search fails transiently with probability
    /// `transient_rate` (clamped to `[0, 1]`), deterministically per seed.
    pub fn new(inner: I, transient_rate: f64, seed: u64) -> Self {
        Self {
            inner,
            transient_rate: transient_rate.clamp(0.0, 1.0),
            rate_limit_every: None,
            // Avoid the all-zeros weak state without perturbing other seeds.
            state: seed ^ 0x6A09_E667_F3BC_C909,
            served: 0,
            transient_failures: 0,
            rate_limit_failures: 0,
        }
    }

    /// Additionally throttle every `n`-th otherwise-served call with
    /// [`SearchError::RateLimited`] (`n ≥ 1`).
    pub fn with_rate_limit_every(mut self, n: usize) -> Self {
        assert!(n >= 1, "rate-limit period must be at least 1");
        self.rate_limit_every = Some(n);
        self
    }

    /// Number of injected transient failures so far.
    pub fn transient_failures(&self) -> usize {
        self.transient_failures
    }

    /// Number of injected rate-limit failures so far.
    pub fn rate_limit_failures(&self) -> usize {
        self.rate_limit_failures
    }

    /// Total injected failures of both kinds.
    pub fn failures_injected(&self) -> usize {
        self.transient_failures + self.rate_limit_failures
    }

    /// Shared access to the wrapped interface (e.g. to read a
    /// [`Metered`](crate::Metered) audit log after the crawl).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps the inner interface.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: SearchInterface> SearchInterface for FlakyInterface<I> {
    fn k(&self) -> usize {
        self.inner.k()
    }

    fn search(&mut self, keywords: &[String]) -> Result<SearchPage, SearchError> {
        let draw = splitmix64(&mut self.state) as f64 / u64::MAX as f64;
        if draw < self.transient_rate {
            self.transient_failures += 1;
            return Err(SearchError::Transient);
        }
        if let Some(n) = self.rate_limit_every {
            if (self.served + 1).is_multiple_of(n) {
                self.served += 1;
                self.rate_limit_failures += 1;
                return Err(SearchError::RateLimited);
            }
        }
        self.served += 1;
        self.inner.search(keywords)
    }

    fn queries_issued(&self) -> usize {
        // Injected failures never reached the backend, so they are not
        // issued queries; delegate to the wrapped meter.
        self.inner.queries_issued()
    }

    fn cache_stats(&self) -> Option<crate::interface::CacheStats> {
        self.inner.cache_stats()
    }

    fn record_cache_hit(
        &mut self,
        keywords: &[String],
        results: usize,
        charge: bool,
    ) -> Result<(), SearchError> {
        // A cache hit above this wrapper bypasses fault injection entirely
        // (the request never goes out); pass the notification inward so a
        // wrapped meter can audit/charge it.
        self.inner.record_cache_hit(keywords, results, charge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HiddenDb, HiddenDbBuilder};
    use crate::interface::Metered;
    use crate::record::HiddenRecord;
    use smartcrawl_text::Record;

    fn tiny_db() -> HiddenDb {
        HiddenDbBuilder::new()
            .k(2)
            .records([
                HiddenRecord::new(0, Record::from(["thai house"]), vec![], 1.0),
                HiddenRecord::new(1, Record::from(["steak house"]), vec![], 2.0),
            ])
            .build()
    }

    #[test]
    fn zero_rate_never_fails() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 0.0, 7);
        for _ in 0..50 {
            assert!(f.search(&["house".into()]).is_ok());
        }
        assert_eq!(f.failures_injected(), 0);
    }

    #[test]
    fn unit_rate_always_fails_transiently() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 1.0, 7);
        for _ in 0..10 {
            assert_eq!(f.search(&["house".into()]), Err(SearchError::Transient));
        }
        assert_eq!(f.transient_failures(), 10);
    }

    #[test]
    fn failure_trace_is_deterministic_per_seed() {
        let db = tiny_db();
        let trace = |seed: u64| -> Vec<bool> {
            let mut f = FlakyInterface::new(&db, 0.3, seed);
            (0..40).map(|_| f.search(&["house".into()]).is_ok()).collect()
        };
        assert_eq!(trace(3), trace(3));
        assert_ne!(trace(3), trace(4), "different seeds give different traces");
        let failures = trace(3).iter().filter(|ok| !**ok).count();
        assert!((4..=20).contains(&failures), "≈30% of 40: got {failures}");
    }

    #[test]
    fn failed_attempts_do_not_consume_metered_budget() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(Metered::new(&db, Some(5)), 0.5, 11);
        let mut ok = 0;
        for _ in 0..20 {
            if f.search(&["house".into()]).is_ok() {
                ok += 1;
            }
        }
        // Only served calls count against the wrapped meter.
        assert_eq!(f.queries_issued(), ok);
        assert!(f.queries_issued() <= 5);
        assert!(f.failures_injected() > 0);
    }

    #[test]
    fn rate_limit_every_throttles_periodically() {
        let db = tiny_db();
        let mut f = FlakyInterface::new(&db, 0.0, 0).with_rate_limit_every(3);
        let results: Vec<bool> =
            (0..9).map(|_| f.search(&["house".into()]).is_ok()).collect();
        assert_eq!(results, vec![true, true, false, true, true, false, true, true, false]);
        assert_eq!(f.rate_limit_failures(), 3);
    }
}
