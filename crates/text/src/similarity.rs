//! Similarity measures for fuzzy matching (paper §6.1).
//!
//! The paper performs a similarity join between `q(D)` and the returned
//! top-k page, with Jaccard similarity at threshold 0.9 as the running
//! choice. We provide Jaccard, Dice, and overlap coefficients on token-set
//! documents, plus Levenshtein distance on raw strings for diagnostics.

use crate::document::Document;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two documents.
///
/// Two empty documents are defined to have similarity 1.0 (they are equal).
pub fn jaccard(a: &Document, b: &Document) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
pub fn dice(a: &Document, b: &Document) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * a.intersection_size(b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap(a: &Document, b: &Document) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    a.intersection_size(b) as f64 / a.len().min(b.len()) as f64
}

/// Levenshtein edit distance between two strings (character-level).
///
/// Classic two-row dynamic program: O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::TokenId;

    fn doc(ids: &[u32]) -> Document {
        Document::from_tokens(ids.iter().map(|&i| TokenId(i)).collect())
    }

    #[test]
    fn jaccard_basic_cases() {
        assert_eq!(jaccard(&doc(&[1, 2]), &doc(&[1, 2])), 1.0);
        assert_eq!(jaccard(&doc(&[1, 2]), &doc(&[3, 4])), 0.0);
        assert!((jaccard(&doc(&[1, 2, 3]), &doc(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&Document::empty(), &Document::empty()), 1.0);
        assert_eq!(jaccard(&Document::empty(), &doc(&[1])), 0.0);
    }

    #[test]
    fn dice_basic_cases() {
        assert_eq!(dice(&doc(&[1]), &doc(&[1])), 1.0);
        assert!((dice(&doc(&[1, 2, 3]), &doc(&[2, 3, 4])) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(dice(&Document::empty(), &Document::empty()), 1.0);
    }

    #[test]
    fn overlap_basic_cases() {
        // Subset has overlap 1.0 regardless of size difference.
        assert_eq!(overlap(&doc(&[1, 2]), &doc(&[1, 2, 3, 4, 5])), 1.0);
        assert_eq!(overlap(&doc(&[1]), &doc(&[2])), 0.0);
        assert_eq!(overlap(&Document::empty(), &Document::empty()), 1.0);
        assert_eq!(overlap(&Document::empty(), &doc(&[1])), 0.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("restaurant", "rest"), 6);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("flaw", "lawn"), levenshtein("lawn", "flaw"));
    }
}
