//! String interning: keywords to dense integer [`TokenId`]s.
//!
//! Every component of the system (local-database index, hidden-database
//! sample index, query pool, frequent-pattern miner) manipulates keywords as
//! integers. Interning is deterministic: ids are assigned in first-seen
//! order, so a fixed insertion order yields a fixed id assignment, which
//! keeps every experiment reproducible.

use std::collections::HashMap;

/// A dense identifier for an interned keyword.
///
/// `TokenId`s are only meaningful relative to the [`Vocabulary`] that
/// produced them. They are `u32` because realistic vocabularies (DBLP-scale)
/// are far below 2³² distinct keywords and the smaller width halves posting
/// list memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deterministic string interner.
///
/// # Examples
///
/// ```
/// use smartcrawl_text::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let thai = vocab.intern("thai");
/// assert_eq!(vocab.intern("thai"), thai);
/// assert_eq!(vocab.word(thai), "thai");
/// assert_eq!(vocab.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    ids: HashMap<String, TokenId>,
    words: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vocabulary with room for `capacity` keywords.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ids: HashMap::with_capacity(capacity),
            words: Vec::with_capacity(capacity),
        }
    }

    /// Interns `word`, returning its id. Idempotent.
    pub fn intern(&mut self, word: &str) -> TokenId {
        if let Some(&id) = self.ids.get(word) {
            return id;
        }
        // lint:allow(panic-freedom) a vocabulary overflowing u32 (>4Gi distinct words) is unreachable for bounded corpora
        let id = TokenId(u32::try_from(self.words.len()).expect("vocabulary overflow"));
        self.ids.insert(word.to_owned(), id);
        self.words.push(word.to_owned());
        id
    }

    /// Looks up an already-interned word without inserting.
    pub fn get(&self, word: &str) -> Option<TokenId> {
        self.ids.get(word).copied()
    }

    /// The keyword behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn word(&self, id: TokenId) -> &str {
        // lint:allow(panic-freedom) documented contract above: `id` must come from this vocabulary
        &self.words[id.index()]
    }

    /// Number of distinct interned keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no keyword has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (TokenId(i as u32), w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_first_seen_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TokenId(0));
        assert_eq!(v.intern("b"), TokenId(1));
        assert_eq!(v.intern("a"), TokenId(0));
        assert_eq!(v.intern("c"), TokenId(2));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn get_does_not_insert() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get("x"), None);
        let id = v.intern("x");
        assert_eq!(v.get("x"), Some(id));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn word_round_trips() {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = ["noodle", "house", "thai"]
            .iter()
            .map(|w| v.intern(w))
            .collect();
        assert_eq!(v.word(ids[0]), "noodle");
        assert_eq!(v.word(ids[1]), "house");
        assert_eq!(v.word(ids[2]), "thai");
    }

    #[test]
    fn iter_yields_id_order() {
        let mut v = Vocabulary::new();
        v.intern("b");
        v.intern("a");
        let pairs: Vec<_> = v.iter().map(|(i, w)| (i.0, w.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "b".to_owned()), (1, "a".to_owned())]);
    }

    #[test]
    fn empty_vocabulary_reports_empty() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
