//! Token-set documents (paper Definition 1).
//!
//! A document is the *set* of distinct keywords of a record. We store it as
//! a sorted `Vec<TokenId>`: containment is a binary search, subset tests and
//! intersections are linear merges, and equality of documents is plain
//! `Vec` equality — which makes "exact matching" (Assumption 3:
//! `document(d) = document(h)`) a cheap comparison.

use crate::vocab::TokenId;

/// A sorted, deduplicated set of tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Document {
    tokens: Vec<TokenId>,
}

impl Document {
    /// Builds a document from an arbitrary token list (sorts + dedups).
    pub fn from_tokens(mut tokens: Vec<TokenId>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        Self { tokens }
    }

    /// Builds a document from tokens already sorted and deduplicated.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(tokens: Vec<TokenId>) -> Self {
        debug_assert!(tokens.windows(2).all(|w| w[0] < w[1]), "tokens must be strictly sorted");
        Self { tokens }
    }

    /// The empty document.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of distinct tokens (`|d|` in the paper).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The sorted token slice.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Whether the document contains `token`.
    pub fn contains(&self, token: TokenId) -> bool {
        self.tokens.binary_search(&token).is_ok()
    }

    /// Whether the document contains *all* of `query` — i.e. whether the
    /// record satisfies the conjunctive keyword query (Definition 1).
    ///
    /// `query` must be sorted (as produced by [`Document::tokens`] or the
    /// query types built on top of it); this lets us do a linear merge scan.
    pub fn contains_all(&self, query: &[TokenId]) -> bool {
        debug_assert!(query.windows(2).all(|w| w[0] < w[1]));
        if query.len() > self.tokens.len() {
            return false;
        }
        let mut pos = 0usize;
        for &q in query {
            match self.tokens[pos..].binary_search(&q) {
                Ok(i) => pos += i + 1,
                Err(_) => return false,
            }
        }
        true
    }

    /// Size of the intersection with another document.
    pub fn intersection_size(&self, other: &Document) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.tokens, &other.tokens);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with another document.
    pub fn union_size(&self, other: &Document) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Iterates over the tokens in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.tokens.iter().copied()
    }
}

impl FromIterator<TokenId> for Document {
    fn from_iter<I: IntoIterator<Item = TokenId>>(iter: I) -> Self {
        Self::from_tokens(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> Document {
        Document::from_tokens(ids.iter().map(|&i| TokenId(i)).collect())
    }

    #[test]
    fn from_tokens_sorts_and_dedups() {
        let d = doc(&[5, 1, 3, 1, 5]);
        assert_eq!(d.tokens(), &[TokenId(1), TokenId(3), TokenId(5)]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn contains_and_contains_all() {
        let d = doc(&[1, 3, 5, 9]);
        assert!(d.contains(TokenId(3)));
        assert!(!d.contains(TokenId(4)));
        assert!(d.contains_all(&[TokenId(1), TokenId(9)]));
        assert!(d.contains_all(&[]));
        assert!(!d.contains_all(&[TokenId(1), TokenId(4)]));
        // Query longer than document can never match.
        assert!(!d.contains_all(&[TokenId(1), TokenId(3), TokenId(5), TokenId(9), TokenId(10)]));
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = doc(&[1, 2, 3, 4]);
        let b = doc(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert_eq!(a.intersection_size(&Document::empty()), 0);
        assert_eq!(a.union_size(&Document::empty()), 4);
    }

    #[test]
    fn equality_is_set_equality() {
        assert_eq!(doc(&[2, 1, 1]), doc(&[1, 2]));
        assert_ne!(doc(&[1, 2]), doc(&[1, 2, 3]));
    }

    #[test]
    fn from_iterator_collects() {
        let d: Document = [TokenId(4), TokenId(2), TokenId(4)].into_iter().collect();
        assert_eq!(d.tokens(), &[TokenId(2), TokenId(4)]);
    }
}
