//! Text substrate for the SmartCrawl reproduction.
//!
//! The paper (Definition 1) models every record — local or hidden — as a
//! *document*: the set of distinct keywords obtained by concatenating all of
//! the record's attributes. A keyword query is likewise a set of keywords,
//! and a record *satisfies* a query iff its document contains every query
//! keyword (stop words excluded).
//!
//! This crate provides exactly that model:
//!
//! * [`Vocabulary`] — a deterministic string interner mapping keywords to
//!   dense [`TokenId`]s so the rest of the system can work on integers.
//! * [`Tokenizer`] — normalization (lowercasing, alphanumeric splitting,
//!   stop-word removal) shared by the local database, the hidden database
//!   simulator, and the crawler.
//! * [`Document`] — a sorted, deduplicated token set with fast containment
//!   and intersection operations.
//! * [`Record`] — an attribute-tuple wrapper whose document is the
//!   concatenation of its fields.
//! * [`similarity`] — Jaccard/Dice/overlap coefficients and Levenshtein
//!   distance, used by the fuzzy-matching layer (paper §6.1).

pub mod document;
pub mod record;
pub mod similarity;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use document::Document;
pub use record::{Record, RecordId};
pub use tokenizer::Tokenizer;
pub use vocab::{TokenId, Vocabulary};
