//! English stop words.
//!
//! The paper's conjunctive-keyword-search definition explicitly excludes
//! stop words from query keywords ("we do not consider stop words as query
//! keywords", §2). The simulated DBLP search engine likewise removes stop
//! words before indexing (§7.1.1). We use a compact list covering the
//! function words that actually occur in publication titles and business
//! names; domain tokens are never stop words.

/// The built-in English stop-word list, lowercase, sorted.
pub const STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "an", "and", "any", "are", "as", "at", "be", "because",
    "been", "before", "being", "between", "both", "but", "by", "can", "could", "did", "do", "does",
    "doing", "down", "during", "each", "few", "for", "from", "further", "had", "has", "have",
    "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into", "is",
    "it", "its", "itself", "just", "me", "more", "most", "my", "no", "nor", "not", "now", "of",
    "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over", "own", "same",
    "she", "should", "so", "some", "such", "than", "that", "the", "their", "theirs", "them",
    "then", "there", "these", "they", "this", "those", "through", "to", "too", "under", "until",
    "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom",
    "why", "will", "with", "you", "your", "yours",
];

/// Returns `true` if `word` (already lowercased) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "of", "and", "a", "in", "with"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn domain_words_are_not_stopwords() {
        for w in ["database", "thai", "noodle", "house", "crawling"] {
            assert!(!is_stopword(w), "{w} must not be a stop word");
        }
    }
}
