//! Normalization pipeline shared by every index in the system.
//!
//! The local database, the hidden-database simulator, and the crawler must
//! agree on what a "keyword" is, otherwise the conjunctive-containment
//! semantics of Definition 1 silently diverge between the two sides. The
//! pipeline is: lowercase → split on non-alphanumeric → drop tokens shorter
//! than `min_token_len` → drop stop words → dedup (set semantics).

use crate::document::Document;
use crate::stopwords::is_stopword;
use crate::vocab::Vocabulary;

/// Configurable tokenizer.
///
/// # Examples
///
/// ```
/// use smartcrawl_text::{Tokenizer, Vocabulary};
///
/// let tok = Tokenizer::default();
/// let mut vocab = Vocabulary::new();
/// let doc = tok.tokenize("Lotus of Siam", &mut vocab);
/// // "of" is a stop word; two keywords remain.
/// assert_eq!(doc.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Remove stop words (paper §2 excludes them from query keywords).
    pub remove_stopwords: bool,
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_token_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self { remove_stopwords: true, min_token_len: 1 }
    }
}

impl Tokenizer {
    /// Yields normalized raw keywords (lowercased, filtered) of `text`.
    pub fn raw_tokens<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(move |t| t.chars().count() >= self.min_token_len && !t.is_empty())
            .map(|t| t.to_lowercase())
            .filter(move |t| !self.remove_stopwords || !is_stopword(t))
    }

    /// Tokenizes `text` into a [`Document`], interning new keywords.
    pub fn tokenize(&self, text: &str, vocab: &mut Vocabulary) -> Document {
        self.raw_tokens(text).map(|t| vocab.intern(&t)).collect()
    }

    /// Tokenizes the concatenation of `fields` (paper: `document(·)`
    /// concatenates all attributes of the record).
    pub fn tokenize_fields<S: AsRef<str>>(&self, fields: &[S], vocab: &mut Vocabulary) -> Document {
        fields
            .iter()
            .flat_map(|f| self.raw_tokens(f.as_ref()).collect::<Vec<_>>())
            .map(|t| vocab.intern(&t))
            .collect()
    }

    /// Tokenizes without interning: keywords not already in `vocab` are
    /// dropped. Used when probing an existing index with foreign text —
    /// an unseen keyword cannot match anything in the index anyway.
    pub fn tokenize_known(&self, text: &str, vocab: &Vocabulary) -> Document {
        self.raw_tokens(text).filter_map(|t| vocab.get(&t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let d = tok.tokenize("Thai-Noodle HOUSE, (Downtown)", &mut v);
        let words: Vec<_> = d.iter().map(|t| v.word(t).to_owned()).collect();
        let mut expect = vec!["thai", "noodle", "house", "downtown"];
        expect.sort_unstable_by_key(|w| v.get(w).unwrap());
        assert_eq!(words, expect);
    }

    #[test]
    fn removes_stopwords_by_default() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let d = tok.tokenize("The Lotus of Siam", &mut v);
        assert_eq!(d.len(), 2);
        assert!(v.get("the").is_none());
        assert!(v.get("of").is_none());
    }

    #[test]
    fn stopword_removal_can_be_disabled() {
        let tok = Tokenizer { remove_stopwords: false, ..Tokenizer::default() };
        let mut v = Vocabulary::new();
        let d = tok.tokenize("the of lotus", &mut v);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn dedups_repeated_keywords() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let d = tok.tokenize("noodle noodle noodle house", &mut v);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn tokenize_fields_concatenates_attributes() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let d = tok.tokenize_fields(&["Thai House", "Vancouver", "4.1"], &mut v);
        // "4.1" splits on '.' into "4" and "1": thai, house, vancouver, 4, 1.
        assert_eq!(d.len(), 5);
        assert!(v.get("thai").is_some());
        assert!(v.get("vancouver").is_some());
    }

    #[test]
    fn tokenize_known_drops_foreign_tokens_without_interning() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        tok.tokenize("thai house", &mut v);
        let before = v.len();
        let d = tok.tokenize_known("thai pavilion", &v);
        assert_eq!(v.len(), before);
        assert_eq!(d.len(), 1); // only "thai" known
    }

    #[test]
    fn min_token_len_filters_short_tokens() {
        let tok = Tokenizer { min_token_len: 3, ..Tokenizer::default() };
        let mut v = Vocabulary::new();
        let d = tok.tokenize("db x conf", &mut v);
        assert_eq!(d.len(), 1); // only "conf" has ≥ 3 chars
    }

    #[test]
    fn empty_and_punctuation_only_text_yields_empty_document() {
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        assert!(tok.tokenize("", &mut v).is_empty());
        assert!(tok.tokenize("--- ... !!!", &mut v).is_empty());
    }
}
