//! Attribute-tuple records.
//!
//! Both the local database `D` and the hidden database `H` are modeled as
//! relational tables (paper §2). A [`Record`] is one tuple; its *document*
//! is the tokenization of all of its fields concatenated. Schemas are held
//! by the owning database, not the record, to keep records compact.

use crate::document::Document;
use crate::tokenizer::Tokenizer;
use crate::vocab::Vocabulary;

/// Position of a record within its owning database (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One relational tuple: an ordered list of attribute values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    fields: Vec<String>,
}

impl Record {
    /// Creates a record from attribute values.
    pub fn new(fields: Vec<String>) -> Self {
        Self { fields }
    }

    /// The attribute values in schema order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Mutable access to the attribute values (used by error injection).
    pub fn fields_mut(&mut self) -> &mut Vec<String> {
        &mut self.fields
    }

    /// All fields concatenated with spaces — the raw text behind
    /// `document(·)` and the text NaiveCrawl issues as a query.
    pub fn full_text(&self) -> String {
        self.fields.join(" ")
    }

    /// The record's document under `tokenizer`, interning into `vocab`.
    pub fn document(&self, tokenizer: &Tokenizer, vocab: &mut Vocabulary) -> Document {
        tokenizer.tokenize_fields(&self.fields, vocab)
    }
}

impl<S: Into<String>, const N: usize> From<[S; N]> for Record {
    fn from(fields: [S; N]) -> Self {
        Self::new(fields.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_text_joins_fields() {
        let r = Record::from(["Thai House", "Vancouver"]);
        assert_eq!(r.full_text(), "Thai House Vancouver");
    }

    #[test]
    fn document_tokenizes_all_fields() {
        let r = Record::from(["Noodle House", "Noodle Bar"]);
        let tok = Tokenizer::default();
        let mut v = Vocabulary::new();
        let d = r.document(&tok, &mut v);
        assert_eq!(d.len(), 3); // noodle, house, bar
    }

    #[test]
    fn fields_mut_allows_error_injection() {
        let mut r = Record::from(["Lotus of Siam"]);
        r.fields_mut()[0].push_str(" 12345");
        assert_eq!(r.fields()[0], "Lotus of Siam 12345");
    }

    #[test]
    fn record_id_index_round_trip() {
        assert_eq!(RecordId(7).index(), 7);
    }
}
