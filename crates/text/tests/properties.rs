//! Property-based tests for the text substrate.

use proptest::prelude::*;
use smartcrawl_text::similarity::{dice, jaccard, levenshtein, overlap};
use smartcrawl_text::{Document, TokenId, Tokenizer, Vocabulary};

fn doc_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec(0u32..64, 0..24)
        .prop_map(|v| Document::from_tokens(v.into_iter().map(TokenId).collect()))
}

proptest! {
    #[test]
    fn document_tokens_are_strictly_sorted(d in doc_strategy()) {
        prop_assert!(d.tokens().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn document_contains_all_of_itself(d in doc_strategy()) {
        prop_assert!(d.contains_all(d.tokens()));
    }

    #[test]
    fn contains_all_matches_naive_subset(d in doc_strategy(), q in doc_strategy()) {
        let naive = q.iter().all(|t| d.tokens().contains(&t));
        prop_assert_eq!(d.contains_all(q.tokens()), naive);
    }

    #[test]
    fn intersection_size_is_symmetric_and_bounded(a in doc_strategy(), b in doc_strategy()) {
        let ab = a.intersection_size(&b);
        prop_assert_eq!(ab, b.intersection_size(&a));
        prop_assert!(ab <= a.len().min(b.len()));
        prop_assert_eq!(a.union_size(&b), a.len() + b.len() - ab);
    }

    #[test]
    fn jaccard_in_unit_interval_and_symmetric(a in doc_strategy(), b in doc_strategy()) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j.to_bits(), jaccard(&b, &a).to_bits());
        // Jaccard 1.0 iff equal sets.
        prop_assert_eq!(j == 1.0, a == b);
    }

    #[test]
    fn similarity_ordering_jaccard_le_dice_le_overlap(a in doc_strategy(), b in doc_strategy()) {
        // For non-degenerate sets: jaccard <= dice <= overlap.
        prop_assume!(!a.is_empty() && !b.is_empty());
        let (j, d, o) = (jaccard(&a, &b), dice(&a, &b), overlap(&a, &b));
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= o + 1e-12);
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
    ) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_zero_iff_equal(a in "[a-c]{0,8}", b in "[a-c]{0,8}") {
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
    }

    #[test]
    fn tokenizer_is_idempotent_through_vocab(words in prop::collection::vec("[a-z]{1,8}", 0..12)) {
        let tok = Tokenizer::default();
        let mut vocab = Vocabulary::new();
        let text = words.join(" ");
        let d1 = tok.tokenize(&text, &mut vocab);
        let d2 = tok.tokenize(&text, &mut vocab);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn tokenize_known_is_subset_of_tokenize(words in prop::collection::vec("[a-z]{1,8}", 0..12)) {
        let tok = Tokenizer::default();
        let mut vocab = Vocabulary::new();
        let text = words.join(" ");
        let full = tok.tokenize(&text, &mut vocab);
        let known = tok.tokenize_known(&text, &vocab);
        prop_assert_eq!(known, full);
    }
}
