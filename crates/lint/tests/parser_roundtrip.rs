//! The token-tree parser's losslessness property: for *any* input —
//! balanced, unbalanced, or pure delimiter soup — flattening the parsed
//! tree re-emits exactly the lexed token stream, in order, with nothing
//! dropped or duplicated. Every flow-aware rule walks this tree, so the
//! property is what guarantees a rule can never miss a token because
//! grouping mangled it.

use proptest::prelude::*;
use smartcrawl_lint::lexer::lex;
use smartcrawl_lint::parser::parse;

/// Alphabet the generator draws from: idents, keywords, punctuation,
/// literals, comments, and an over-weighted supply of mismatched
/// delimiters (the error-recovery paths are the ones worth hammering).
const PIECES: [&str; 24] = [
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    "{",
    "}", // delimiter soup
    "fn",
    "for",
    "impl",
    "ident",
    "x",
    ";",
    ",",
    "::",
    "->",
    "1.5e3",
    "\"a { string ( with ] delims\"",
    "// line comment",
    "/* block { ( */",
    "'c'",
];

fn source_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PIECES.len(), 0..64).prop_map(|picks| {
        let mut src = String::new();
        for (n, i) in picks.iter().enumerate() {
            if n > 0 {
                // Line comments must not swallow the rest of the input.
                src.push(if src.ends_with("comment") { '\n' } else { ' ' });
            }
            src.push_str(PIECES[*i]);
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn re_emit_is_the_identity_on_token_indices(src in source_strategy()) {
        let tokens = lex(&src);
        let tree = parse(&tokens);
        let emitted = tree.re_emit();
        let expected: Vec<usize> = (0..tokens.len()).collect();
        prop_assert_eq!(emitted, expected);
    }

    #[test]
    fn parse_is_deterministic(src in source_strategy()) {
        let tokens = lex(&src);
        prop_assert_eq!(parse(&tokens), parse(&tokens));
    }
}
