//! End-to-end CLI tests: run the real `smartcrawl-lint` binary against a
//! throwaway mini-workspace and check output formats and exit codes —
//! including the CI-gating behavior that a stale allowlist entry exits
//! nonzero, not just prints.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Path to the compiled binary under test (set by cargo for integration
/// tests of crates with a `[[bin]]` target).
fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_smartcrawl-lint")
}

/// A scratch workspace directory, unique per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("smartcrawl-lint-cli-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.0.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create parent dirs");
        }
        fs::write(&path, content).expect("write scratch file");
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("--root")
            .arg(&self.0)
            .args(args)
            .output()
            .expect("run smartcrawl-lint")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let ws = Scratch::new("clean");
    ws.write("crates/x/src/lib.rs", "fn add(a: u32, b: u32) -> u32 { a.wrapping_add(b) }\n");
    let out = ws.run(&[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn violation_exits_one_and_renders_file_line_col() {
    let ws = Scratch::new("violation");
    ws.write("crates/x/src/lib.rs", "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
    let out = ws.run(&[]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("crates/x/src/lib.rs:1:33: [panic-freedom]"),
        "diagnostic position missing: {text}"
    );
}

#[test]
fn json_format_is_machine_readable() {
    let ws = Scratch::new("json");
    ws.write("crates/x/src/lib.rs", "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
    let out = ws.run(&["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "json mode keeps the exit contract");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"findings\":["), "not a JSON report: {text}");
    assert!(text.contains("\"rule\":\"panic-freedom\""));
    assert!(text.contains("\"path\":\"crates/x/src/lib.rs\""));
    assert!(text.contains("\"line\":1"));
    assert!(text.contains("\"clean\":false"));
}

#[test]
fn stale_allowlist_entry_exits_nonzero() {
    let ws = Scratch::new("stale");
    ws.write("crates/x/src/lib.rs", "fn ok() -> u32 { 7 }\n");
    // Entry matches nothing: the code it once justified is gone.
    ws.write(
        "lint-allow.txt",
        "allow panic-freedom crates/x/src/lib.rs `gone.unwrap()` -- removed long ago\n",
    );
    let out = ws.run(&[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale entries must fail the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[stale-allowlist]"), "{text}");
}

#[test]
fn crate_layering_sees_manifest_back_edges() {
    let ws = Scratch::new("layering");
    ws.write("crates/index/src/lib.rs", "fn ok() {}\n");
    ws.write(
        "crates/index/Cargo.toml",
        "[package]\nname = \"smartcrawl-index\"\n\n[dependencies]\nsmartcrawl-core.workspace = true\n",
    );
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/index\"]\n");
    let out = ws.run(&["--rule", "crate-layering"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("crates/index/Cargo.toml:5:1: [crate-layering]"),
        "manifest edge not reported: {text}"
    );
}
