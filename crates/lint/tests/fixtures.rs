//! Fixture-driven integration tests: each file under `fixtures/` carries
//! deliberate violations of one rule plus string/comment/test-region
//! decoys that must stay silent. The fixtures directory is excluded from
//! workspace walks (`SKIP_DIRS`), so these violations never reach the
//! real lint run.

use smartcrawl_lint::{allowlist, lint_source, Config, Diagnostic};
use std::path::{Path, PathBuf};

/// The lint crate's directory: `CARGO_MANIFEST_DIR` under cargo, the
/// workspace-relative path when the test binary is run from the repo root
/// (the offline rustc harness).
fn crate_dir() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from("crates/lint"),
    }
}

fn fixture(name: &str) -> String {
    let path = crate_dir().join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lints a fixture's text as if it lived at `as_path` in the workspace.
fn lint_fixture(name: &str, as_path: &str) -> (Vec<Diagnostic>, usize) {
    lint_source(as_path, &fixture(name), &Config::default())
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn budget_fixture_flags_probes_and_ignores_decoys() {
    let (diags, suppressed) = lint_fixture("budget.rs", "crates/fake/src/probe.rs");
    assert_eq!(suppressed, 0);
    let lines = lines_of(&diags, "budget-safety");
    assert_eq!(lines.len(), 2, "exactly the two real probes: {diags:?}");
    for d in diags.iter().filter(|d| d.rule == "budget-safety") {
        assert!(
            d.snippet.contains("engine.search(q)") || d.snippet.contains("Engine::search(q)"),
            "unexpected site: {d:?}"
        );
    }
    assert!(
        diags.iter().all(|d| d.rule == "budget-safety"),
        "no other rule should fire on this fixture: {diags:?}"
    );
}

#[test]
fn budget_fixture_is_silent_inside_the_interface_layer() {
    for path in ["crates/hidden/src/interface.rs", "crates/cache/src/cached.rs"] {
        let (diags, _) = lint_fixture("budget.rs", path);
        assert!(
            lines_of(&diags, "budget-safety").is_empty(),
            "{path} is interface-layer — raw probes are its job: {diags:?}"
        );
    }
}

#[test]
fn determinism_fixture_flags_rng_clock_and_hash_iteration() {
    let (diags, _) = lint_fixture("determinism.rs", "crates/core/src/pool.rs");
    let lines = lines_of(&diags, "determinism");
    // thread_rng + Instant::now + SystemTime::now + thread::spawn +
    // thread::scope + for-loop + .values().
    assert_eq!(lines.len(), 7, "{diags:?}");
    let text = fixture("determinism.rs");
    for (needle, what) in [
        ("thread_rng", "OS-seeded RNG"),
        ("Instant::now", "wall clock"),
        ("std::thread::spawn", "raw thread spawn"),
        ("std::thread::scope", "raw thread scope"),
        ("for (k, v) in &self.by_id", "hash-order for loop"),
        ("self.by_id.values()", "hash-order .values()"),
    ] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "{what} at line {line} not flagged: {diags:?}");
    }
}

#[test]
fn determinism_hash_iteration_is_scoped_to_ordered_output_paths() {
    // Outside the ordered-output modules only the RNG/clock/thread
    // sub-check runs.
    let (diags, _) = lint_fixture("determinism.rs", "crates/other/src/lib.rs");
    assert_eq!(lines_of(&diags, "determinism").len(), 5, "{diags:?}");
}

#[test]
fn determinism_thread_fanout_is_exempt_inside_the_parallel_runtime() {
    // The same fixture linted as if it lived in crates/par: the two raw
    // thread findings disappear, the RNG/clock ones remain.
    let (diags, _) = lint_fixture("determinism.rs", "crates/par/src/runtime.rs");
    assert_eq!(lines_of(&diags, "determinism").len(), 3, "{diags:?}");
}

#[test]
fn panic_fixture_flags_each_panicking_construct_once() {
    let (diags, _) = lint_fixture("panic.rs", "crates/fake/src/lib.rs");
    let lines = lines_of(&diags, "panic-freedom");
    // unwrap, expect, v[0], panic!, unreachable! — one line each.
    assert_eq!(lines.len(), 5, "{diags:?}");
    let text = fixture("panic.rs");
    for needle in ["o.unwrap();", "o.expect(", "v[0]", "panic!(", "unreachable!()"] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
}

#[test]
fn panic_fixture_is_silent_in_test_files() {
    let (diags, _) = lint_fixture("panic.rs", "crates/fake/tests/props.rs");
    assert!(diags.is_empty(), "test files may panic freely: {diags:?}");
}

#[test]
fn float_fixture_flags_division_and_casts_in_float_paths_only() {
    let (diags, _) = lint_fixture("floats.rs", "crates/core/src/estimate.rs");
    let lines = lines_of(&diags, "float-hygiene");
    assert_eq!(lines.len(), 2, "division by `den` and `count as f64`: {diags:?}");
    let (elsewhere, _) = lint_fixture("floats.rs", "crates/core/src/pool.rs");
    assert!(
        lines_of(&elsewhere, "float-hygiene").is_empty(),
        "float-hygiene is scoped to the estimator kernels: {elsewhere:?}"
    );
}

#[test]
fn io_fixture_flags_raw_writes_clock_and_unwrap_in_the_store_only() {
    let (diags, _) = lint_fixture("io.rs", "crates/store/src/cache.rs");
    let lines = lines_of(&diags, "io-hygiene");
    // File::create + fs::write + OpenOptions + Instant::now + unwrap.
    assert_eq!(lines.len(), 5, "{diags:?}");
    let text = fixture("io.rs");
    for needle in [
        "File::create(path)?",
        "std::fs::write(path",
        "OpenOptions::new()",
        "Instant::now()",
        ".unwrap() // VIOLATION",
    ] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
    // Outside the store the same code answers to other rules, not this one.
    let (elsewhere, _) = lint_fixture("io.rs", "crates/cache/src/persist.rs");
    assert!(
        lines_of(&elsewhere, "io-hygiene").is_empty(),
        "io-hygiene is scoped to crates/store: {elsewhere:?}"
    );
}

#[test]
fn io_fixture_writer_module_may_open_files() {
    let (diags, _) = lint_fixture("io.rs", "crates/store/src/file.rs");
    let lines = lines_of(&diags, "io-hygiene");
    // The raw-write findings disappear; clock and unwrap remain banned.
    assert_eq!(lines.len(), 2, "{diags:?}");
}

#[test]
fn suppression_fixture_absorbs_justified_sites_and_reports_the_rest() {
    let (diags, suppressed) = lint_fixture("suppressed.rs", "crates/fake/src/lib.rs");
    assert_eq!(suppressed, 2, "standalone + trailing directives: {diags:?}");
    assert_eq!(
        lines_of(&diags, "panic-freedom").len(),
        2,
        "unwraps under broken directives still count: {diags:?}"
    );
    assert_eq!(
        lines_of(&diags, "bad-suppression").len(),
        2,
        "missing reason + unknown rule: {diags:?}"
    );
    assert_eq!(
        lines_of(&diags, "unused-suppression").len(),
        1,
        "directive with nothing to suppress: {diags:?}"
    );
}

#[test]
fn send_sync_fixture_flags_each_hostile_capture_type() {
    let (diags, _) = lint_fixture("send_sync.rs", "crates/core/src/crawl/driver.rs");
    let lines = lines_of(&diags, "send-sync-boundary");
    assert_eq!(lines.len(), 5, "Rc, RefCell, Cell, *mut, static mut: {diags:?}");
    let text = fixture("send_sync.rs");
    for needle in [
        "Rc::new(41u32)",
        "RefCell::new(0usize)",
        "Cell::new(0u32)",
        "p: *mut u32",
        "static mut COUNTER",
    ] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
}

#[test]
fn send_sync_clean_fixture_is_silent() {
    let (diags, _) = lint_fixture("send_sync_clean.rs", "crates/core/src/crawl/driver.rs");
    assert!(
        lines_of(&diags, "send-sync-boundary").is_empty(),
        "Arc/& captures must pass: {diags:?}"
    );
}

#[test]
fn pipeline_send_sync_fixture_flags_each_hostile_capture() {
    let (diags, _) =
        lint_fixture("pipeline_send_sync.rs", "crates/core/src/crawl/session.rs");
    let lines = lines_of(&diags, "send-sync-boundary");
    assert_eq!(lines.len(), 3, "Rc, Cell, RefCell near run_pipeline: {diags:?}");
    let text = fixture("pipeline_send_sync.rs");
    for needle in [
        "Rc::new(Vec::<SearchPage>::new())",
        "Cell::new(0u64)",
        "RefCell::new(Vec::new())",
    ] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
    for d in diags.iter().filter(|d| d.rule == "send-sync-boundary") {
        assert!(
            d.message.contains("run_pipeline"),
            "finding must name the pipeline entry point: {d:?}"
        );
    }
}

#[test]
fn pipeline_send_sync_clean_fixture_is_silent() {
    let (diags, _) =
        lint_fixture("pipeline_send_sync_clean.rs", "crates/core/src/crawl/session.rs");
    assert!(
        lines_of(&diags, "send-sync-boundary").is_empty(),
        "borrowed-db / Arc / driver-side-Vec shapes must pass: {diags:?}"
    );
}

#[test]
fn layering_fixture_rejects_the_synthetic_back_edge() {
    // The acceptance-criteria case: `index` importing from `core`.
    let (diags, _) = lint_fixture("layering.rs", "crates/index/src/lib.rs");
    let lines = lines_of(&diags, "crate-layering");
    assert_eq!(lines.len(), 2, "core + store back-edges: {diags:?}");
    let text = fixture("layering.rs");
    for needle in ["use smartcrawl_core::pool", "use smartcrawl_store::inverted"] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
}

#[test]
fn layering_fixture_is_silent_outside_the_layered_crates() {
    // The same imports inside the linter itself (exempt) or a test file.
    for path in ["crates/lint/src/lib.rs", "crates/index/tests/queries.rs"] {
        let (diags, _) = lint_fixture("layering.rs", path);
        assert!(
            lines_of(&diags, "crate-layering").is_empty(),
            "{path} is outside the layered plane: {diags:?}"
        );
    }
}

#[test]
fn layering_clean_fixture_is_silent() {
    let (diags, _) = lint_fixture("layering_clean.rs", "crates/core/src/select/engine.rs");
    assert!(lines_of(&diags, "crate-layering").is_empty(), "downward edges must pass: {diags:?}");
}

#[test]
fn hot_alloc_fixture_flags_each_allocation_kind() {
    let (diags, _) = lint_fixture("hot_alloc.rs", "crates/store/src/scan.rs");
    let lines = lines_of(&diags, "hot-path-alloc");
    assert_eq!(lines.len(), 5, "Vec::new, .clone(), .to_vec(), format!, String::from: {diags:?}");
    let text = fixture("hot_alloc.rs");
    for needle in [
        "Vec::new(); // VIOLATION",
        "row.clone();",
        ".to_vec();",
        "format!(\"row{n}\")",
        "String::from(\"shard\")",
    ] {
        let line = text
            .lines()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"));
        assert!(lines.contains(&line), "`{needle}` at line {line} not flagged: {diags:?}");
    }
}

#[test]
fn hot_alloc_fixture_is_silent_outside_hot_paths() {
    let (diags, _) = lint_fixture("hot_alloc.rs", "crates/hidden/src/db.rs");
    assert!(
        lines_of(&diags, "hot-path-alloc").is_empty(),
        "the rule is scoped to select/ and store/: {diags:?}"
    );
}

#[test]
fn hot_alloc_clean_fixture_is_silent() {
    let (diags, _) = lint_fixture("hot_alloc_clean.rs", "crates/store/src/scan.rs");
    assert!(lines_of(&diags, "hot-path-alloc").is_empty(), "hoisted buffers must pass: {diags:?}");
}

#[test]
fn emitted_allowlist_round_trips_over_fixture_findings() {
    let (diags, _) = lint_fixture("budget.rs", "crates/fake/src/probe.rs");
    assert!(!diags.is_empty());
    let text = allowlist::emit(&diags);
    let list = allowlist::parse(&text);
    assert!(list.errors.is_empty(), "emit must produce parseable entries: {:?}", list.errors);
    assert_eq!(list.entries.len(), diags.len());
    let mut meta = Vec::new();
    let (kept, absorbed) = allowlist::apply(&list, "lint-allow.txt", diags, &mut meta);
    assert!(kept.is_empty(), "every emitted entry absorbs its finding: {kept:?}");
    assert_eq!(absorbed, list.entries.len());
    assert!(meta.is_empty(), "round-trip leaves no stale entries: {meta:?}");
}

/// The real workspace, checked with the real checked-in allowlist, is
/// clean — the same gate CI runs. A failure here means a new violation
/// landed without a justification (or an allowlist entry went stale).
#[test]
fn workspace_is_clean() {
    let root = match option_env!("CARGO_MANIFEST_DIR") {
        Some(d) => Path::new(d).join("../.."),
        None => PathBuf::from("."),
    };
    if !root.join("Cargo.toml").exists() {
        // Relocated test binary with no workspace around it: nothing to check.
        return;
    }
    let allow_path = root.join("lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text),
        Err(_) => allowlist::Allowlist::default(),
    };
    let report =
        smartcrawl_lint::lint_workspace(&root, &Config::default(), &allow, "lint-allow.txt")
            .expect("workspace walk failed");
    assert!(
        report.is_clean(),
        "workspace has unjustified findings:\n{}",
        report.diagnostics.iter().map(Diagnostic::render).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_checked > 100, "walk looks truncated: {}", report.files_checked);
}

/// The three flow-aware rules, run alone over the real workspace. This is
/// the gate the async crawl driver lands against: `send-sync-boundary`,
/// `crate-layering` (use edges *and* Cargo manifest edges) and
/// `hot-path-alloc` must hold with only the justified exemptions in the
/// checked-in allowlist.
#[test]
fn workspace_is_clean_under_the_flow_aware_rules() {
    let root = match option_env!("CARGO_MANIFEST_DIR") {
        Some(d) => Path::new(d).join("../.."),
        None => PathBuf::from("."),
    };
    if !root.join("Cargo.toml").exists() {
        return;
    }
    let new_rules = ["send-sync-boundary", "crate-layering", "hot-path-alloc"];
    let cfg = Config {
        only_rules: Some(new_rules.iter().map(|r| r.to_string()).collect()),
        ..Config::default()
    };
    let mut allow = match std::fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => allowlist::parse(&text),
        Err(_) => allowlist::Allowlist::default(),
    };
    // Mirror the CLI: a rule-filtered run only judges entries for the
    // rules it ran, so entries for the other six rules are not "stale".
    allow.entries.retain(|e| new_rules.contains(&e.rule.as_str()));
    let report = smartcrawl_lint::lint_workspace(&root, &cfg, &allow, "lint-allow.txt")
        .expect("workspace walk failed");
    assert!(
        report.is_clean(),
        "flow-aware rules have unjustified findings:\n{}",
        report.diagnostics.iter().map(Diagnostic::render).collect::<Vec<_>>().join("\n")
    );
    // The sanctioned data->hidden back-edge must be carried by the
    // allowlist, not silently invisible to the rule.
    assert!(
        report.allowlisted >= 2,
        "expected the data->hidden manifest + use entries to absorb findings: {}",
        report.allowlisted
    );
}

/// A stale allowlist entry is a finding, not a warning: it lands in
/// `report.diagnostics`, so `is_clean()` goes false and the CLI (and CI)
/// exit nonzero until the dead entry is removed.
#[test]
fn stale_allowlist_entries_fail_the_run() {
    let list = allowlist::parse(
        "allow hot-path-alloc crates/store/src/no_such_file.rs `Vec::new()` -- obsolete\n",
    );
    let diags = Vec::new();
    let mut meta = Vec::new();
    let (kept, absorbed) = allowlist::apply(&list, "lint-allow.txt", diags, &mut meta);
    assert_eq!((kept.len(), absorbed), (0, 0));
    assert_eq!(meta.len(), 1);
    assert_eq!(meta[0].rule, "stale-allowlist");
    // lint_workspace appends meta findings to report.diagnostics — model
    // that merge and confirm the gate trips.
    let mut report = smartcrawl_lint::Report::default();
    report.diagnostics.extend(meta);
    assert!(!report.is_clean(), "a stale entry must fail the CI gate");
}
