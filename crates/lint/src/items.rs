//! Item index: the bridge between the token tree and the flow-aware
//! rules. Walks every group level of a parsed file and records item
//! boundaries (`fn` / `struct` / `enum` / `impl` / `mod` / `use`) with
//! byte spans, so a rule can ask "which function contains this call?"
//! or "what does this file import?" without re-deriving structure.
//!
//! Alongside items, this module extracts **loop bodies** (`for` / `while`
//! / `loop` block spans) — the scope the `hot-path-alloc` rule bans
//! allocations in.

use crate::lexer::Token;
use crate::parser::{Node, TokenTree};

/// The item kinds the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Impl,
    Mod,
    Use,
}

/// One indexed item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name (`""` for `impl` blocks, the module name for `mod`,
    /// the first path segment for `use`).
    pub name: String,
    /// Byte span `[start, end)`: keyword token through the closing brace
    /// or terminating semicolon.
    pub start: usize,
    pub end: usize,
    /// Position of the keyword token.
    pub line: u32,
    pub col: u32,
    /// For `use` items: the root path segment (`std`, `crate`,
    /// `smartcrawl_hidden`, …).
    pub use_root: Option<String>,
}

/// All items of one file, in source order.
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    pub items: Vec<Item>,
}

impl ItemIndex {
    /// The innermost `fn` item whose span contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.start <= offset && offset < it.end)
            .max_by_key(|it| it.start)
    }

    /// Root path segments of every `use` item (imports of the file).
    pub fn use_roots(&self) -> impl Iterator<Item = &str> {
        self.items.iter().filter_map(|it| it.use_root.as_deref())
    }
}

const ITEM_KEYWORDS: [(&str, ItemKind); 6] = [
    ("fn", ItemKind::Fn),
    ("struct", ItemKind::Struct),
    ("enum", ItemKind::Enum),
    ("impl", ItemKind::Impl),
    ("mod", ItemKind::Mod),
    ("use", ItemKind::Use),
];

/// A level's children with comment leaves filtered out: item grammar is
/// over code, but spans still point at the full token slice.
fn code_children<'t>(tokens: &[Token<'_>], level: &'t [Node]) -> Vec<&'t Node> {
    level
        .iter()
        .filter(|n| match n {
            Node::Leaf(i) => tokens.get(*i).is_some_and(|t| !t.is_comment()),
            Node::Group(_) => true,
        })
        .collect()
}

fn leaf_text<'a>(tokens: &[Token<'a>], node: &Node) -> Option<&'a str> {
    match node {
        Node::Leaf(i) => tokens.get(*i).map(|t| t.text),
        Node::Group(_) => None,
    }
}

fn group_text(tokens: &[Token<'_>], node: &Node) -> Option<&'static str> {
    match node {
        Node::Group(g) => match tokens.get(g.open).map(|t| t.text) {
            Some("{") => Some("{"),
            Some("(") => Some("("),
            Some("[") => Some("["),
            _ => None,
        },
        Node::Leaf(_) => None,
    }
}

/// Byte offset just past a node (closer of a group, or its last child for
/// unterminated groups; `eof` when the group is empty and unterminated).
fn node_end(tokens: &[Token<'_>], node: &Node, eof: usize) -> usize {
    match node {
        Node::Leaf(i) => tokens.get(*i).map_or(eof, Token::end),
        Node::Group(g) => match g.close {
            Some(c) => tokens.get(c).map_or(eof, Token::end),
            None => g.children.last().map_or_else(
                || tokens.get(g.open).map_or(eof, Token::end),
                |ch| node_end(tokens, ch, eof),
            ),
        },
    }
}

/// Indexes every item in the file, at every nesting level.
pub fn index(tokens: &[Token<'_>], tree: &TokenTree, eof: usize) -> ItemIndex {
    let mut items = Vec::new();
    index_level(tokens, &tree.roots, eof, &mut items);
    items.sort_by_key(|it| it.start);
    ItemIndex { items }
}

fn index_level(tokens: &[Token<'_>], level: &[Node], eof: usize, out: &mut Vec<Item>) {
    let nodes = code_children(tokens, level);
    for (pos, node) in nodes.iter().enumerate() {
        // Recurse into every group: items nest in mod/impl/fn bodies.
        if let Node::Group(g) = node {
            index_level(tokens, &g.children, eof, out);
            continue;
        }
        let Some(kw) = leaf_text(tokens, node) else {
            continue;
        };
        let Some(&(_, kind)) = ITEM_KEYWORDS.iter().find(|&&(k, _)| k == kw) else {
            continue;
        };
        let Node::Leaf(kw_idx) = node else { continue };
        let Some(kw_tok) = tokens.get(*kw_idx) else {
            continue;
        };
        // `fn` must introduce a named item here — `fn(u32) -> u32` is a
        // function-pointer type (next node is the parameter group, not an
        // ident). Same guard keeps `impl Fn(...)` bounds out.
        let name = nodes
            .get(pos + 1)
            .and_then(|n| leaf_text(tokens, n))
            .filter(|t| is_ident_like(t))
            .unwrap_or("");
        if kind == ItemKind::Fn && name.is_empty() {
            continue;
        }
        // Extent: scan forward at this level for the item's body (`{…}`
        // group) or its terminating `;`, whichever comes first. Struct
        // tuple bodies (`struct S(u32);`) fall out naturally: the `(…)`
        // group is passed over and the `;` ends the item.
        let mut end = kw_tok.end();
        for next in nodes.get(pos + 1..).unwrap_or(&[]) {
            if leaf_text(tokens, next) == Some(";") {
                end = node_end(tokens, next, eof);
                break;
            }
            if group_text(tokens, next) == Some("{") {
                end = node_end(tokens, next, eof);
                break;
            }
            end = node_end(tokens, next, eof);
        }
        let use_root = (kind == ItemKind::Use).then(|| {
            nodes
                .get(pos + 1..)
                .unwrap_or(&[])
                .iter()
                .find_map(|n| leaf_text(tokens, n).filter(|t| is_ident_like(t)))
                .unwrap_or("")
                .to_string()
        });
        out.push(Item {
            kind,
            name: name.to_string(),
            start: kw_tok.offset,
            end,
            line: kw_tok.line,
            col: kw_tok.col,
            use_root,
        });
    }
}

fn is_ident_like(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Byte spans of every loop body (`for … in … { }`, `while … { }`,
/// `loop { }`) at any nesting depth. The `for` of `impl Trait for Type`
/// and of `for<'a>` bounds is filtered by requiring an `in` leaf between
/// the keyword and the body braces.
pub fn loop_bodies(tokens: &[Token<'_>], tree: &TokenTree, eof: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut work: Vec<&[Node]> = vec![&tree.roots];
    while let Some(level) = work.pop() {
        let nodes = code_children(tokens, level);
        for (pos, node) in nodes.iter().enumerate() {
            if let Node::Group(g) = node {
                work.push(&g.children);
                continue;
            }
            let Some(kw) = leaf_text(tokens, node) else {
                continue;
            };
            if !matches!(kw, "for" | "while" | "loop") {
                continue;
            }
            // Find the body: the next `{…}` group at this level. A `;`
            // first means no body here (e.g. `for` inside a where-clause
            // that never materializes a block at this level).
            let mut saw_in = false;
            for next in nodes.get(pos + 1..).unwrap_or(&[]) {
                match leaf_text(tokens, next) {
                    Some("in") => saw_in = true,
                    Some(";") => break,
                    _ => {}
                }
                if group_text(tokens, next) == Some("{") {
                    if kw == "for" && !saw_in {
                        break; // `impl … for T { }` / `for<'a>` bound
                    }
                    let Node::Group(g) = next else { break };
                    let start = tokens.get(g.open).map_or(0, |t| t.offset);
                    out.push((start, node_end(tokens, next, eof)));
                    break;
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn build(src: &str) -> (Vec<Token<'_>>, TokenTree) {
        let toks = lex(src);
        let tree = parse(&toks);
        (toks, tree)
    }

    #[test]
    fn indexes_top_level_items() {
        let src = "use std::fmt;\nfn f(x: u32) -> u32 { x }\nstruct S { a: u32 }\nenum E { A, B }\nimpl S { fn m(&self) {} }\nmod inner { fn g() {} }\n";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        let kinds: Vec<ItemKind> = idx.items.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&ItemKind::Use));
        assert!(kinds.contains(&ItemKind::Struct));
        assert!(kinds.contains(&ItemKind::Enum));
        assert!(kinds.contains(&ItemKind::Impl));
        assert!(kinds.contains(&ItemKind::Mod));
        // f, m (in impl), g (in mod) — three fns.
        assert_eq!(idx.items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 3);
    }

    #[test]
    fn item_spans_cover_their_bodies() {
        let src = "fn f() { g(); }\nfn h() {}\n";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        let call = src.find("g()").unwrap();
        let f = idx.enclosing_fn(call).expect("g() is inside f");
        assert_eq!(f.name, "f");
        let h_body = src.rfind("{}").unwrap();
        assert_eq!(idx.enclosing_fn(h_body + 1).map(|i| i.name.as_str()), Some("h"));
    }

    #[test]
    fn innermost_fn_wins_for_nested_items() {
        let src = "fn outer() { fn inner() { x(); } inner(); }";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        let x = src.find("x()").unwrap();
        assert_eq!(idx.enclosing_fn(x).map(|i| i.name.as_str()), Some("inner"));
        let call = src.find("inner();").unwrap();
        let f = idx.enclosing_fn(src[call..].find("inner").map(|o| call + o).unwrap()).unwrap();
        assert_eq!(f.name, "outer");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct S { cb: fn(u32) -> u32 }";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        assert_eq!(idx.items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 0);
    }

    #[test]
    fn use_roots_are_extracted() {
        let src = "use std::collections::HashMap;\nuse smartcrawl_hidden::{HiddenDb, Metered};\nuse crate::diag::Diagnostic;\n";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        let roots: Vec<&str> = idx.use_roots().collect();
        assert_eq!(roots, vec!["std", "smartcrawl_hidden", "crate"]);
    }

    #[test]
    fn tuple_struct_and_semicolon_items_end_at_semicolon() {
        let src = "struct Wrap(u32);\nfn after() {}\n";
        let (toks, tree) = build(src);
        let idx = index(&toks, &tree, src.len());
        let wrap = idx.items.iter().find(|i| i.name == "Wrap").unwrap();
        assert_eq!(&src[wrap.start..wrap.end], "struct Wrap(u32);");
    }

    #[test]
    fn loop_bodies_found_at_all_depths() {
        let src = "fn f(v: &[u32]) { for x in v { g(x); } while h() { loop { break; } } }";
        let (toks, tree) = build(src);
        let bodies = loop_bodies(&toks, &tree, src.len());
        assert_eq!(bodies.len(), 3, "{bodies:?}");
        let for_body = src.find("{ g(x); }").unwrap();
        assert!(bodies.iter().any(|&(s, e)| s == for_body && e > s));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Clone for S { fn clone(&self) -> S { S } }";
        let (toks, tree) = build(src);
        assert!(loop_bodies(&toks, &tree, src.len()).is_empty());
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let src = "fn f<F: for<'a> Fn(&'a u32)>(cb: F) { cb(&1); }";
        let (toks, tree) = build(src);
        assert!(loop_bodies(&toks, &tree, src.len()).is_empty());
    }

    #[test]
    fn while_let_has_a_body() {
        let src = "fn f(mut it: I) { while let Some(x) = it.next() { g(x); } }";
        let (toks, tree) = build(src);
        assert_eq!(loop_bodies(&toks, &tree, src.len()).len(), 1);
    }
}
