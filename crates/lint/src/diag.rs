//! Diagnostics: what a rule reports and how it renders.

/// One finding: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`budget-safety`, `determinism`, `panic-freedom`,
    /// `float-hygiene`, or a meta rule like `bad-suppression`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line the finding sits on (used for allowlist
    /// matching and shown in output).
    pub snippet: String,
}

impl Diagnostic {
    /// Renders the diagnostic in the canonical `file:line:col` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    | {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet
        )
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_str(self.rule),
            json_str(&self.path),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.snippet)
        )
    }
}

/// JSON string literal with the escapes the grammar requires. Hand-rolled
/// because the workspace vendors no serializer — the output is consumed by
/// CI tooling, so correctness of escaping is load-bearing.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving (unsuppressed, non-allowlisted) findings, sorted by
    /// path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Findings silenced by inline `lint:allow` comments.
    pub suppressed: usize,
    /// Findings silenced by allowlist entries.
    pub allowlisted: usize,
}

impl Report {
    /// Whether the pass is clean (CI gate).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the whole report as one JSON document (the `--format json`
    /// output, uploaded as a CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str(&format!(
            "],\"files_checked\":{},\"suppressed\":{},\"allowlisted\":{},\"clean\":{}}}",
            self.files_checked,
            self.suppressed,
            self.allowlisted,
            self.is_clean()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(json_str("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "hot-path-alloc",
                path: "crates/store/src/x.rs".into(),
                line: 7,
                col: 3,
                message: "msg with \"quotes\"".into(),
                snippet: "let v = Vec::new();".into(),
            }],
            files_checked: 2,
            suppressed: 1,
            allowlisted: 3,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"findings\":[{\"rule\":\"hot-path-alloc\""));
        assert!(json.contains("\"line\":7,\"col\":3"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json
            .ends_with("\"files_checked\":2,\"suppressed\":1,\"allowlisted\":3,\"clean\":false}"));
    }

    #[test]
    fn empty_report_is_clean_json() {
        let json = Report::default().to_json();
        assert!(json.contains("\"findings\":[]"));
        assert!(json.contains("\"clean\":true"));
    }
}
