//! Diagnostics: what a rule reports and how it renders.

/// One finding: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`budget-safety`, `determinism`, `panic-freedom`,
    /// `float-hygiene`, or a meta rule like `bad-suppression`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line the finding sits on (used for allowlist
    /// matching and shown in output).
    pub snippet: String,
}

impl Diagnostic {
    /// Renders the diagnostic in the canonical `file:line:col` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    | {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet
        )
    }
}

/// Result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving (unsuppressed, non-allowlisted) findings, sorted by
    /// path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Findings silenced by inline `lint:allow` comments.
    pub suppressed: usize,
    /// Findings silenced by allowlist entries.
    pub allowlisted: usize,
}

impl Report {
    /// Whether the pass is clean (CI gate).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}
