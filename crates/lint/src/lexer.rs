//! A comment/string/raw-string-aware Rust lexer — just enough tokenization
//! for pattern-based invariant rules, with byte spans and line/column
//! positions so diagnostics point at real source locations.
//!
//! The lexer is deliberately *not* a full Rust lexer: it does not classify
//! keywords, parse numeric suffixes precisely, or validate escapes. What it
//! guarantees — and what the rules depend on — is that identifiers,
//! punctuation, comments, and every literal form that can *hide* code-like
//! text (string, raw string, byte string, char, doc comment, nested block
//! comment) are separated correctly, so a rule scanning for `.unwrap()`
//! can never fire on `"foo.unwrap()"` or `// old: x.unwrap()`.

/// Kinds of tokens the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`search`, `fn`, `HashMap`, `r#type`, …).
    Ident,
    /// `'a` in `&'a str` (distinguished from char literals).
    Lifetime,
    /// Integer or float literal, including suffixes (`1`, `0x5A17`, `1e-9f64`).
    Number,
    /// `"…"`, `r#"…"#`, `b"…"`, `br##"…"##` — escape- and hash-aware.
    Str,
    /// `'x'`, `'\n'`, `b'\xFF'`.
    Char,
    /// `// …` including doc comments (`///`, `//!`).
    LineComment,
    /// `/* … */` with nesting, including `/** … */`.
    BlockComment,
    /// A single punctuation character (`.`, `(`, `[`, `/`, `!`, …).
    Punct,
}

/// One lexed token: kind, the source slice, and its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token start in the file.
    pub offset: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based column (in characters) of the token start.
    pub col: u32,
}

impl Token<'_> {
    /// Whether this token is a comment (skipped by all rule scans).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Byte offset just past the token's last byte.
    pub fn end(&self) -> usize {
        self.offset + self.text.len()
    }

    /// The token's byte span `[start, end)` in the file.
    pub fn span(&self) -> (usize, usize) {
        (self.offset, self.end())
    }
}

/// Lexes `src` into tokens. Whitespace is dropped; everything else —
/// comments included — is kept, in source order. Unterminated literals and
/// comments extend to end of input rather than erroring: a lint pass must
/// never abort on weird-but-compiling source, and rustc would reject truly
/// broken files long before the linter matters.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            let (line, col, start) = (self.line, self.col, self.pos);
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' => match self.bytes.get(self.pos + 1) {
                    Some(b'/') => self.line_comment(),
                    Some(b'*') => self.block_comment(),
                    _ => self.punct(),
                },
                b'"' => self.string(0),
                b'r' => self.raw_or_ident(),
                b'b' => self.byte_or_ident(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) || b >= 0x80 => self.ident(),
                _ => self.punct(),
            };
            let text = self.src.get(start..self.pos).unwrap_or("");
            out.push(Token { kind, text, offset: start, line, col });
        }
        out
    }

    /// The unconsumed input (empty at EOF).
    fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    fn bump(&mut self) {
        let Some(&b) = self.bytes.get(self.pos) else { return };
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if !(0x80..0xC0).contains(&b) {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn punct(&mut self) -> TokenKind {
        self.bump();
        TokenKind::Punct
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            if self.rest().starts_with(b"/*") {
                depth += 1;
                self.bump_n(2);
            } else if self.rest().starts_with(b"*/") {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// Cooked string starting at the current `"` (after `skip` prefix bytes
    /// already consumed by the caller for `b"…"`).
    fn string(&mut self, skip: usize) -> TokenKind {
        self.bump_n(skip + 1); // prefix + opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// Raw string starting at the current position's `r` (`hash_offset`
    /// bytes of prefix before the `#`/`"` run, i.e. 1 for `r`, 2 for `br`).
    fn raw_string(&mut self, hash_offset: usize) -> TokenKind {
        self.bump_n(hash_offset);
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while self.pos < self.bytes.len() {
            if self.rest().starts_with(&closer) {
                self.bump_n(closer.len());
                return TokenKind::Str;
            }
            self.bump();
        }
        TokenKind::Str // unterminated: runs to EOF
    }

    fn raw_or_ident(&mut self) -> TokenKind {
        match self.bytes.get(self.pos + 1) {
            // `r"…"` or `r#"…"#` (note: `r#ident` is a raw identifier).
            Some(b'"') => self.raw_string(1),
            Some(b'#') if self.bytes.get(self.pos + 2) != Some(&b'"')
                && self.bytes.get(self.pos + 2) != Some(&b'#') =>
            {
                // raw identifier `r#type`
                self.bump_n(2);
                self.ident()
            }
            Some(b'#') => self.raw_string(1),
            _ => self.ident(),
        }
    }

    fn byte_or_ident(&mut self) -> TokenKind {
        match (self.bytes.get(self.pos + 1), self.bytes.get(self.pos + 2)) {
            (Some(b'"'), _) => self.string(1),
            (Some(b'r'), Some(b'"' | b'#')) => self.raw_string(2),
            (Some(b'\''), _) => {
                self.bump(); // `b`
                self.char_literal();
                TokenKind::Char
            }
            _ => self.ident(),
        }
    }

    /// `'a` lifetime vs `'x'` char literal: it is a char literal iff a
    /// closing quote follows the (possibly escaped) content.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let rest = self.bytes.get(self.pos + 1..).unwrap_or(&[]);
        let is_char = match rest.first() {
            Some(b'\\') => true,
            Some(&c) if is_ident_start(c) || c >= 0x80 => {
                // `'a'` is a char; `'a` / `'static` are lifetimes. Find the
                // end of the ident run and check for a closing quote.
                let mut i = 1;
                while rest.get(i).is_some_and(|&c| is_ident_continue(c) || c >= 0x80) {
                    i += 1;
                }
                rest.get(i) == Some(&b'\'')
            }
            Some(_) => true, // `'('`, `'0'`, …
            None => false,
        };
        if is_char {
            self.char_literal();
            TokenKind::Char
        } else {
            self.bump(); // `'`
            while self.bytes.get(self.pos).is_some_and(|&c| is_ident_continue(c) || c >= 0x80) {
                self.bump();
            }
            TokenKind::Lifetime
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening `'`
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break, // unterminated
                _ => self.bump(),
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        self.bump();
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.bump(),
                // A decimal point only if followed by a digit (`1.0` yes,
                // `1.min(2)` and `0..n` no).
                b'.' if self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) => {
                    self.bump()
                }
                // Exponent sign: `1e-9`.
                b'+' | b'-'
                    if matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                        && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) =>
                {
                    self.bump()
                }
                _ => break,
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        self.bump();
        while self.bytes.get(self.pos).is_some_and(|&b| is_ident_continue(b) || b >= 0x80) {
            self.bump();
        }
        TokenKind::Ident
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "x.unwrap() // not code";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let toks = kinds(r#"let s = "a\"b.unwrap()\"c"; y"#);
        assert_eq!(toks.last().map(|(_, t)| *t), Some("y"));
        assert!(!toks.iter().any(|(_, t)| t.contains("unwrap") && !t.starts_with('"')));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"panic!("x") "quoted""#; z"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(toks.last().map(|(_, t)| *t), Some("z"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "panic"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds(r##"let a = b"x.unwrap()"; let b2 = br#"y"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn line_and_nested_block_comments() {
        let toks = kinds("a // x.unwrap()\nb /* outer /* inner.expect() */ still */ c");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = kinds("&'static str");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 1);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && *t == "r#type"));
    }

    #[test]
    fn float_and_range_disambiguation() {
        assert_eq!(
            kinds("1.5 1..3 1.min(2) 1e-9"),
            vec![
                (TokenKind::Number, "1.5"),
                (TokenKind::Number, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "3"),
                (TokenKind::Number, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "min"),
                (TokenKind::Punct, "("),
                (TokenKind::Number, "2"),
                (TokenKind::Punct, ")"),
                (TokenKind::Number, "1e-9"),
            ]
        );
    }

    #[test]
    fn positions_are_line_and_col_accurate() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text, "cd");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'a", "b\"x"] {
            let _ = lex(src); // must terminate without panicking
        }
    }
}
