//! CLI for smartcrawl-lint. Run from the workspace root:
//!
//! ```text
//! cargo run -p smartcrawl-lint --                 # full pass, CI gate
//! cargo run -p smartcrawl-lint -- --rule determinism
//! cargo run -p smartcrawl-lint -- --format json > lint-report.json
//! cargo run -p smartcrawl-lint -- --emit-allowlist > lint-allow.txt
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
//! `stale-allowlist` findings count as violations: a dead exemption fails
//! the run (and CI) like any other finding until it is removed.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use smartcrawl_lint::{allowlist, lint_workspace, rules, Config};

const USAGE: &str = "\
smartcrawl-lint — workspace invariant checker

USAGE:
    smartcrawl-lint [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root to scan (default: current directory)
    --allowlist <FILE>  allowlist file (default: <root>/lint-allow.txt)
    --rule <ID>         run only this rule (repeatable); one of:
                        budget-safety, determinism, panic-freedom,
                        float-hygiene, dense-hot-path, io-hygiene,
                        send-sync-boundary, crate-layering, hot-path-alloc
    --format <FMT>      output format: text (default) or json
    --emit-allowlist    print surviving findings as allowlist entries and exit 0
    -h, --help          print this help
";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    only_rules: Vec<String>,
    format: Format,
    emit: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        only_rules: Vec::new(),
        format: Format::Text,
        emit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--emit-allowlist" => args.emit = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = PathBuf::from(v);
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file")?;
                args.allowlist = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs `text` or `json`")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a rule id")?;
                if !rules::RULES.contains(&v.as_str()) {
                    return Err(format!("unknown rule `{v}` (known: {})", rules::RULES.join(", ")));
                }
                args.only_rules.push(v);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = Config::default();
    if !args.only_rules.is_empty() {
        cfg.only_rules = Some(args.only_rules.clone());
    }

    let allow_path = args.allowlist.clone().unwrap_or_else(|| args.root.join("lint-allow.txt"));
    let mut allow = match fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text),
        // A missing allowlist is fine (empty); an unreadable one is not.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => allowlist::Allowlist::default(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    // A rule-filtered run only judges entries for the rules it actually
    // ran — an entry for a disabled rule is untested, not stale.
    if !args.only_rules.is_empty() {
        allow.entries.retain(|e| args.only_rules.iter().any(|r| r == &e.rule));
    }
    let allow_name = allow_path.to_string_lossy().replace('\\', "/");

    let report = match lint_workspace(&args.root, &cfg, &allow, &allow_name) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.emit {
        print!("{}", allowlist::emit(&report.diagnostics));
        return ExitCode::SUCCESS;
    }

    if args.format == Format::Json {
        println!("{}", report.to_json());
        return if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    for d in &report.diagnostics {
        println!("{}", d.render());
    }
    println!(
        "smartcrawl-lint: {} files checked, {} finding(s), {} suppressed inline, {} allowlisted",
        report.files_checked,
        report.diagnostics.len(),
        report.suppressed,
        report.allowlisted
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
