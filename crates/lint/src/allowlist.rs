//! The checked-in allowlist (`lint-allow.txt`): violations the team has
//! reviewed and accepted, each with a written justification.
//!
//! Line format (one entry per line, `#` comments and blanks ignored):
//!
//! ```text
//! allow <rule> <path> `<snippet>` -- <reason>
//! ```
//!
//! * `<path>` is workspace-relative; a trailing `/*` makes it a prefix
//!   glob (`crates/bench/src/*` covers the whole bench harness).
//! * `` `<snippet>` `` must appear in the trimmed source line of the
//!   diagnostic — tying the entry to code, not a line number, so entries
//!   survive unrelated edits above them.
//! * `<reason>` is mandatory prose.
//!
//! Entries that no longer match any finding are reported as
//! `stale-allowlist` so the file cannot accumulate dead exemptions, and
//! `--emit-allowlist` regenerates entry lines from current findings for
//! easy triage.

use crate::diag::Diagnostic;
use crate::rules::known_rule;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: String,
    /// Workspace-relative path, or a prefix when `prefix` is set.
    pub path: String,
    pub prefix: bool,
    /// Must be contained in the diagnostic's trimmed snippet line.
    pub snippet: String,
    pub reason: String,
    /// 1-based line in the allowlist file (for stale reporting).
    pub line: u32,
}

impl Entry {
    fn matches(&self, d: &Diagnostic) -> bool {
        let path_ok = if self.prefix {
            d.path.starts_with(&self.path)
        } else {
            d.path == self.path
        };
        // Backticks delimit snippets in the file format, so they are
        // stripped on both sides — emit() output round-trips exactly.
        let hay: String = d.snippet.chars().filter(|&c| c != '`').collect();
        path_ok && d.rule == self.rule && hay.contains(&self.snippet)
    }
}

/// A parsed allowlist file.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
    /// Parse errors, reported as `stale-allowlist` diagnostics (a broken
    /// entry protects nothing and must not fail silently).
    pub errors: Vec<(u32, String)>,
}

/// Parses allowlist text. Never panics: malformed lines become errors.
pub fn parse(text: &str) -> Allowlist {
    let mut list = Allowlist::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_entry(line, line_no) {
            Ok(e) => list.entries.push(e),
            Err(msg) => list.errors.push((line_no, msg)),
        }
    }
    list
}

fn parse_entry(line: &str, line_no: u32) -> Result<Entry, String> {
    let rest = line
        .strip_prefix("allow ")
        .ok_or_else(|| "expected `allow <rule> <path> `snippet` -- reason`".to_string())?;
    let (rule, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing <path> after rule".to_string())?;
    if !known_rule(rule) {
        return Err(format!("unknown rule `{rule}`"));
    }
    let (path, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing `snippet` after path".to_string())?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('`')
        .ok_or_else(|| "snippet must be wrapped in backticks".to_string())?;
    let (snippet, rest) = rest
        .split_once('`')
        .ok_or_else(|| "unterminated `snippet`".to_string())?;
    if snippet.is_empty() {
        return Err("empty snippet matches everything — be specific".to_string());
    }
    let reason = rest
        .trim_start()
        .strip_prefix("--")
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err("missing `-- <reason>` — every exemption must say why".to_string());
    }
    let (path, prefix) = match path.strip_suffix("/*") {
        Some(p) => (format!("{p}/"), true),
        None => (path.to_string(), false),
    };
    Ok(Entry {
        rule: rule.to_string(),
        path,
        prefix,
        snippet: snippet.to_string(),
        reason: reason.to_string(),
        line: line_no,
    })
}

/// Filters `diags` through the allowlist. Returns the surviving
/// diagnostics and the count absorbed; stale entries and parse errors are
/// appended to `meta` as `stale-allowlist` diagnostics against
/// `list_path` (the allowlist file itself).
pub fn apply(
    list: &Allowlist,
    list_path: &str,
    diags: Vec<Diagnostic>,
    meta: &mut Vec<Diagnostic>,
) -> (Vec<Diagnostic>, usize) {
    let mut used = vec![false; list.entries.len()];
    let mut kept = Vec::new();
    let mut absorbed = 0usize;
    for d in diags {
        match list.entries.iter().position(|e| e.matches(&d)) {
            Some(i) => {
                if let Some(u) = used.get_mut(i) {
                    *u = true;
                }
                absorbed += 1;
            }
            None => kept.push(d),
        }
    }
    for (e, used) in list.entries.iter().zip(&used) {
        if !used {
            meta.push(Diagnostic {
                rule: "stale-allowlist",
                path: list_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "entry no longer matches any `{}` finding in {} — remove it",
                    e.rule, e.path
                ),
                snippet: format!("allow {} {} `{}`", e.rule, e.path, e.snippet),
            });
        }
    }
    for (line, msg) in &list.errors {
        meta.push(Diagnostic {
            rule: "stale-allowlist",
            path: list_path.to_string(),
            line: *line,
            col: 1,
            message: format!("unparseable allowlist entry: {msg}"),
            snippet: String::new(),
        });
    }
    (kept, absorbed)
}

/// Renders current findings as allowlist entry lines (for `--emit-allowlist`).
/// The reason is a placeholder the author must replace — emitted entries
/// are a triage aid, not an auto-approval.
pub fn emit(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        // Use the most distinctive slice of the line as the snippet: the
        // whole trimmed line, with backticks stripped so it stays parseable.
        let snippet: String = d.snippet.chars().filter(|&c| c != '`').collect();
        out.push_str(&format!(
            "allow {} {} `{}` -- TODO: justify or fix\n",
            d.rule, d.path, snippet
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 10,
            col: 5,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn parses_exact_and_prefix_entries() {
        let list = parse(
            "# comment\n\
             allow panic-freedom crates/core/src/engine.rs `estimator.expect(` -- built in new()\n\
             allow panic-freedom crates/bench/src/* `.expect(` -- harness may abort on IO\n",
        );
        assert!(list.errors.is_empty());
        assert_eq!(list.entries.len(), 2);
        assert!(!list.entries[0].prefix);
        assert!(list.entries[1].prefix);
        assert_eq!(list.entries[1].path, "crates/bench/src/");
    }

    #[test]
    fn rejects_malformed_entries() {
        let list = parse(
            "allow panic-freedom crates/x.rs `s`\n\
             allow no-such-rule crates/x.rs `s` -- r\n\
             allow panic-freedom crates/x.rs `` -- r\n\
             nonsense\n",
        );
        assert!(list.entries.is_empty());
        assert_eq!(list.errors.len(), 4);
    }

    #[test]
    fn apply_filters_and_reports_stale() {
        let list = parse(
            "allow panic-freedom crates/a.rs `x.unwrap()` -- fine\n\
             allow determinism crates/b.rs `thread_rng` -- nothing matches this\n",
        );
        let diags = vec![
            diag("panic-freedom", "crates/a.rs", "let y = x.unwrap();"),
            diag("panic-freedom", "crates/c.rs", "z.unwrap()"),
        ];
        let mut meta = Vec::new();
        let (kept, absorbed) = apply(&list, "lint-allow.txt", diags, &mut meta);
        assert_eq!(absorbed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/c.rs");
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].rule, "stale-allowlist");
        assert_eq!(meta[0].line, 2);
    }

    #[test]
    fn prefix_glob_covers_subtree() {
        let list = parse("allow panic-freedom crates/bench/src/* `.expect(` -- harness\n");
        let d = diag(
            "panic-freedom",
            "crates/bench/src/bin/table.rs",
            "w.write_all(b).expect(\"io\");",
        );
        let mut meta = Vec::new();
        let (kept, absorbed) = apply(&list, "lint-allow.txt", vec![d], &mut meta);
        assert_eq!((kept.len(), absorbed), (0, 1));
        assert!(meta.is_empty());
    }

    #[test]
    fn emit_round_trips_through_parse_and_apply() {
        let d = diag("panic-freedom", "crates/a.rs", "let y = x.unwrap(); // `tick`");
        let text = emit(std::slice::from_ref(&d));
        let list = parse(&text);
        assert!(list.errors.is_empty(), "{:?}", list.errors);
        assert_eq!(list.entries.len(), 1);
        // The emitted entry absorbs the very diagnostic it came from,
        // backticks in the source line notwithstanding.
        let mut meta = Vec::new();
        let (kept, absorbed) = apply(&list, "lint-allow.txt", vec![d], &mut meta);
        assert_eq!((kept.len(), absorbed), (0, 1));
        assert!(meta.is_empty());
    }
}
